//! Exit-code contract of `explore --replay` — the stale-repro detector.
//!
//! A reproducer artifact records the oracle it is expected to fire
//! (`meta.oracle`). Replay must distinguish three outcomes: the
//! documented bug is still live (exit 1), the scenario is clean and was
//! expected to be (exit 0), and the artifact is **stale** — it promises a
//! violation that no longer happens, or a different oracle fires — which
//! is exit 3. Before this contract a fixed bug and a rotted repro both
//! replayed "clean, exit 0" and nightly jobs could not tell them apart.

use std::path::PathBuf;
use std::process::Command;

fn explore() -> Command {
    Command::new(env!("CARGO_BIN_EXE_explore"))
}

/// A tiny, fast, clean scenario artifact written to a scratch path.
fn clean_artifact(tag: &str, extra: &str) -> PathBuf {
    let sc = rgb_sim::Scenario::leader_crash_during_handoff(1);
    let text = rgb_sim::explore::artifact::render(&sc);
    let path = std::env::temp_dir().join(format!("rgb_replay_{tag}_{}.scn", std::process::id()));
    std::fs::write(&path, format!("{text}{extra}")).expect("write scratch artifact");
    path
}

#[test]
fn plain_clean_artifact_exits_zero() {
    let path = clean_artifact("plain", "");
    let status = explore().arg("--replay").arg(&path).status().expect("run explore");
    assert_eq!(status.code(), Some(0), "clean artifact without meta.oracle replays clean");
    let _ = std::fs::remove_file(path);
}

#[test]
fn stale_repro_exits_three() {
    // The artifact claims epoch_agreement fires; the scenario is clean.
    let path = clean_artifact("stale", "meta.oracle: epoch_agreement\n");
    let out = explore().arg("--replay").arg(&path).output().expect("run explore");
    assert_eq!(
        out.status.code(),
        Some(3),
        "a repro whose oracle no longer fires must exit 3, not pass silently:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("STALE REPRO"),
        "stderr must say the repro is stale"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn expect_clean_overrides_the_oracle_claim() {
    // --expect-clean is the "I retired this bug on purpose" escape hatch:
    // the meta.oracle claim is ignored and clean is success.
    let path = clean_artifact("expectclean", "meta.oracle: epoch_agreement\n");
    let status =
        explore().arg("--replay").arg(&path).arg("--expect-clean").status().expect("run explore");
    assert_eq!(status.code(), Some(0));
    let _ = std::fs::remove_file(path);
}
