//! Experiment E6 (+E11 latency columns): end-to-end propagation of one
//! membership change through the ring-based hierarchy under the
//! mobile-Internet latency model — Figure 2's bottom-to-top flow as a
//! measured timeline, plus fast- vs slow-handoff admission latency.
//!
//! Every run is built from a declarative `rgb_sim::Scenario` (via
//! `rgb_bench::measure_change` / `measure_handoff`), so the same experiment
//! definitions can be replayed on the live substrate.
//!
//! ```text
//! cargo run --release -p rgb-bench --bin propagation
//! ```

use rgb_analysis::tables::render;
use rgb_bench::{measure_change, measure_handoff};
use rgb_sim::NetConfig;

fn main() {
    println!("E6 — one Member-Join, default mobile-Internet latency model");
    println!("(wireless 20-60, intra-ring 5-15, inter-tier 10-40 ticks)\n");
    let mut rows = Vec::new();
    for &(h, r) in &[(2usize, 5usize), (3, 5), (3, 10), (4, 5)] {
        let mut root = Vec::new();
        let mut total = Vec::new();
        let mut hops = Vec::new();
        for seed in 0..5u64 {
            let c = measure_change(h, r, NetConfig::default(), 100 + seed);
            root.push(c.latency_to_root);
            total.push(c.latency_total);
            hops.push(c.proposal_hops);
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() / v.len() as u64;
        rows.push(vec![
            format!("{}", (r as u64).pow(h as u32)),
            h.to_string(),
            r.to_string(),
            mean(&root).to_string(),
            mean(&total).to_string(),
            mean(&hops).to_string(),
        ]);
    }
    println!(
        "{}",
        render(&["n", "h", "r", "to-root (ticks)", "full agreement", "proposal hops"], &rows)
    );

    println!("\nE11 — handoff admission latency, fast path vs slow path");
    let mut rows = Vec::new();
    for &r in &[4usize, 8, 16] {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        for seed in 0..5u64 {
            let c = measure_handoff(r, NetConfig::default(), 200 + seed);
            fast.push(c.fast_admission);
            slow.push(c.slow_admission);
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() / v.len() as u64;
        rows.push(vec![
            r.to_string(),
            mean(&fast).to_string(),
            mean(&slow).to_string(),
            format!("{:.2}x", mean(&slow) as f64 / mean(&fast).max(1) as f64),
        ]);
    }
    println!("{}", render(&["ring size", "fast (ticks)", "slow (ticks)", "speedup"], &rows));
    println!("\nFast handoff admits the member immediately from the destination");
    println!("proxy's working set (ListOfNeighborMembers / ring state); the slow");
    println!("path waits for one-round agreement — the §1 motivation measured.");
}
