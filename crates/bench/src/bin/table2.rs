//! Experiment E3/E5: regenerate **Table II** (Function-Well probability of
//! the ring-based hierarchy) and check the paper's headline claims.
//!
//! Three columns are printed per cell: the paper's printed value, formula
//! (8) exactly as stated in the text, and the reverse-engineered printed
//! arithmetic (tn + 1 rings) that reproduces every k=1 cell to three
//! decimals — see EXPERIMENTS.md for the erratum analysis.
//!
//! ```text
//! cargo run -p rgb-bench --bin table2
//! ```

use rgb_analysis::reliability::{prob_fw_hierarchy_printed, table_ii};
use rgb_analysis::tables::{pct3, render};
use rgb_analysis::{prob_fw_hierarchy, PAPER_CLAIMS};

fn main() {
    println!("Table II — Function-Well Probability of the Ring-based Hierarchy\n");
    let rows: Vec<Vec<String>> = table_ii()
        .into_iter()
        .map(|row| {
            vec![
                row.n.to_string(),
                format!("{:.1}", row.f * 100.0),
                row.k.to_string(),
                format!("{:.3}", row.paper_pct),
                pct3(row.fw),
                pct3(row.fw_printed),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["n", "f(%)", "k", "paper fw(%)", "formula(8) fw(%)", "printed-arith fw(%)"],
            &rows
        )
    );
    println!("\nPaper claims (abstract + §5.2 conclusions):");
    for (h, r, f, k, want) in PAPER_CLAIMS {
        let exact = prob_fw_hierarchy(h, r, f, k) * 100.0;
        let printed = prob_fw_hierarchy_printed(h, r, f, k) * 100.0;
        println!(
            "  n={:5} f={:4.1}% k={k}: paper {want:7.3}%  formula(8) {exact:7.3}%  printed-arith {printed:7.3}%",
            r.pow(h),
            f * 100.0,
        );
    }
    println!("\nEvery k=1 cell matches the printed-arithmetic column exactly; the");
    println!("paper computed with tn+1 rings (32 and 112 instead of 31 and 111).");
    println!("The k>=2 printed cells deviate <=1.3 points from formula (8); the");
    println!("Monte-Carlo run (table2_mc) sides with formula (8).");
}
