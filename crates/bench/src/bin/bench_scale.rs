//! Scale benchmark: churn scenarios from ~20k to ~10⁶ nodes driven
//! through the sequential engine and a shard-count sweep of the
//! conservative-parallel engine (`rgb_sim::par`), reporting **events/sec**
//! (median of N runs), speedup vs sequential, per-pair lookahead range,
//! window/batching counters and bytes/node, written as `BENCH_scale.json`
//! (schema `rgb-bench/scale-v2`).
//!
//! ```text
//! cargo run --release -p rgb-bench --bin bench_scale -- \
//!     [--smoke | --million] [--runs N] [--check-digests] \
//!     [--min-speedup X [--gate-shards S] [--warn-speedup Y]] \
//!     [--out BENCH_scale.json] [--obs-out OBS.json] [--budget-secs T]
//! ```
//!
//! - Default (full) tier runs the 100k-node scenario (h=3, r=46 ⇒ 99,498
//!   NEs); `--smoke` runs the CI-sized 20k-node variant (r=27 ⇒ 20,439
//!   NEs); `--million` runs the gated scale tier (r=100 ⇒ 1,010,100 NEs,
//!   ~1.3 GiB resident). `--smoke` and `--million` both **imply
//!   `--check-digests`**.
//! - `--runs N` (default 3) repeats every mode N times and reports the
//!   **median** wall time — single-shot numbers on shared CI runners are
//!   noise.
//! - `--check-digests` replays the scenario sequentially and on 4 shards,
//!   comparing [`SystemDigest`]s at every checkpoint — the engines are
//!   trace-equivalent by construction and this gate keeps CI honest about
//!   it. A mismatch exits non-zero.
//! - `--min-speedup X` fails the run (exit 1) when the median speedup at
//!   `--gate-shards` (default 4) is below X; `--warn-speedup Y` (default
//!   2.0) additionally emits a GitHub `::warning::` when the speedup
//!   clears the gate but misses Y. The gate **refuses to run on a
//!   single-core host**: a 1-core "speedup" measures scheduler overhead,
//!   not the engine.
//! - `--obs-out OBS.json` runs one extra obs-instrumented pass on the
//!   4-shard engine — flight recorder per shard, periodic timeline
//!   samples, per-ring-level latency histograms — and writes the
//!   `rgb-obs v1` JSON document there plus a Prometheus text sibling at
//!   `OBS.json.prom`. The sweep's own timings are never polluted: the
//!   obs pass is a separate run.
//! - `--budget-secs` fails the run if the whole sweep (digest check
//!   included) exceeds the budget — the CI job's time box.
//!
//! Speedup is hardware-honest: the report embeds `cores` (what the OS
//! grants this process), and when `cores == 1` every `speedup_vs_seq` is
//! written as `null` with a note saying why — the determinism claim is
//! machine-independent, the speedup claim is not.

use rgb_core::obs::{FlightRecorder, TraceSink};
use rgb_core::prelude::*;
use rgb_sim::fault::bernoulli_crashes;
use rgb_sim::{
    obs_json, prometheus_text, ChurnParams, LatencyBand, NetConfig, ObsReport, ParStats, Scenario,
    Simulation, Timeline,
};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured engine configuration: every wall time plus the medians.
struct Measurement {
    mode: String,
    events: u64,
    wall_ms: Vec<f64>,
    median_ms: f64,
    events_per_sec: f64,
    bytes_per_node: usize,
    /// `(global floor, max pair floor)` from the lookahead matrix.
    lookahead: Option<(u64, u64)>,
    par_stats: Option<ParStats>,
}

/// Median of an unsorted sample (mean of the middle two when even).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// The scale scenario: a three-level hierarchy under continuous tokens,
/// heartbeats, Poisson churn and a sprinkle of crashes, over a **banded**
/// network whose wide-area floor is well above the inter-tier floor — so
/// the per-pair lookahead matrix has real slack to exploit (sponsor pairs
/// sync on the tight floor, everyone else on the wide one).
fn scale_scenario(ring: usize, duration: u64) -> Scenario {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 25;
    cfg.token_retransmit_timeout = 75;
    cfg.token_lost_timeout = 600;
    cfg.heartbeat_interval = 150;
    cfg.parent_timeout = 750;
    cfg.child_timeout = 750;
    let banded = NetConfig { wide_area: LatencyBand { min: 25, max: 80 }, ..NetConfig::default() };
    let scenario = Scenario::new(format!("scale churn r{ring}"), 3, ring)
        .with_cfg(cfg)
        .with_net(banded)
        .with_seed(0x5CA1E)
        .with_duration(duration)
        .with_delivered_cap(64)
        .with_churn(ChurnParams {
            initial_members: 2_000,
            mean_join_interval: 5.0,
            mean_lifetime: duration as f64 / 2.0,
            failure_fraction: 0.2,
            duration,
        });
    let layout = scenario.layout();
    let crashes = bernoulli_crashes(&layout, 0.0005, (duration / 4, duration / 2), 0x5CA1E ^ 1);
    scenario.with_crashes(crashes)
}

/// Drive the sequential engine `runs` times; wall times are per-run, the
/// event count is checked identical across runs (the engine is
/// deterministic — a drift here is a bug, not noise).
fn run_seq(scenario: &Scenario, runs: usize) -> Measurement {
    let mut wall_ms = Vec::with_capacity(runs);
    let mut events = 0u64;
    let mut bytes_per_node = 0usize;
    for run in 0..runs {
        let mut sim = scenario.build_sim();
        let start = Instant::now();
        let mut n = 0u64;
        while sim.peek_at().is_some_and(|t| t <= scenario.duration) {
            sim.step();
            n += 1;
        }
        wall_ms.push(start.elapsed().as_secs_f64() * 1e3);
        if run == 0 {
            events = n;
            bytes_per_node = sim.memory_stats().bytes_per_node();
        } else {
            assert_eq!(n, events, "sequential engine must be deterministic across runs");
        }
    }
    let median_ms = median(&wall_ms);
    Measurement {
        mode: "seq".into(),
        events,
        events_per_sec: events as f64 / (median_ms / 1e3).max(1e-9),
        median_ms,
        wall_ms,
        bytes_per_node,
        lookahead: None,
        par_stats: None,
    }
}

/// Drive the parallel engine at `shards`, `runs` times.
fn run_par(scenario: &Scenario, shards: usize, runs: usize) -> Measurement {
    let mut wall_ms = Vec::with_capacity(runs);
    let mut events = 0u64;
    let mut bytes_per_node = 0usize;
    let mut lookahead = (0u64, 0u64);
    let mut par_stats = ParStats::default();
    for run in 0..runs {
        let mut sim = scenario.try_build_par(shards).expect("scenario validates");
        let booted = sim.processed_events();
        let start = Instant::now();
        sim.run_until(scenario.duration);
        wall_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let n = sim.processed_events() - booted;
        if run == 0 {
            events = n;
            bytes_per_node = sim.memory_stats().bytes_per_node();
            lookahead = sim.lookahead_range();
            par_stats = sim.par_stats();
        } else {
            assert_eq!(n, events, "parallel engine must be deterministic across runs");
        }
    }
    let median_ms = median(&wall_ms);
    Measurement {
        mode: format!("shards{shards}"),
        events,
        events_per_sec: events as f64 / (median_ms / 1e3).max(1e-9),
        median_ms,
        wall_ms,
        bytes_per_node,
        lookahead: Some(lookahead),
        par_stats: Some(par_stats),
    }
}

/// One extra obs-instrumented pass on the parallel engine: a flight
/// recorder per shard, timeline samples every `duration/20` ticks, and
/// the per-ring-level latency surfaces — written as the `rgb-obs v1`
/// JSON document at `path` plus a Prometheus text sibling at
/// `path.prom`. Run separately so the sweep's timings stay clean.
fn run_obs(scenario: &Scenario, shards: usize, path: &str) {
    const TRACE_CAP: usize = 4096;
    const SLICES: u64 = 20;
    let mut sim = scenario.try_build_par(shards).expect("scenario validates");
    sim.enable_obs(|_| Box::new(FlightRecorder::new(TRACE_CAP)) as Box<dyn TraceSink>);
    let start = Instant::now();
    let mut timeline = Timeline::new();
    let stride = (scenario.duration / SLICES).max(1);
    let mut t = 0;
    while t < scenario.duration {
        t = (t + stride).min(scenario.duration);
        sim.run_until(t);
        timeline.sample(t, start.elapsed().as_nanos(), &sim.metrics());
    }
    let wall_nanos = start.elapsed().as_nanos();
    let metrics = sim.metrics();
    let trace = sim.trace_snapshot();
    let report = ObsReport {
        scenario: &scenario.name,
        backend: "par",
        ticks: scenario.duration,
        wall_nanos,
        metrics: &metrics,
        timeline: &timeline,
        trace: &trace,
        trace_dropped: sim.trace_dropped(),
    };
    std::fs::write(path, obs_json(&report)).expect("write obs json");
    let prom_path = format!("{path}.prom");
    std::fs::write(&prom_path, prometheus_text(&metrics)).expect("write obs prometheus text");
    eprintln!(
        "  obs: wrote {path} and {prom_path} ({} trace records, {} evicted; repair p50 {:?} / \
         p99 {:?} ticks)",
        trace.len(),
        report.trace_dropped,
        metrics.levels.repair_quantile(0.5),
        metrics.levels.repair_quantile(0.99),
    );
}

/// Digest-compare the two engines at checkpoints; returns the number of
/// compared checkpoints, or an error message naming the first divergence.
fn check_digests(scenario: &Scenario, shards: usize, stride: u64) -> Result<usize, String> {
    let mut seq = scenario.build_sim();
    let mut par = scenario.try_build_par(shards).expect("scenario validates");
    let mut checked = 0usize;
    let mut t = 0;
    while t < scenario.duration {
        t = (t + stride).min(scenario.duration);
        Simulation::run_until(&mut seq, t);
        par.run_until(t);
        let a = seq.system_digest(false);
        let b = par.system_digest(false);
        if a != b {
            return Err(format!("digest diverged at t={t} ({shards} shards)"));
        }
        checked += 1;
    }
    Ok(checked)
}

/// `speedup_vs_seq` for one mode: `None` (rendered `null`) on a 1-core
/// host, where the number would be scheduler noise dressed up as data.
fn speedup(m: &Measurement, seq_eps: f64, cores: usize) -> Option<f64> {
    (cores > 1).then(|| m.events_per_sec / seq_eps.max(1e-9))
}

fn render_json(
    tier: &str,
    nodes: usize,
    duration: u64,
    cores: usize,
    runs_per_mode: usize,
    digest_checkpoints: Option<usize>,
    runs: &[Measurement],
) -> String {
    let seq_eps =
        runs.iter().find(|m| m.mode == "seq").map(|m| m.events_per_sec).unwrap_or(f64::INFINITY);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"rgb-bench/scale-v2\",");
    let _ = writeln!(out, "  \"tier\": \"{tier}\",");
    let _ = writeln!(out, "  \"nodes\": {nodes},");
    let _ = writeln!(out, "  \"duration\": {duration},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"runs_per_mode\": {runs_per_mode},");
    if cores == 1 {
        let _ = writeln!(
            out,
            "  \"note\": \"single-core host: speedup_vs_seq withheld (null); wall times remain \
             valid, relative speedup does not\","
        );
    }
    match digest_checkpoints {
        Some(n) => {
            let _ = writeln!(out, "  \"digest_checkpoints_equal\": {n},");
        }
        None => {
            let _ = writeln!(out, "  \"digest_checkpoints_equal\": null,");
        }
    }
    out.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let walls = m.wall_ms.iter().map(|w| format!("{w:.1}")).collect::<Vec<_>>().join(", ");
        let _ = write!(
            out,
            "    {{ \"mode\": \"{}\", \"events\": {}, \"wall_ms\": [{walls}], \
             \"median_ms\": {:.1}, \"events_per_sec\": {:.0}",
            m.mode, m.events, m.median_ms, m.events_per_sec,
        );
        match speedup(m, seq_eps, cores) {
            Some(s) => {
                let _ = write!(out, ", \"speedup_vs_seq\": {s:.2}");
            }
            None => {
                let _ = write!(out, ", \"speedup_vs_seq\": null");
            }
        }
        let _ = write!(out, ", \"bytes_per_node\": {}", m.bytes_per_node);
        match m.lookahead {
            Some((lo, hi)) => {
                let _ = write!(out, ", \"lookahead\": [{lo}, {hi}]");
            }
            None => {
                let _ = write!(out, ", \"lookahead\": null");
            }
        }
        match &m.par_stats {
            Some(s) => {
                let _ = write!(
                    out,
                    ", \"par_stats\": {{ \"windows\": {}, \"idle_skips\": {}, \
                     \"frames_batched\": {}, \"batches\": {}, \"max_batch\": {}, \
                     \"phase_nanos\": {{ \"execute\": {}, \"flush\": {}, \"barrier\": {}, \
                     \"drain\": {} }} }}",
                    s.windows,
                    s.idle_skips,
                    s.frames_batched,
                    s.batches,
                    s.max_batch,
                    s.execute_nanos,
                    s.flush_nanos,
                    s.barrier_nanos,
                    s.drain_nanos
                );
            }
            None => {
                let _ = write!(out, ", \"par_stats\": null");
            }
        }
        out.push_str(" }");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let million = args.iter().any(|a| a == "--million");
    if smoke && million {
        eprintln!("--smoke and --million are mutually exclusive");
        std::process::exit(2);
    }
    let check = smoke || million || args.iter().any(|a| a == "--check-digests");
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_scale.json".to_owned());
    let obs_out = flag_value("--obs-out");
    let budget_secs: Option<u64> = flag_value("--budget-secs").map(|v| v.parse().expect("secs"));
    let runs_per_mode: usize = flag_value("--runs").map_or(3, |v| v.parse().expect("--runs N"));
    let min_speedup: Option<f64> =
        flag_value("--min-speedup").map(|v| v.parse().expect("--min-speedup X"));
    let gate_shards: usize =
        flag_value("--gate-shards").map_or(4, |v| v.parse().expect("--gate-shards S"));
    let warn_speedup: f64 =
        flag_value("--warn-speedup").map_or(2.0, |v| v.parse().expect("--warn-speedup Y"));

    // Tiers: 20k smoke (r=27 ⇒ 20,439 NEs), 100k full (r=46 ⇒ 99,498),
    // 10⁶ gated (r=100 ⇒ 1,010,100). The million tier runs a shorter
    // duration: the point is memory footprint and window-protocol
    // overhead at width, not a long trace.
    let (tier, ring, duration) = if million {
        ("million", 100, 1_500)
    } else if smoke {
        ("smoke", 27, 3_000)
    } else {
        ("full", 46, 5_000)
    };
    let shard_sweep: &[usize] = if million { &[4, 8] } else { &[2, 4, 8] };
    let scenario = scale_scenario(ring, duration);
    let nodes = scenario.layout().node_count();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "bench_scale: {tier} tier, {nodes} nodes, duration {duration}, {cores} core(s), median \
         of {runs_per_mode} run(s)"
    );
    if min_speedup.is_some() && cores == 1 {
        eprintln!(
            "SPEEDUP GATE REFUSED: single-core host — a 1-core speedup measures scheduler \
             overhead, not the engine. Run the gate on a multi-core runner."
        );
        std::process::exit(1);
    }

    let t0 = Instant::now();
    let mut runs = vec![run_seq(&scenario, runs_per_mode)];
    for &shards in shard_sweep {
        runs.push(run_par(&scenario, shards, runs_per_mode));
    }
    let seq_eps = runs[0].events_per_sec;
    for m in &runs {
        let stats = m
            .par_stats
            .map(|s| {
                format!(
                    "  {} windows, {} idle skipped, {} frames/{} batches",
                    s.windows, s.idle_skips, s.frames_batched, s.batches
                )
            })
            .unwrap_or_default();
        eprintln!(
            "  {:<8} {:>10} events  {:>9.1} ms median  {:>10.0} events/s  {:>6} B/node{}{}",
            m.mode,
            m.events,
            m.median_ms,
            m.events_per_sec,
            m.bytes_per_node,
            m.lookahead.map(|(lo, hi)| format!("  lookahead {lo}..{hi}")).unwrap_or_default(),
            stats,
        );
    }

    let digest_checkpoints = if check {
        let stride = duration / 5;
        match check_digests(&scenario, 4, stride) {
            Ok(n) => {
                eprintln!("  digest check: {n} checkpoints byte-identical (seq vs 4 shards)");
                Some(n)
            }
            Err(e) => {
                eprintln!("DIGEST MISMATCH: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let json = render_json(tier, nodes, duration, cores, runs_per_mode, digest_checkpoints, &runs);
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    eprintln!("wrote {out_path}");

    if let Some(path) = &obs_out {
        run_obs(&scenario, 4, path);
    }

    if let Some(gate) = min_speedup {
        let mode = format!("shards{gate_shards}");
        let m = runs.iter().find(|m| m.mode == mode).unwrap_or_else(|| {
            eprintln!("SPEEDUP GATE: --gate-shards {gate_shards} not in the sweep");
            std::process::exit(1);
        });
        let s = m.events_per_sec / seq_eps.max(1e-9);
        if s < gate {
            eprintln!("SPEEDUP GATE FAILED: {s:.2}x at {gate_shards} shards < required {gate:.2}x");
            std::process::exit(1);
        }
        if s < warn_speedup {
            println!(
                "::warning::scale speedup {s:.2}x at {gate_shards} shards clears the {gate:.2}x \
                 gate but is below the {warn_speedup:.2}x target"
            );
        }
        eprintln!("speedup gate: {s:.2}x at {gate_shards} shards (required {gate:.2}x)");
    }

    if let Some(budget) = budget_secs {
        let spent = t0.elapsed().as_secs();
        if spent > budget {
            eprintln!("TIME BUDGET EXCEEDED: {spent}s > {budget}s");
            std::process::exit(1);
        }
        eprintln!("time budget: {spent}s of {budget}s");
    }
}
