//! Scale benchmark: a ~100k-node churn scenario driven through the
//! sequential engine and a shard-count sweep of the conservative-parallel
//! engine (`rgb_sim::par`), reporting **events/sec**, speedup vs
//! sequential, lookahead and bytes/node, written as `BENCH_scale.json`.
//!
//! ```text
//! cargo run --release -p rgb-bench --bin bench_scale -- \
//!     [--smoke] [--check-digests] [--out BENCH_scale.json] [--budget-secs T]
//! ```
//!
//! - Default (full) mode runs the 100k-node scenario (h=3, r=46 ⇒ 99,498
//!   NEs); `--smoke` runs the CI-sized 20k-node variant (r=27 ⇒ 20,439
//!   NEs) and **implies `--check-digests`**.
//! - `--check-digests` replays the scenario sequentially and on 4 shards,
//!   comparing [`SystemDigest`]s at every checkpoint — the engines are
//!   trace-equivalent by construction and this gate keeps CI honest about
//!   it. A mismatch exits non-zero.
//! - `--budget-secs` fails the run if the whole sweep (digest check
//!   included) exceeds the budget — the CI job's time box.
//!
//! Speedup is hardware-honest: the report embeds `threads` (what the OS
//! grants this process), and on a single-core runner the sweep records
//! ≈1× — the determinism claim is machine-independent, the speedup claim
//! is not.

use rgb_core::prelude::*;
use rgb_sim::fault::bernoulli_crashes;
use rgb_sim::{ChurnParams, Scenario, Simulation};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured engine configuration.
struct Measurement {
    mode: String,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    bytes_per_node: usize,
    lookahead: Option<u64>,
}

/// The scale scenario: a three-level hierarchy under continuous tokens,
/// heartbeats, Poisson churn and a sprinkle of crashes.
fn scale_scenario(ring: usize, duration: u64) -> Scenario {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 25;
    cfg.token_retransmit_timeout = 75;
    cfg.token_lost_timeout = 600;
    cfg.heartbeat_interval = 150;
    cfg.parent_timeout = 750;
    cfg.child_timeout = 750;
    let scenario = Scenario::new(format!("scale churn r{ring}"), 3, ring)
        .with_cfg(cfg)
        .with_seed(0x5CA1E)
        .with_duration(duration)
        .with_delivered_cap(64)
        .with_churn(ChurnParams {
            initial_members: 2_000,
            mean_join_interval: 5.0,
            mean_lifetime: duration as f64 / 2.0,
            failure_fraction: 0.2,
            duration,
        });
    let layout = scenario.layout();
    let crashes = bernoulli_crashes(&layout, 0.0005, (duration / 4, duration / 2), 0x5CA1E ^ 1);
    scenario.with_crashes(crashes)
}

/// Drive the sequential engine and count processed events.
fn run_seq(scenario: &Scenario) -> Measurement {
    let mut sim = scenario.build_sim();
    let start = Instant::now();
    let mut events = 0u64;
    while sim.peek_at().is_some_and(|t| t <= scenario.duration) {
        sim.step();
        events += 1;
    }
    let wall = start.elapsed();
    Measurement {
        mode: "seq".into(),
        events,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        bytes_per_node: sim.memory_stats().bytes_per_node(),
        lookahead: None,
    }
}

/// Drive the parallel engine at `shards` and count processed events.
fn run_par(scenario: &Scenario, shards: usize) -> Measurement {
    let mut sim = scenario.try_build_par(shards).expect("scenario validates");
    let booted = sim.processed_events();
    let start = Instant::now();
    sim.run_until(scenario.duration);
    let wall = start.elapsed();
    let events = sim.processed_events() - booted;
    Measurement {
        mode: format!("shards{shards}"),
        events,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        bytes_per_node: sim.memory_stats().bytes_per_node(),
        lookahead: Some(sim.lookahead()),
    }
}

/// Digest-compare the two engines at checkpoints; returns the number of
/// compared checkpoints, or an error message naming the first divergence.
fn check_digests(scenario: &Scenario, shards: usize, stride: u64) -> Result<usize, String> {
    let mut seq = scenario.build_sim();
    let mut par = scenario.try_build_par(shards).expect("scenario validates");
    let mut checked = 0usize;
    let mut t = 0;
    while t < scenario.duration {
        t = (t + stride).min(scenario.duration);
        Simulation::run_until(&mut seq, t);
        par.run_until(t);
        let a = seq.system_digest(false);
        let b = par.system_digest(false);
        if a != b {
            return Err(format!("digest diverged at t={t} ({shards} shards)"));
        }
        checked += 1;
    }
    Ok(checked)
}

fn render_json(
    smoke: bool,
    nodes: usize,
    threads: usize,
    digest_checkpoints: Option<usize>,
    runs: &[Measurement],
) -> String {
    let seq_eps =
        runs.iter().find(|m| m.mode == "seq").map(|m| m.events_per_sec).unwrap_or(f64::INFINITY);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"rgb-bench/scale-v1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"nodes\": {nodes},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    match digest_checkpoints {
        Some(n) => {
            let _ = writeln!(out, "  \"digest_checkpoints_equal\": {n},");
        }
        None => {
            let _ = writeln!(out, "  \"digest_checkpoints_equal\": null,");
        }
    }
    out.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"mode\": \"{}\", \"events\": {}, \"wall_ms\": {:.1}, \
             \"events_per_sec\": {:.0}, \"speedup_vs_seq\": {:.2}, \"bytes_per_node\": {}",
            m.mode,
            m.events,
            m.wall_ms,
            m.events_per_sec,
            m.events_per_sec / seq_eps.max(1e-9),
            m.bytes_per_node
        );
        match m.lookahead {
            Some(l) => {
                let _ = write!(out, ", \"lookahead\": {l}");
            }
            None => {
                let _ = write!(out, ", \"lookahead\": null");
            }
        }
        out.push_str(" }");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = smoke || args.iter().any(|a| a == "--check-digests");
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_scale.json".to_owned());
    let budget_secs: Option<u64> = flag_value("--budget-secs").map(|v| v.parse().expect("secs"));

    // 100k-node full run (h=3, r=46 ⇒ 99,498 NEs); 20k smoke (r=27 ⇒
    // 20,439 NEs).
    let (ring, duration) = if smoke { (27, 3_000) } else { (46, 5_000) };
    let scenario = scale_scenario(ring, duration);
    let nodes = scenario.layout().node_count();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "bench_scale: {} mode, {nodes} nodes, duration {duration}, {threads} thread(s)",
        if smoke { "smoke" } else { "full" }
    );

    let t0 = Instant::now();
    let mut runs = vec![run_seq(&scenario)];
    for shards in [2usize, 4, 8] {
        runs.push(run_par(&scenario, shards));
    }
    for m in &runs {
        eprintln!(
            "  {:<8} {:>10} events  {:>9.1} ms  {:>10.0} events/s  {:>6} B/node{}",
            m.mode,
            m.events,
            m.wall_ms,
            m.events_per_sec,
            m.bytes_per_node,
            m.lookahead.map(|l| format!("  lookahead {l}")).unwrap_or_default()
        );
    }

    let digest_checkpoints = if check {
        let stride = duration / 5;
        match check_digests(&scenario, 4, stride) {
            Ok(n) => {
                eprintln!("  digest check: {n} checkpoints byte-identical (seq vs 4 shards)");
                Some(n)
            }
            Err(e) => {
                eprintln!("DIGEST MISMATCH: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let json = render_json(smoke, nodes, threads, digest_checkpoints, &runs);
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    eprintln!("wrote {out_path}");

    if let Some(budget) = budget_secs {
        let spent = t0.elapsed().as_secs();
        if spent > budget {
            eprintln!("TIME BUDGET EXCEEDED: {spent}s > {budget}s");
            std::process::exit(1);
        }
        eprintln!("time budget: {spent}s of {budget}s");
    }
}
