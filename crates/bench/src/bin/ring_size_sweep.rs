//! Experiment E8: the §6 remark — "the delay for propagating membership
//! messages with small-scale logical rings is smaller compared with that
//! with large-scale logical rings" — measured at a fixed group size
//! (n = 4096 APs) across hierarchy shapes from deep/narrow to shallow/wide.
//!
//! Each shape's run is built from a declarative `rgb_sim::Scenario` (via
//! `rgb_bench::measure_shape_latency`).
//!
//! ```text
//! cargo run --release -p rgb-bench --bin ring_size_sweep
//! ```

use rgb_analysis::hcn_ring;
use rgb_analysis::tables::render;
use rgb_bench::measure_shape_latency;

fn main() {
    println!("E8 — one join on 4096 APs, shapes (h, r) with r^h = 4096\n");
    let shapes: [(usize, usize); 5] = [(12, 2), (6, 4), (4, 8), (3, 16), (2, 64)];
    let mut rows = Vec::new();
    for (h, r) in shapes {
        assert_eq!((r as u64).pow(h as u32), 4096);
        let mut to_root = Vec::new();
        let mut total = Vec::new();
        let mut hops = Vec::new();
        for seed in 0..3u64 {
            let c = measure_shape_latency(h, r, 300 + seed);
            to_root.push(c.latency_to_root);
            total.push(c.latency_total);
            hops.push(c.proposal_hops);
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() / v.len() as u64;
        rows.push(vec![
            h.to_string(),
            r.to_string(),
            mean(&to_root).to_string(),
            mean(&total).to_string(),
            mean(&hops).to_string(),
            hcn_ring(h as u32, r as u64).to_string(),
        ]);
    }
    println!(
        "{}",
        render(&["h", "r", "to-root (ticks)", "full agreement (ticks)", "hops", "HCN_Ring"], &rows)
    );
    println!("\nSmall rings win on full-agreement delay (a 64-node round serialises");
    println!("64 intra-ring hops; 2-node rounds run concurrently per level), which");
    println!("is the §6 claim. First-notification-at-root instead favours shallow");
    println!("shapes: the pipelined ascent crosses fewer levels.");
}
