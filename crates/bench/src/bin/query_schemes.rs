//! Experiment E10: the Membership-Query algorithm (§4.4) under the TMS,
//! IMS and BMS maintenance schemes — message cost and latency of a global
//! query, and the storage footprint each scheme implies.
//!
//! ```text
//! cargo run --release -p rgb-bench --bin query_schemes
//! ```

use rgb_analysis::tables::render;
use rgb_bench::measure_query;
use rgb_core::prelude::MembershipScheme;
use rgb_sim::NetConfig;

fn main() {
    println!("E10 — one global membership query from an access proxy\n");
    for &(h, r) in &[(3usize, 5usize), (3, 10)] {
        let n = (r as u64).pow(h as u32);
        println!("hierarchy h={h}, r={r} ({n} APs, one member per AP):");
        let mut rows = Vec::new();
        for (name, scheme) in [
            ("TMS", MembershipScheme::Tms),
            ("IMS(1)", MembershipScheme::Ims { level: 1 }),
            ("BMS", MembershipScheme::Bms),
        ] {
            let cost = measure_query(h, r, scheme, NetConfig::default(), 77);
            assert_eq!(cost.members as u64, n, "query must return everyone");
            rows.push(vec![
                name.to_string(),
                cost.messages.to_string(),
                cost.latency.to_string(),
                cost.responses.to_string(),
            ]);
        }
        println!("{}", render(&["scheme", "messages", "latency (ticks)", "responses"], &rows));
        println!();
    }
    println!("TMS answers from the topmost ring in one round trip; BMS fans out");
    println!("to every bottommost ring leader — \"more efficient ... with regard");
    println!("to the requesting application\" (§4.4), at the cost of topmost");
    println!("storage. IMS interpolates.");
}
