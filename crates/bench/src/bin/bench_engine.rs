//! Engine throughput benchmark: three macro scenarios driven through the
//! simulator's public stepping API, reporting **events/sec**, wall time
//! and peak queued events per scenario, written as `BENCH_sim.json` so the
//! perf trajectory of the hot path is tracked across PRs.
//!
//! ```text
//! cargo run --release -p rgb-bench --bin bench_engine -- \
//!     [--quick] [--out BENCH_sim.json] [--baseline FILE] [--check]
//! ```
//!
//! - `--quick` shrinks every scenario by ~10× (CI-sized run).
//! - `--baseline FILE` reads a previously committed `BENCH_sim.json`-shaped
//!   file and embeds per-scenario `baseline_events_per_sec` / `speedup`
//!   fields in the output.
//! - `--check` exits non-zero if any scenario's events/sec drops more than
//!   30% below the baseline (the CI regression gate).
//!
//! The three scenarios cover the three hot-path regimes: a dense
//! full-hierarchy **join storm** (on-demand tokens, burst traffic), a lossy
//! **continuous-token churn** run (periodic timers re-arming forever), and
//! a long **reliability** run (heartbeats + crashes + repair).

use rgb_core::prelude::*;
use rgb_sim::fault::bernoulli_crashes;
use rgb_sim::sim::Simulation;
use rgb_sim::{ChurnParams, NetConfig, Scenario};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured scenario run.
#[derive(Debug, Clone)]
struct Measurement {
    name: &'static str,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    peak_queue: usize,
}

/// Drive `sim` until `deadline`, counting processed events and tracking the
/// peak queue length. Uses the public stepping API only, so the same loop
/// measures any engine generation.
fn drive_until(sim: &mut Simulation, deadline: u64) -> (u64, usize) {
    let mut events = 0u64;
    let mut peak = 0usize;
    while sim.peek_at().is_some_and(|t| t <= deadline) {
        sim.step();
        events += 1;
        let len = sim.queue_len();
        if len > peak {
            peak = len;
        }
    }
    (events, peak)
}

/// Drive `sim` to full quiescence (bounded by `budget` events).
fn drive_until_quiet(sim: &mut Simulation, budget: u64) -> (u64, usize) {
    let mut events = 0u64;
    let mut peak = 0usize;
    while events < budget && sim.step() {
        events += 1;
        let len = sim.queue_len();
        if len > peak {
            peak = len;
        }
    }
    (events, peak)
}

fn measure(name: &'static str, events: u64, peak: usize, start: Instant) -> Measurement {
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events_per_sec = events as f64 / wall.as_secs_f64().max(1e-9);
    Measurement { name, events, wall_ms, events_per_sec, peak_queue: peak }
}

/// Scenario 1 — dense full-hierarchy join storm: one join per access proxy
/// of a (h=3, r=5) hierarchy (125 APs, 155 NEs), staggered one tick apart,
/// on-demand tokens, default latency bands. Burst-heavy send path.
fn join_storm(quick: bool) -> Measurement {
    // Even quick mode runs several reps: a single storm is only ~4.5k
    // events (<10 ms), too noisy for the CI regression gate.
    let reps = if quick { 3 } else { 8 };
    let mut total_events = 0u64;
    let mut peak = 0usize;
    let start = Instant::now();
    for rep in 0..reps {
        let mut scenario =
            Scenario::new("join storm", 3, 5).with_seed(0xA11CE + rep).with_duration(1_000_000);
        let aps = scenario.layout().aps();
        for (i, &ap) in aps.iter().enumerate() {
            scenario = scenario.join(i as u64, ap, Guid(i as u64), Luid(1));
        }
        let mut sim = scenario.build_sim();
        let (events, p) = drive_until_quiet(&mut sim, 500_000_000);
        total_events += events;
        peak = peak.max(p);
    }
    measure("join_storm", total_events, peak, start)
}

/// Scenario 2 — lossy continuous-token churn: (h=2, r=4) hierarchy under
/// the continuous policy with fast tokens, 2% loss and Poisson churn.
/// Periodic timers re-arm on every round; the regime where stale timer
/// entries used to pile up.
fn token_churn(quick: bool) -> Measurement {
    let duration: u64 = if quick { 30_000 } else { 300_000 };
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 10;
    cfg.token_retransmit_timeout = 30;
    cfg.heartbeat_interval = 200;
    cfg.token_lost_timeout = 500;
    let mut net = NetConfig::unit();
    net.loss = 0.02;
    let scenario = Scenario::new("token churn", 2, 4)
        .with_cfg(cfg)
        .with_net(net)
        .with_seed(0xC0FFEE)
        .with_duration(duration)
        .with_churn(ChurnParams {
            initial_members: 32,
            mean_join_interval: 400.0,
            mean_lifetime: 5_000.0,
            failure_fraction: 0.2,
            duration,
        });
    let mut sim = scenario.build_sim();
    let start = Instant::now();
    let (events, peak) = drive_until(&mut sim, duration);
    measure("token_churn", events, peak, start)
}

/// Scenario 3 — long reliability run: populated (h=3, r=3) hierarchy with
/// heartbeats, Bernoulli NE crashes mid-run, local repair and
/// re-attachment. Timer- and heartbeat-dominated steady state.
fn reliability(quick: bool) -> Measurement {
    let duration: u64 = if quick { 40_000 } else { 400_000 };
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 25;
    cfg.token_retransmit_timeout = 75;
    cfg.token_lost_timeout = 600;
    cfg.heartbeat_interval = 120;
    cfg.parent_timeout = 600;
    cfg.child_timeout = 600;
    let mut scenario = Scenario::new("reliability", 3, 3)
        .with_cfg(cfg)
        .with_seed(0x5EED)
        .with_duration(duration)
        // Long run: bound the app-event log (throughput is the measurement,
        // not delivery history).
        .with_delivered_cap(256);
    let layout = scenario.layout();
    for (i, &ap) in layout.aps().iter().enumerate() {
        scenario = scenario.join(i as u64, ap, Guid(i as u64), Luid(1));
    }
    let crashes = bernoulli_crashes(&layout, 0.08, (5_000, 8_000), 0x5EED ^ 0x9e37_79b9);
    let scenario = scenario.with_crashes(crashes);
    let mut sim = scenario.build_sim();
    let start = Instant::now();
    let (events, peak) = drive_until(&mut sim, duration);
    measure("reliability", events, peak, start)
}

/// Engine-independent CPU calibration score (higher = faster machine).
///
/// The regression gate compares events/sec against a *committed* baseline
/// that was measured on different hardware; dividing both sides by their
/// machine's calibration score turns the comparison into a
/// hardware-normalised ratio, so the 30% threshold gates engine
/// regressions instead of runner speed. The workload is deliberately
/// *not* the simulator (an engine slowdown must not cancel out of the
/// ratio): a fixed SplitMix64-style arithmetic + memory-walk loop.
fn calibration_score() -> f64 {
    let mut table = vec![0u64; 1 << 16];
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    let iters = 40_000_000u64;
    let start = Instant::now();
    for _ in 0..iters {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let slot = (z as usize) & (table.len() - 1);
        acc = acc.wrapping_add(std::mem::replace(&mut table[slot], z));
    }
    std::hint::black_box(acc);
    iters as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Extract `"<key>": <f64>` for the line containing `needle` from a
/// baseline JSON file written by this binary (line-oriented: one scenario
/// object per line).
fn json_field(baseline: &str, needle: &str, key: &str) -> Option<f64> {
    let key = format!("\"{key}\": ");
    for line in baseline.lines() {
        if line.contains(needle) {
            let at = line.find(&key)? + key.len();
            let rest = &line[at..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

/// `events_per_sec` recorded for scenario `name` in a baseline file.
fn baseline_eps(baseline: &str, name: &str) -> Option<f64> {
    json_field(baseline, &format!("\"name\": \"{name}\""), "events_per_sec")
}

fn render_json(quick: bool, score: f64, runs: &[(Measurement, Option<f64>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"rgb-bench/engine-v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"calibration_score\": {score:.0},");
    out.push_str("  \"scenarios\": [\n");
    for (i, (m, base)) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"name\": \"{}\", \"events\": {}, \"wall_ms\": {:.1}, \
             \"events_per_sec\": {:.0}, \"peak_queue\": {}",
            m.name, m.events, m.wall_ms, m.events_per_sec, m.peak_queue
        );
        match base {
            Some(b) => {
                let _ = write!(
                    out,
                    ", \"baseline_events_per_sec\": {:.0}, \"speedup\": {:.2}",
                    b,
                    m.events_per_sec / b.max(1e-9)
                );
            }
            None => out.push_str(", \"baseline_events_per_sec\": null, \"speedup\": null"),
        }
        out.push_str(" }");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_sim.json".to_owned());
    let baseline = flag_value("--baseline").and_then(|p| std::fs::read_to_string(p).ok());

    eprintln!("bench_engine: {} mode", if quick { "quick" } else { "full" });
    // In gate mode a silent fallback would leave CI green while checking
    // nothing, so a missing/unreadable baseline is a hard error.
    if check && baseline.is_none() {
        eprintln!("--check requires a readable --baseline file");
        std::process::exit(2);
    }
    let score = calibration_score();
    // Hardware normalisation for the gate: scale the baseline's events/sec
    // by the ratio of calibration scores, so a committed baseline from a
    // faster (or slower) machine still gates engine regressions rather
    // than runner speed. Baselines without a score compare unscaled.
    let scale = baseline
        .as_deref()
        .and_then(|b| json_field(b, "\"calibration_score\"", "calibration_score"))
        .map(|baseline_score| score / baseline_score.max(1e-9))
        .unwrap_or(1.0);
    type ScenarioFn = fn(bool) -> Measurement;
    let scenarios: [(&str, ScenarioFn); 3] =
        [("join_storm", join_storm), ("token_churn", token_churn), ("reliability", reliability)];
    let mut runs: Vec<(Measurement, Option<f64>)> = scenarios
        .iter()
        .map(|&(name, run)| {
            let m = run(quick);
            let base = baseline.as_deref().and_then(|b| baseline_eps(b, name));
            if check && base.is_none() {
                eprintln!("--check: scenario '{name}' is missing from the baseline file");
                std::process::exit(2);
            }
            (m, base)
        })
        .collect();

    // Gate mode: a shared CI runner can hiccup for tens of milliseconds;
    // before declaring a regression, re-run the failing scenario and keep
    // its best result so only *reproducible* slowdowns fail the job.
    if check {
        for (m, base) in &mut runs {
            let Some(b) = *base else { continue };
            let mut retries = 2;
            while m.events_per_sec < b * scale * 0.70 && retries > 0 {
                eprintln!("  {} below threshold, re-running to rule out noise", m.name);
                let again = scenarios
                    .iter()
                    .find(|&&(name, _)| name == m.name)
                    .map(|&(_, run)| run(quick))
                    .expect("scenario exists");
                if again.events_per_sec > m.events_per_sec {
                    *m = again;
                }
                retries -= 1;
            }
        }
    }

    for (m, base) in &runs {
        let speedup = base
            .map(|b| format!("  ({:+.1}% vs baseline)", (m.events_per_sec / b - 1.0) * 100.0))
            .unwrap_or_default();
        eprintln!(
            "  {:<12} {:>10} events  {:>9.1} ms  {:>11.0} events/s  peak queue {}{}",
            m.name, m.events, m.wall_ms, m.events_per_sec, m.peak_queue, speedup
        );
    }

    let json = render_json(quick, score, &runs);
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {out_path}");

    if check {
        let mut failed = false;
        for (m, base) in &runs {
            if let Some(b) = base {
                let adjusted = b * scale;
                if m.events_per_sec < adjusted * 0.70 {
                    eprintln!(
                        "REGRESSION: {} at {:.0} events/s is >30% below baseline {:.0} \
                         (hardware-adjusted from {:.0}, calibration ratio {:.2})",
                        m.name, m.events_per_sec, adjusted, b, scale
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
