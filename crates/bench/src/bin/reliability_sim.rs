//! Experiment E9: reliability comparison of the three structures of §5.2
//! under identical fault processes — RGB's ring hierarchy, the tree
//! without representatives, and the CONGRESS tree with representatives —
//! by Monte-Carlo partition counting, plus the exact single-fault damage
//! enumeration.
//!
//! ```text
//! cargo run --release -p rgb-bench --bin reliability_sim [trials]
//! ```

use rgb_analysis::tables::{pct3, render};
use rgb_baselines::{
    mean_partitions_single_fault_ring, mean_partitions_single_fault_with_reps,
    mean_partitions_single_fault_without_reps, ring_hierarchy_fw, single_fault_fw_with_reps,
    single_fault_fw_without_reps, tree_no_reps_fw, tree_with_reps_fw, TreeHierarchy,
};

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50_000);

    println!("E9a — exact single-fault damage (expected partitions | 1 fault)\n");
    let mut rows = Vec::new();
    for &(h_tree, r) in &[(3u32, 5u64), (3, 10), (4, 5)] {
        let tree = TreeHierarchy::new(h_tree, r);
        rows.push(vec![
            format!("{}", r.pow(h_tree - 1)),
            r.to_string(),
            format!("{:.3}", mean_partitions_single_fault_ring((h_tree - 1) as usize, r as usize)),
            format!("{:.3}", mean_partitions_single_fault_without_reps(&tree)),
            format!("{:.3}", mean_partitions_single_fault_with_reps(&tree)),
            format!("{:.3}", single_fault_fw_without_reps(&tree)),
            format!("{:.3}", single_fault_fw_with_reps(&tree)),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "n",
                "r",
                "ring E[parts]",
                "tree-no-reps E[parts]",
                "tree-reps E[parts]",
                "no-reps P(intact)",
                "reps P(intact)",
            ],
            &rows
        )
    );

    println!("\nE9b — Monte-Carlo P[#partitions <= k] at fault probability f ({trials} trials)\n");
    let mut rows = Vec::new();
    for &(f, k) in &[(0.005f64, 1usize), (0.005, 3), (0.02, 1), (0.02, 3)] {
        // 125-AP scale: ring (h=3, r=5) vs trees (h=4, r=5 → 125 leaves).
        let ring = ring_hierarchy_fw(3, 5, f, k, trials, 11);
        let no_reps = tree_no_reps_fw(4, 5, f, k, trials, 12);
        let with_reps = tree_with_reps_fw(4, 5, f, k, trials, 13);
        rows.push(vec![
            format!("{:.1}", f * 100.0),
            k.to_string(),
            pct3(ring),
            pct3(no_reps),
            pct3(with_reps),
        ]);
    }
    println!(
        "{}",
        render(&["f(%)", "k", "ring fw(%)", "tree-no-reps fw(%)", "tree-reps fw(%)"], &rows)
    );
    println!("\nA single fault never partitions RGB (local repair, E[parts]=1.000)");
    println!("while both trees lose subtrees; per-fault survival orders ring >");
    println!("tree-without-reps > tree-with-reps — the §5.2 argument, measured.");
    println!("(The trees field fewer/more physical machines than the ring at equal");
    println!("leaf count, so the f-based rows also reflect exposure differences;");
    println!("the single-fault table isolates pure per-fault damage.)");
}
