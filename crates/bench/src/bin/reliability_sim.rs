//! Experiment E9: reliability comparison of the three structures of §5.2
//! under identical fault processes — RGB's ring hierarchy, the tree
//! without representatives, and the CONGRESS tree with representatives —
//! by Monte-Carlo partition counting, plus the exact single-fault damage
//! enumeration, plus (E9c) full-protocol fault runs built from declarative
//! `rgb_sim::Scenario` values: Bernoulli NE faults injected into a running
//! populated hierarchy, measuring how often the surviving root-ring nodes
//! still agree on a common membership view after local repair.
//!
//! ```text
//! cargo run --release -p rgb-bench --bin reliability_sim [trials] [--obs-out OBS.json]
//! ```
//!
//! With `--obs-out`, one representative E9c fault run is re-executed with
//! the observability layer enabled and exported as an `rgb-obs v1` JSON
//! document (plus a Prometheus-style `OBS.json.prom` sibling) — repair
//! latency per ring level under Bernoulli faults is the surface E16
//! reads.

use rgb_analysis::tables::{pct3, render};
use rgb_baselines::{
    mean_partitions_single_fault_ring, mean_partitions_single_fault_with_reps,
    mean_partitions_single_fault_without_reps, ring_hierarchy_fw, single_fault_fw_with_reps,
    single_fault_fw_without_reps, tree_no_reps_fw, tree_with_reps_fw, TreeHierarchy,
};
use rgb_core::prelude::*;
use rgb_sim::fault::bernoulli_crashes;
use rgb_sim::{Backend, Scenario};

/// The E9c scenario: a populated (h=2, r=5) hierarchy running continuous
/// tokens, Bernoulli NE faults at probability `f` injected mid-run (at
/// least two root nodes kept alive so view agreement is never vacuous).
fn fault_scenario(f: f64, seed: u64) -> Scenario {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 20;
    cfg.token_retransmit_timeout = 60;
    cfg.token_lost_timeout = 400;
    cfg.heartbeat_interval = 100;
    cfg.parent_timeout = 500;
    cfg.child_timeout = 500;
    let mut scenario = Scenario::new("E9c: bernoulli faults under churn", 2, 5)
        .with_cfg(cfg)
        .with_seed(seed)
        .with_duration(8_000)
        // Only the final views matter; cap the per-node app-event log so
        // tens of thousands of trials never accumulate delivery history.
        .with_delivered_cap(16);
    let layout = scenario.layout();
    // One member per AP, joined at the start.
    for (i, &ap) in layout.aps().iter().enumerate() {
        scenario = scenario.join(i as u64, ap, Guid(i as u64), Luid(1));
    }
    // Faults strike after the population has settled.
    let crashes = bernoulli_crashes(&layout, f, (2_000, 3_000), seed ^ 0x9e37_79b9);
    // Keep at least two root nodes alive or "agreement" is vacuous.
    let root = layout.root_ring().nodes.clone();
    let mut crashed_root = 0usize;
    let crashes: Vec<_> = crashes
        .into_iter()
        .filter(|c| {
            if root.contains(&c.node) {
                if crashed_root + 2 >= root.len() {
                    return false;
                }
                crashed_root += 1;
            }
            true
        })
        .collect();
    scenario.with_crashes(crashes)
}

/// One E9c trial: returns whether the surviving root-ring nodes ended in
/// view agreement.
fn protocol_fault_trial(f: f64, seed: u64) -> bool {
    let scenario = fault_scenario(f, seed);
    let root = scenario.layout().root_ring().nodes.clone();
    let outcome = scenario.run_on(Backend::Sim).expect("valid scenario");
    let alive_root: Vec<NodeId> =
        root.iter().copied().filter(|n| !outcome.crashed.contains(n)).collect();
    outcome.agreed_view(&alive_root).is_some()
}

/// `--obs-out`: re-run one representative fault trial (f = 5%, seed 1000)
/// with a flight recorder attached and export the run's metrics, timeline,
/// per-ring-level latency histograms, and protocol trace.
fn write_obs(path: &str) {
    use rgb_core::obs::FlightRecorder;
    use rgb_sim::{obs_json, prometheus_text, ObsReport, Timeline};

    let scenario = fault_scenario(0.05, 1_000);
    let mut sim = scenario.try_build_sim().expect("valid scenario");
    sim.enable_obs(Box::new(FlightRecorder::new(4096)));
    let start = std::time::Instant::now();
    let mut timeline = Timeline::new();
    let stride = (scenario.duration / 16).max(1);
    let mut t = 0u64;
    while t < scenario.duration {
        t = (t + stride).min(scenario.duration);
        sim.run_until(t);
        timeline.sample(t, start.elapsed().as_nanos(), &sim.metrics);
    }
    let trace = sim.trace_snapshot();
    let report = ObsReport {
        scenario: &scenario.name,
        backend: "sim",
        ticks: scenario.duration,
        wall_nanos: start.elapsed().as_nanos(),
        metrics: &sim.metrics,
        timeline: &timeline,
        trace: &trace,
        trace_dropped: sim.trace_dropped(),
    };
    std::fs::write(path, obs_json(&report)).expect("write obs json");
    let prom = format!("{path}.prom");
    std::fs::write(&prom, prometheus_text(&sim.metrics)).expect("write obs prometheus text");
    println!(
        "\nobs: wrote {path} and {prom} ({} trace records; repair p50 {:?} / p99 {:?} ticks)",
        trace.len(),
        sim.metrics.levels.repair_quantile(0.5),
        sim.metrics.levels.repair_quantile(0.99)
    );
}

fn main() {
    let mut trials: u64 = 50_000;
    let mut obs_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--obs-out" {
            obs_out = Some(it.next().unwrap_or_else(|| {
                eprintln!("missing value for --obs-out");
                std::process::exit(2);
            }));
        } else if let Ok(n) = arg.parse() {
            trials = n;
        }
    }

    println!("E9a — exact single-fault damage (expected partitions | 1 fault)\n");
    let mut rows = Vec::new();
    for &(h_tree, r) in &[(3u32, 5u64), (3, 10), (4, 5)] {
        let tree = TreeHierarchy::new(h_tree, r);
        rows.push(vec![
            format!("{}", r.pow(h_tree - 1)),
            r.to_string(),
            format!("{:.3}", mean_partitions_single_fault_ring((h_tree - 1) as usize, r as usize)),
            format!("{:.3}", mean_partitions_single_fault_without_reps(&tree)),
            format!("{:.3}", mean_partitions_single_fault_with_reps(&tree)),
            format!("{:.3}", single_fault_fw_without_reps(&tree)),
            format!("{:.3}", single_fault_fw_with_reps(&tree)),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "n",
                "r",
                "ring E[parts]",
                "tree-no-reps E[parts]",
                "tree-reps E[parts]",
                "no-reps P(intact)",
                "reps P(intact)",
            ],
            &rows
        )
    );

    println!("\nE9b — Monte-Carlo P[#partitions <= k] at fault probability f ({trials} trials)\n");
    let mut rows = Vec::new();
    for &(f, k) in &[(0.005f64, 1usize), (0.005, 3), (0.02, 1), (0.02, 3)] {
        // 125-AP scale: ring (h=3, r=5) vs trees (h=4, r=5 → 125 leaves).
        let ring = ring_hierarchy_fw(3, 5, f, k, trials, 11);
        let no_reps = tree_no_reps_fw(4, 5, f, k, trials, 12);
        let with_reps = tree_with_reps_fw(4, 5, f, k, trials, 13);
        rows.push(vec![
            format!("{:.1}", f * 100.0),
            k.to_string(),
            pct3(ring),
            pct3(no_reps),
            pct3(with_reps),
        ]);
    }
    println!(
        "{}",
        render(&["f(%)", "k", "ring fw(%)", "tree-no-reps fw(%)", "tree-reps fw(%)"], &rows)
    );

    let protocol_trials = (trials / 2_500).clamp(4, 20);
    println!(
        "\nE9c — full-protocol Scenario runs: populated (h=2, r=5) hierarchy,\n\
         Bernoulli NE faults mid-run, local repair + re-attachment enabled\n\
         ({protocol_trials} trials per row)\n"
    );
    let mut rows = Vec::new();
    for &f in &[0.01f64, 0.05, 0.10] {
        let agreed = (0..protocol_trials).filter(|&t| protocol_fault_trial(f, 1_000 + t)).count();
        rows.push(vec![
            format!("{:.0}", f * 100.0),
            format!("{agreed}/{protocol_trials}"),
            pct3(agreed as f64 / protocol_trials as f64),
        ]);
    }
    println!("{}", render(&["f(%)", "agreeing trials", "root view agreement"], &rows));

    println!("\nA single fault never partitions RGB (local repair, E[parts]=1.000)");
    println!("while both trees lose subtrees; per-fault survival orders ring >");
    println!("tree-without-reps > tree-with-reps — the §5.2 argument, measured.");
    println!("(The trees field fewer/more physical machines than the ring at equal");
    println!("leaf count, so the f-based rows also reflect exposure differences;");
    println!("the single-fault table isolates pure per-fault damage.)");

    if let Some(path) = &obs_out {
        write_obs(path);
    }
}
