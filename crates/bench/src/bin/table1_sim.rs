//! Experiment E2: **Table I, measured** — drive one membership change
//! through the full protocol simulator on every Table I configuration and
//! compare measured hop counts against formulas (3)–(6), alongside the
//! measured CONGRESS-style tree baseline.
//!
//! Each configuration's run is built from a declarative `rgb_sim::Scenario`
//! (via `rgb_bench::measure_change`).
//!
//! ```text
//! cargo run --release -p rgb-bench --bin table1_sim
//! ```

use rgb_analysis::tables::render;
use rgb_analysis::{hcn_ring, hcn_tree};
use rgb_baselines::TreeHierarchy;
use rgb_bench::measure_change;
use rgb_sim::NetConfig;

fn main() {
    println!("Table I (measured) — proposal hops for one membership change\n");
    let grid: [(u64, u32, u64); 6] =
        [(25, 3, 5), (125, 4, 5), (625, 5, 5), (100, 3, 10), (1000, 4, 10), (10000, 5, 10)];
    let mut rows = Vec::new();
    for (n, tree_h, r) in grid {
        let ring_h = tree_h - 1;
        let cost = measure_change(ring_h as usize, r as usize, NetConfig::instant(), 42);
        let tree = TreeHierarchy::new(tree_h, r);
        let tree_measured = tree.change_hops_total(n / 2, true);
        rows.push(vec![
            n.to_string(),
            r.to_string(),
            hcn_tree(tree_h, r).to_string(),
            tree_measured.to_string(),
            hcn_ring(ring_h, r).to_string(),
            cost.proposal_hops.to_string(),
            cost.token_hops.to_string(),
            cost.total_msgs.to_string(),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "n",
                "r",
                "tree analytic",
                "tree measured",
                "ring analytic",
                "ring measured",
                "ring tokens",
                "ring total(+acks)",
            ],
            &rows
        )
    );
    println!("\nring measured = tokens + notifications + leader relays + the wireless");
    println!("hop; the analytic column is (r+1)*tn - 1 (formula 6). tree measured");
    println!("uses leftmost-leaf representatives (co-located edges free), slightly");
    println!("cheaper than formula (3)'s partial-removal accounting; ordering and");
    println!("growth match the paper on every row.");
}
