//! Experiment E4: **Table II, Monte-Carlo** — estimate every Table II cell
//! by direct fault sampling (no algebra) and compare against formula (8)
//! and the paper's printed values.
//!
//! ```text
//! cargo run --release -p rgb-bench --bin table2_mc [trials]
//! ```

use rgb_analysis::montecarlo::estimate_hierarchy_fw;
use rgb_analysis::reliability::table_ii;
use rgb_analysis::tables::{pct3, render};

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300_000);
    println!("Table II (Monte-Carlo, {trials} trials per cell)\n");
    let mut rows = Vec::new();
    for row in table_ii() {
        let (h, r) = if row.n == 125 { (3, 5) } else { (3, 10) };
        let est = estimate_hierarchy_fw(h, r, row.f, row.k, trials, 0xFEED + row.k as u64);
        let (lo, hi) = est.ci95();
        rows.push(vec![
            row.n.to_string(),
            format!("{:.1}", row.f * 100.0),
            row.k.to_string(),
            format!("{:.3}", row.paper_pct),
            pct3(row.fw),
            pct3(est.p_hat),
            format!("[{}, {}]", pct3(lo), pct3(hi)),
            if est.consistent_with(row.fw) { "yes".into() } else { "NO".into() },
        ]);
    }
    println!(
        "{}",
        render(
            &["n", "f(%)", "k", "paper", "formula(8)", "MC fw(%)", "MC 95% CI", "MC~formula"],
            &rows
        )
    );
    println!("\nThe sampler implements the §5.2 rules directly (a ring with >=2");
    println!("faults does not function well; <k bad rings = Function-Well), so");
    println!("agreement with formula (8) validates both the formula and the code.");
}
