//! E12 — deterministic scenario explorer.
//!
//! Fault-space fuzzing over randomized [`rgb_sim::Scenario`]s with the
//! continuous invariant oracle battery, and automatic shrinking of any
//! violation to a minimal reproducer artifact.
//!
//! ```text
//! explore [--seeds N] [--start-seed S] [--master-seed M] [--smoke]
//!         [--large] [--shards N] [--par-stats] [--k TICKS]
//!         [--shrink-budget N] [--time-budget-secs T] [--repro-dir DIR]
//!         [--replay FILE]
//! ```
//!
//! - Default mode explores the full generation envelope; `--smoke` uses
//!   the bounded envelope the PR pipeline runs
//!   (`--seeds 200 --smoke` is the CI smoke command); `--large` uses the
//!   10k–50k-node envelope, normally together with `--shards N` so each
//!   run executes on the sharded parallel engine (trace-equivalent to the
//!   sequential one, so the oracle battery is judging identical digests).
//!   Large-envelope violations are reported by `(master seed, index)` and
//!   **not** shrunk — delta-debugging a 30k-node scenario is a local
//!   follow-up, not a CI step.
//! - A scenario is identified by the pair `(master seed, index)`:
//!   `--master-seed` picks the generator stream (the nightly job derives
//!   it from the date), `--start-seed`/`--seeds` select the index block.
//!   A failing run prints both, so
//!   `explore --master-seed M --start-seed I --seeds 1` regenerates the
//!   exact scenario.
//! - On violation: the scenario is delta-debugged to a minimal reproducer,
//!   written under `--repro-dir` (default `tests/repros/`), and the
//!   process exits non-zero — which is what fails the nightly job.
//! - `--par-stats` (implied by `--large`) prints the parallel engine's
//!   window/batching counters for the slowest sharded seed at the end of
//!   the run, so a lookahead regression (windows ballooning, idle skips
//!   vanishing) shows up in fuzz logs, not only in benches.
//! - `--replay FILE` parses a previously written artifact and runs it
//!   under the standard oracles instead of exploring.
//! - `--time-budget-secs` stops cleanly (exit 0) once the budget is
//!   spent, reporting how many seeds were covered; the nightly job uses
//!   it to stay time-boxed.

use rgb_sim::explore::{artifact, Explorer, ScenarioGen};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    seeds: u64,
    start_seed: u64,
    master_seed: u64,
    smoke: bool,
    large: bool,
    shards: Option<usize>,
    par_stats: bool,
    k: u64,
    shrink_budget: usize,
    time_budget: Option<Duration>,
    repro_dir: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 100,
        start_seed: 0,
        master_seed: 0,
        smoke: false,
        large: false,
        shards: None,
        par_stats: false,
        k: 200,
        shrink_budget: 400,
        time_budget: None,
        repro_dir: PathBuf::from("tests/repros"),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds N"),
            "--start-seed" => {
                args.start_seed = value("--start-seed").parse().expect("--start-seed S");
            }
            "--master-seed" => {
                args.master_seed = value("--master-seed").parse().expect("--master-seed M");
            }
            "--smoke" => args.smoke = true,
            "--large" => args.large = true,
            "--shards" => args.shards = Some(value("--shards").parse().expect("--shards N")),
            "--par-stats" => args.par_stats = true,
            "--k" => args.k = value("--k").parse().expect("--k TICKS"),
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget").parse().expect("--shrink-budget N");
            }
            "--time-budget-secs" => {
                let secs: u64 = value("--time-budget-secs").parse().expect("--time-budget-secs T");
                args.time_budget = Some(Duration::from_secs(secs));
            }
            "--repro-dir" => args.repro_dir = PathBuf::from(value("--repro-dir")),
            "--replay" => args.replay = Some(PathBuf::from(value("--replay"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let explorer =
        Explorer { check_every: args.k, shrink_budget: args.shrink_budget, ..Explorer::default() };

    if let Some(path) = &args.replay {
        replay(&explorer, path);
        return;
    }

    let gen = if args.large {
        ScenarioGen::large(args.master_seed)
    } else if args.smoke {
        ScenarioGen::smoke(args.master_seed)
    } else {
        ScenarioGen::new(args.master_seed)
    };
    let mode = if args.large {
        "large"
    } else if args.smoke {
        "smoke"
    } else {
        "full"
    };
    println!(
        "E12 explore: master seed {}, {} seeds [{}..{}), {mode} envelope, K={}{}",
        args.master_seed,
        args.seeds,
        args.start_seed,
        args.start_seed + args.seeds,
        args.k,
        args.shards.map(|s| format!(", {s} shards")).unwrap_or_default()
    );

    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut events = 0usize;
    // Slowest sharded seed and its window counters (--par-stats; --large
    // implies it, so lookahead regressions surface in nightly fuzz logs).
    let want_par_stats = args.par_stats || args.large;
    let mut slowest: Option<(u64, Duration, rgb_sim::ParStats)> = None;
    for seed in args.start_seed..args.start_seed + args.seeds {
        if let Some(budget) = args.time_budget {
            if t0.elapsed() > budget {
                println!(
                    "time budget spent after {runs}/{} seeds ({} scheduled events): clean",
                    args.seeds, events
                );
                print_par_stats(&slowest);
                return;
            }
        }
        // Sharded runs go through the parallel engine; violations are
        // reported by (master seed, index) without shrinking (the
        // engines are trace-equivalent, so a local sequential re-run of
        // the same pair reproduces and shrinks it).
        if let Some(shards) = args.shards {
            let scenario = gen.scenario(seed);
            let run_t0 = Instant::now();
            let report = explorer
                .run_scenario_par(&scenario, shards)
                .expect("generated scenarios always validate");
            let wall = run_t0.elapsed();
            runs += 1;
            events += report.scheduled_events;
            if want_par_stats {
                if let Some(stats) = report.par_stats {
                    if slowest.as_ref().is_none_or(|(_, w, _)| wall > *w) {
                        slowest = Some((seed, wall, stats));
                    }
                }
            }
            if let Some(v) = report.violation {
                // The envelope flag is part of the scenario's identity:
                // the same (master seed, index) means a different
                // scenario under a different envelope.
                let envelope = if args.large {
                    " --large"
                } else if args.smoke {
                    " --smoke"
                } else {
                    ""
                };
                eprintln!("VIOLATION {v}");
                eprintln!("  master seed : {}", args.master_seed);
                eprintln!("  seed (index): {seed}");
                eprintln!(
                    "  regenerate  : explore{envelope} --master-seed {} --start-seed {seed} \
                     --seeds 1",
                    args.master_seed,
                );
                std::process::exit(1);
            }
            continue;
        }
        let exploration = explorer.explore(&gen, seed, 1);
        runs += 1;
        for report in &exploration.reports {
            events += report.scheduled_events;
        }
        if let Some(found) = exploration.found {
            let path = found.write_artifact(&args.repro_dir).expect("write reproducer artifact");
            eprintln!("VIOLATION {}", found.violation);
            eprintln!("  master seed : {}", args.master_seed);
            eprintln!("  seed (index): {}", found.seed);
            eprintln!(
                "  regenerate  : explore{} --master-seed {} --start-seed {} --seeds 1",
                if args.smoke { " --smoke" } else { "" },
                args.master_seed,
                found.seed
            );
            eprintln!("  scenario    : {}", found.scenario.name);
            eprintln!(
                "  shrunk      : {} -> {} scheduled events in {} re-runs",
                found.scenario.scheduled_events(),
                found.shrunk.scheduled_events(),
                found.shrink_attempts
            );
            eprintln!("  reproducer  : {}", path.display());
            eprintln!(
                "  replay with : cargo run -p rgb-bench --bin explore -- --replay {}",
                path.display()
            );
            std::process::exit(1);
        }
        if runs.is_multiple_of(50) {
            println!(
                "  {runs}/{} seeds clean ({events} scheduled events, {:.1}s)",
                args.seeds,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "{runs} seeds clean ({events} scheduled events, {:.1}s): no invariant violations",
        t0.elapsed().as_secs_f64()
    );
    print_par_stats(&slowest);
}

/// Window/batching counters of the slowest sharded seed (`--par-stats`).
fn print_par_stats(slowest: &Option<(u64, Duration, rgb_sim::ParStats)>) {
    if let Some((seed, wall, stats)) = slowest {
        println!(
            "par-stats (slowest seed {seed}, {:.2}s): {} windows, {} idle skipped, {} frames in \
             {} batches (max batch {})",
            wall.as_secs_f64(),
            stats.windows,
            stats.idle_skips,
            stats.frames_batched,
            stats.batches,
            stats.max_batch
        );
    }
}

fn replay(explorer: &Explorer, path: &std::path::Path) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let scenario = artifact::parse(&text).unwrap_or_else(|e| panic!("parse artifact: {e}"));
    println!(
        "replaying '{}' ({} scheduled events, duration {})",
        scenario.name,
        scenario.scheduled_events(),
        scenario.duration
    );
    let report =
        explorer.run_scenario(&scenario).unwrap_or_else(|e| panic!("invalid scenario: {e}"));
    match report.violation {
        Some(v) => {
            eprintln!("VIOLATION {v}");
            std::process::exit(1);
        }
        None => println!(
            "replay clean ({} observations, settled at {:?})",
            report.trace.observations.len(),
            report.trace.settled_at()
        ),
    }
}
