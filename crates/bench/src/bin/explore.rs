//! E12 — deterministic scenario explorer.
//!
//! Fault-space fuzzing over randomized [`rgb_sim::Scenario`]s with the
//! continuous invariant oracle battery, and automatic shrinking of any
//! violation to a minimal reproducer artifact.
//!
//! ```text
//! explore [--seeds N] [--start-seed S] [--master-seed M] [--smoke]
//!         [--k TICKS] [--shrink-budget N] [--time-budget-secs T]
//!         [--repro-dir DIR] [--replay FILE]
//! ```
//!
//! - Default mode explores the full generation envelope; `--smoke` uses
//!   the bounded envelope the PR pipeline runs
//!   (`--seeds 200 --smoke` is the CI smoke command).
//! - A scenario is identified by the pair `(master seed, index)`:
//!   `--master-seed` picks the generator stream (the nightly job derives
//!   it from the date), `--start-seed`/`--seeds` select the index block.
//!   A failing run prints both, so
//!   `explore --master-seed M --start-seed I --seeds 1` regenerates the
//!   exact scenario.
//! - On violation: the scenario is delta-debugged to a minimal reproducer,
//!   written under `--repro-dir` (default `tests/repros/`), and the
//!   process exits non-zero — which is what fails the nightly job.
//! - `--replay FILE` parses a previously written artifact and runs it
//!   under the standard oracles instead of exploring.
//! - `--time-budget-secs` stops cleanly (exit 0) once the budget is
//!   spent, reporting how many seeds were covered; the nightly job uses
//!   it to stay time-boxed.

use rgb_sim::explore::{artifact, Explorer, ScenarioGen};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    seeds: u64,
    start_seed: u64,
    master_seed: u64,
    smoke: bool,
    k: u64,
    shrink_budget: usize,
    time_budget: Option<Duration>,
    repro_dir: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 100,
        start_seed: 0,
        master_seed: 0,
        smoke: false,
        k: 200,
        shrink_budget: 400,
        time_budget: None,
        repro_dir: PathBuf::from("tests/repros"),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds N"),
            "--start-seed" => {
                args.start_seed = value("--start-seed").parse().expect("--start-seed S");
            }
            "--master-seed" => {
                args.master_seed = value("--master-seed").parse().expect("--master-seed M");
            }
            "--smoke" => args.smoke = true,
            "--k" => args.k = value("--k").parse().expect("--k TICKS"),
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget").parse().expect("--shrink-budget N");
            }
            "--time-budget-secs" => {
                let secs: u64 = value("--time-budget-secs").parse().expect("--time-budget-secs T");
                args.time_budget = Some(Duration::from_secs(secs));
            }
            "--repro-dir" => args.repro_dir = PathBuf::from(value("--repro-dir")),
            "--replay" => args.replay = Some(PathBuf::from(value("--replay"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let explorer =
        Explorer { check_every: args.k, shrink_budget: args.shrink_budget, ..Explorer::default() };

    if let Some(path) = &args.replay {
        replay(&explorer, path);
        return;
    }

    let gen = if args.smoke {
        ScenarioGen::smoke(args.master_seed)
    } else {
        ScenarioGen::new(args.master_seed)
    };
    let mode = if args.smoke { "smoke" } else { "full" };
    println!(
        "E12 explore: master seed {}, {} seeds [{}..{}), {mode} envelope, K={}",
        args.master_seed,
        args.seeds,
        args.start_seed,
        args.start_seed + args.seeds,
        args.k
    );

    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut events = 0usize;
    for seed in args.start_seed..args.start_seed + args.seeds {
        if let Some(budget) = args.time_budget {
            if t0.elapsed() > budget {
                println!(
                    "time budget spent after {runs}/{} seeds ({} scheduled events): clean",
                    args.seeds, events
                );
                return;
            }
        }
        let exploration = explorer.explore(&gen, seed, 1);
        runs += 1;
        for report in &exploration.reports {
            events += report.scheduled_events;
        }
        if let Some(found) = exploration.found {
            let path = found.write_artifact(&args.repro_dir).expect("write reproducer artifact");
            eprintln!("VIOLATION {}", found.violation);
            eprintln!("  master seed : {}", args.master_seed);
            eprintln!("  seed (index): {}", found.seed);
            eprintln!(
                "  regenerate  : explore{} --master-seed {} --start-seed {} --seeds 1",
                if args.smoke { " --smoke" } else { "" },
                args.master_seed,
                found.seed
            );
            eprintln!("  scenario    : {}", found.scenario.name);
            eprintln!(
                "  shrunk      : {} -> {} scheduled events in {} re-runs",
                found.scenario.scheduled_events(),
                found.shrunk.scheduled_events(),
                found.shrink_attempts
            );
            eprintln!("  reproducer  : {}", path.display());
            eprintln!(
                "  replay with : cargo run -p rgb-bench --bin explore -- --replay {}",
                path.display()
            );
            std::process::exit(1);
        }
        if runs.is_multiple_of(50) {
            println!(
                "  {runs}/{} seeds clean ({events} scheduled events, {:.1}s)",
                args.seeds,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "{runs} seeds clean ({events} scheduled events, {:.1}s): no invariant violations",
        t0.elapsed().as_secs_f64()
    );
}

fn replay(explorer: &Explorer, path: &std::path::Path) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let scenario = artifact::parse(&text).unwrap_or_else(|e| panic!("parse artifact: {e}"));
    println!(
        "replaying '{}' ({} scheduled events, duration {})",
        scenario.name,
        scenario.scheduled_events(),
        scenario.duration
    );
    let report =
        explorer.run_scenario(&scenario).unwrap_or_else(|e| panic!("invalid scenario: {e}"));
    match report.violation {
        Some(v) => {
            eprintln!("VIOLATION {v}");
            std::process::exit(1);
        }
        None => println!(
            "replay clean ({} observations, settled at {:?})",
            report.trace.observations.len(),
            report.trace.settled_at()
        ),
    }
}
