//! E12/E15 — deterministic scenario explorer, blind and coverage-guided.
//!
//! Fault-space fuzzing over randomized [`rgb_sim::Scenario`]s with the
//! continuous invariant oracle battery, automatic shrinking of any
//! violation to a minimal reproducer artifact, and (E15) a
//! coverage-guided keep-and-mutate loop over a persistent corpus.
//!
//! ```text
//! explore [--seeds N] [--start-seed S] [--master-seed M] [--smoke]
//!         [--large] [--shards N] [--par-stats] [--k TICKS]
//!         [--shrink-budget N] [--time-budget-secs T] [--repro-dir DIR]
//!         [--replay FILE] [--expect-clean]
//!         [--corpus DIR] [--mutate] [--coverage-stats] [--stats-out FILE]
//!         [--corpus-replay DIR] [--write-presets DIR]
//!         [--obs-run NAME [--obs-out FILE]]
//! ```
//!
//! - Default mode explores the full generation envelope; `--smoke` uses
//!   the bounded envelope the PR pipeline runs
//!   (`--seeds 200 --smoke` is the CI smoke command); `--large` uses the
//!   10k–50k-node envelope, normally together with `--shards N` so each
//!   run executes on the sharded parallel engine (trace-equivalent to the
//!   sequential one, so the oracle battery is judging identical digests).
//!   Large-envelope violations are reported by `(master seed, index)` and
//!   **not** shrunk — delta-debugging a 30k-node scenario is a local
//!   follow-up, not a CI step.
//! - A scenario is identified by the pair `(master seed, index)`:
//!   `--master-seed` picks the generator stream (the nightly job derives
//!   it from the date), `--start-seed`/`--seeds` select the index block.
//! - On violation: the scenario is delta-debugged to a minimal reproducer,
//!   written under `--repro-dir` (default `tests/repros/`), and the
//!   process exits non-zero — which is what fails the nightly job.
//! - `--mutate` switches to the coverage-guided loop (E15): corpus
//!   entries (loaded from `--corpus DIR` when given) are mutated one
//!   dimension at a time, runs with novel coverage fingerprints are
//!   admitted with lineage metadata, and the grown corpus is saved back.
//!   Violations do not stop the session; each is reported (the first few
//!   shrunk) and the process exits non-zero at the end.
//! - `--coverage-stats` runs **both** a blind block and a cold-start
//!   guided block on the identical seed budget and prints the distinct
//!   coverage-fingerprint comparison — the E15 novelty-vs-blind
//!   measurement. `--stats-out FILE` additionally writes the numbers as
//!   JSON (the nightly job uploads it as an artifact).
//! - `--replay FILE` parses a previously written artifact and runs it
//!   under the standard oracles instead of exploring. Artifacts written
//!   by the explorer carry `meta.oracle` — the oracle the repro is
//!   expected to fire. Replay exit codes: **0** expected outcome (clean
//!   for plain/`--expect-clean` artifacts), **1** violation, **3** stale
//!   repro (a `meta.oracle` artifact that replayed clean or fired a
//!   different oracle — the bug it documents is gone or changed; without
//!   this, a silently-clean replay is indistinguishable from a fixed
//!   bug).
//! - `--corpus-replay DIR` replays every `.scn` under DIR on the
//!   sequential *and* the sharded engine (`--shards`, default 4) and
//!   fails unless the digest streams are byte-identical and the standard
//!   oracles stay silent — the PR-pipeline gate for the committed corpus.
//! - `--write-presets DIR` regenerates the named production-shaped corpus
//!   (`rgb_sim::presets`, seed 1) under DIR.
//! - `--obs-run NAME` runs the named preset (seed 1) with the
//!   observability layer enabled on the sequential *and* the sharded
//!   engine, verifies the digest streams stay byte-identical with obs on,
//!   and writes the parallel run's `rgb-obs v1` JSON document to
//!   `--obs-out FILE` (stdout when omitted) plus a Prometheus-style
//!   `FILE.prom` sibling — the CI `obs-smoke` job's entry point.
//! - `--time-budget-secs` stops cleanly (exit 0) once the budget is
//!   spent, reporting how many seeds were covered; the nightly job uses
//!   it to stay time-boxed.

use rgb_sim::explore::{
    artifact, corpus::Corpus, coverage::CoverageKey, coverage::CoverageMap, Explorer, GuidedConfig,
    GuidedStats, ScenarioGen,
};
use rgb_sim::presets;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Exit code for a stale repro: a `meta.oracle` artifact whose replay no
/// longer fires that oracle.
const EXIT_STALE: i32 = 3;

struct Args {
    seeds: u64,
    start_seed: u64,
    master_seed: u64,
    smoke: bool,
    large: bool,
    shards: Option<usize>,
    par_stats: bool,
    k: u64,
    shrink_budget: usize,
    time_budget: Option<Duration>,
    repro_dir: PathBuf,
    replay: Option<PathBuf>,
    expect_clean: bool,
    corpus: Option<PathBuf>,
    mutate: bool,
    coverage_stats: bool,
    stats_out: Option<PathBuf>,
    corpus_replay: Option<PathBuf>,
    write_presets: Option<PathBuf>,
    obs_run: Option<String>,
    obs_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 100,
        start_seed: 0,
        master_seed: 0,
        smoke: false,
        large: false,
        shards: None,
        par_stats: false,
        k: 200,
        shrink_budget: 400,
        time_budget: None,
        repro_dir: PathBuf::from("tests/repros"),
        replay: None,
        expect_clean: false,
        corpus: None,
        mutate: false,
        coverage_stats: false,
        stats_out: None,
        corpus_replay: None,
        write_presets: None,
        obs_run: None,
        obs_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds N"),
            "--start-seed" => {
                args.start_seed = value("--start-seed").parse().expect("--start-seed S");
            }
            "--master-seed" => {
                args.master_seed = value("--master-seed").parse().expect("--master-seed M");
            }
            "--smoke" => args.smoke = true,
            "--large" => args.large = true,
            "--shards" => args.shards = Some(value("--shards").parse().expect("--shards N")),
            "--par-stats" => args.par_stats = true,
            "--k" => args.k = value("--k").parse().expect("--k TICKS"),
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget").parse().expect("--shrink-budget N");
            }
            "--time-budget-secs" => {
                let secs: u64 = value("--time-budget-secs").parse().expect("--time-budget-secs T");
                args.time_budget = Some(Duration::from_secs(secs));
            }
            "--repro-dir" => args.repro_dir = PathBuf::from(value("--repro-dir")),
            "--replay" => args.replay = Some(PathBuf::from(value("--replay"))),
            "--expect-clean" => args.expect_clean = true,
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus"))),
            "--mutate" => args.mutate = true,
            "--coverage-stats" => args.coverage_stats = true,
            "--stats-out" => args.stats_out = Some(PathBuf::from(value("--stats-out"))),
            "--corpus-replay" => args.corpus_replay = Some(PathBuf::from(value("--corpus-replay"))),
            "--write-presets" => args.write_presets = Some(PathBuf::from(value("--write-presets"))),
            "--obs-run" => args.obs_run = Some(value("--obs-run")),
            "--obs-out" => args.obs_out = Some(PathBuf::from(value("--obs-out"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let explorer =
        Explorer { check_every: args.k, shrink_budget: args.shrink_budget, ..Explorer::default() };

    if let Some(dir) = &args.write_presets {
        write_presets(dir);
        return;
    }
    if let Some(path) = &args.replay {
        replay(&explorer, path, args.expect_clean);
        return;
    }
    if let Some(dir) = &args.corpus_replay {
        corpus_replay(&explorer, dir, args.shards.unwrap_or(4));
        return;
    }
    if let Some(name) = &args.obs_run {
        obs_run(name, args.obs_out.as_deref(), args.shards.unwrap_or(4));
        return;
    }

    let gen = if args.large {
        ScenarioGen::large(args.master_seed)
    } else if args.smoke {
        ScenarioGen::smoke(args.master_seed)
    } else {
        ScenarioGen::new(args.master_seed)
    };

    if args.coverage_stats {
        coverage_stats(&explorer, &gen, &args);
        return;
    }
    if args.mutate {
        guided(&explorer, &gen, &args);
        return;
    }
    blind(&explorer, &gen, &args);
}

/// The original blind exploration loop (E12).
fn blind(explorer: &Explorer, gen: &ScenarioGen, args: &Args) {
    let mode = if args.large {
        "large"
    } else if args.smoke {
        "smoke"
    } else {
        "full"
    };
    println!(
        "E12 explore: master seed {}, {} seeds [{}..{}), {mode} envelope, K={}{}",
        args.master_seed,
        args.seeds,
        args.start_seed,
        args.start_seed + args.seeds,
        args.k,
        args.shards.map(|s| format!(", {s} shards")).unwrap_or_default()
    );

    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut events = 0usize;
    // Slowest sharded seed and its window counters (--par-stats; --large
    // implies it, so lookahead regressions surface in nightly fuzz logs).
    let want_par_stats = args.par_stats || args.large;
    let mut slowest: Option<(u64, Duration, rgb_sim::ParStats)> = None;
    for seed in args.start_seed..args.start_seed + args.seeds {
        if let Some(budget) = args.time_budget {
            if t0.elapsed() > budget {
                println!(
                    "time budget spent after {runs}/{} seeds ({} scheduled events): clean",
                    args.seeds, events
                );
                print_par_stats(&slowest);
                return;
            }
        }
        // Sharded runs go through the parallel engine; violations are
        // reported by (master seed, index) without shrinking (the
        // engines are trace-equivalent, so a local sequential re-run of
        // the same pair reproduces and shrinks it).
        if let Some(shards) = args.shards {
            let scenario = gen.scenario(seed);
            let run_t0 = Instant::now();
            let report = explorer
                .run_scenario_par(&scenario, shards)
                .expect("generated scenarios always validate");
            let wall = run_t0.elapsed();
            runs += 1;
            events += report.scheduled_events;
            if want_par_stats {
                if let Some(stats) = report.par_stats {
                    if slowest.as_ref().is_none_or(|(_, w, _)| wall > *w) {
                        slowest = Some((seed, wall, stats));
                    }
                }
            }
            if let Some(v) = report.violation {
                // The envelope flag is part of the scenario's identity:
                // the same (master seed, index) means a different
                // scenario under a different envelope.
                let envelope = if args.large {
                    " --large"
                } else if args.smoke {
                    " --smoke"
                } else {
                    ""
                };
                eprintln!("VIOLATION {v}");
                eprintln!("  master seed : {}", args.master_seed);
                eprintln!("  seed (index): {seed}");
                eprintln!(
                    "  regenerate  : explore{envelope} --master-seed {} --start-seed {seed} \
                     --seeds 1",
                    args.master_seed,
                );
                std::process::exit(1);
            }
            continue;
        }
        let exploration = explorer.explore(gen, seed, 1);
        runs += 1;
        for report in &exploration.reports {
            events += report.scheduled_events;
        }
        if let Some(found) = exploration.found {
            let path = found.write_artifact(&args.repro_dir).expect("write reproducer artifact");
            eprintln!("VIOLATION {}", found.violation);
            eprintln!("  master seed : {}", args.master_seed);
            eprintln!("  seed (index): {}", found.seed);
            eprintln!(
                "  regenerate  : explore{} --master-seed {} --start-seed {} --seeds 1",
                if args.smoke { " --smoke" } else { "" },
                args.master_seed,
                found.seed
            );
            eprintln!("  scenario    : {}", found.scenario.name);
            eprintln!(
                "  shrunk      : {} -> {} scheduled events in {} re-runs",
                found.scenario.scheduled_events(),
                found.shrunk.scheduled_events(),
                found.shrink_attempts
            );
            eprintln!("  reproducer  : {}", path.display());
            eprintln!(
                "  replay with : cargo run -p rgb-bench --bin explore -- --replay {}",
                path.display()
            );
            std::process::exit(1);
        }
        if runs.is_multiple_of(50) {
            println!(
                "  {runs}/{} seeds clean ({events} scheduled events, {:.1}s)",
                args.seeds,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "{runs} seeds clean ({events} scheduled events, {:.1}s): no invariant violations",
        t0.elapsed().as_secs_f64()
    );
    print_par_stats(&slowest);
}

/// The coverage-guided keep-and-mutate loop (E15, `--mutate`): corpus in,
/// grown corpus out, violations reported without stopping the session.
fn guided(explorer: &Explorer, gen: &ScenarioGen, args: &Args) {
    let corpus_dir = args.corpus.as_deref();
    let corpus = load_corpus(corpus_dir);
    println!(
        "E15 guided explore: master seed {}, {} seeds [{}..{}), corpus {} entries ({} stale \
         dropped)",
        args.master_seed,
        args.seeds,
        args.start_seed,
        args.start_seed + args.seeds,
        corpus.len(),
        corpus.stale_dropped,
    );
    let t0 = Instant::now();
    let (result, covered, buckets) = run_guided_chunked(
        explorer,
        gen,
        args.start_seed,
        args.seeds,
        corpus,
        args.time_budget,
        t0,
    );

    println!(
        "guided: {covered} runs, {} novel ({} via mutation), {} mutants run, {} corpus \
         admissions, {:.1}s",
        result.stats.novel,
        result.stats.novel_from_mutation,
        result.stats.from_mutation,
        result.stats.corpus_added,
        t0.elapsed().as_secs_f64()
    );
    print_buckets(&buckets);
    if let Some(dir) = corpus_dir {
        let written = result.corpus.save(dir).expect("save corpus");
        println!("corpus saved: {written} entries under {}", dir.display());
    }
    if let Some(path) = &args.stats_out {
        write_stats_json(
            path,
            "guided",
            covered,
            &result.stats,
            result.coverage.distinct(),
            &buckets,
            None,
        );
    }
    if !result.found.is_empty() {
        for found in &result.found {
            let path = found.write_artifact(&args.repro_dir).expect("write reproducer artifact");
            eprintln!("VIOLATION {}", found.violation);
            eprintln!("  seed (index): {}", found.seed);
            eprintln!("  scenario    : {}", found.scenario.name);
            eprintln!("  reproducer  : {}", path.display());
        }
        eprintln!("{} violation(s) this session", result.found.len());
        std::process::exit(1);
    }
}

/// `--coverage-stats`: blind and cold-start guided on the identical seed
/// budget, reporting the distinct-fingerprint comparison (E15's
/// novelty-vs-blind measurement).
fn coverage_stats(explorer: &Explorer, gen: &ScenarioGen, args: &Args) {
    println!(
        "E15 coverage stats: master seed {}, budget {} runs each, blind vs guided",
        args.master_seed, args.seeds
    );
    let t0 = Instant::now();
    // Blind block: sample the generator, fingerprint every run. A time
    // budget (when given) is split 40/60 — guided pays for shrinking too.
    let blind_budget = args.time_budget.map(|b| b.mul_f64(0.4));
    let mut blind_map = CoverageMap::new();
    let mut blind_runs = 0u64;
    for seed in args.start_seed..args.start_seed + args.seeds {
        if let Some(b) = blind_budget {
            if t0.elapsed() > b {
                break;
            }
        }
        let scenario = gen.scenario(seed);
        let mut report =
            explorer.run_scenario(&scenario).expect("generated scenarios always validate");
        report.seed = seed;
        blind_map.insert(&CoverageKey::of(&scenario, &report));
        blind_runs += 1;
    }
    let blind_wall = t0.elapsed();
    println!(
        "blind : {blind_runs} runs -> {} distinct coverage fingerprints ({:.1}s)",
        blind_map.distinct(),
        blind_wall.as_secs_f64()
    );

    // Guided block: same seed block, same run count, cold-start corpus —
    // the only difference is the keep-and-mutate loop.
    let g0 = Instant::now();
    let (result, guided_runs, buckets) = run_guided_chunked(
        explorer,
        gen,
        args.start_seed,
        blind_runs,
        Corpus::new(),
        args.time_budget.map(|b| b.saturating_sub(blind_wall)),
        g0,
    );
    println!(
        "guided: {guided_runs} runs -> {} distinct coverage fingerprints ({} via mutation, \
         {:.1}s)",
        result.coverage.distinct(),
        result.stats.novel_from_mutation,
        g0.elapsed().as_secs_f64()
    );
    let gain = result.coverage.distinct() as f64 / blind_map.distinct().max(1) as f64;
    println!("coverage gain: {gain:.2}x distinct fingerprints on an identical budget");
    print_buckets(&buckets);
    if let Some(dir) = &args.corpus {
        let written = result.corpus.save(dir).expect("save corpus");
        println!("corpus saved: {written} entries under {}", dir.display());
    }
    if let Some(path) = &args.stats_out {
        write_stats_json(
            path,
            "coverage-stats",
            guided_runs,
            &result.stats,
            result.coverage.distinct(),
            &buckets,
            Some((blind_runs, blind_map.distinct())),
        );
    }
    if !result.found.is_empty() {
        for found in &result.found {
            let path = found.write_artifact(&args.repro_dir).expect("write reproducer artifact");
            eprintln!("VIOLATION {} (reproducer: {})", found.violation, path.display());
        }
        std::process::exit(1);
    }
}

/// Drive [`Explorer::explore_guided`] in chunks so a time budget can cut
/// the session between chunks; the corpus carries coverage across chunks.
/// Returns the final result (stats summed over chunks), runs covered, and
/// the session-level bucket table. The bucket table is summed per chunk
/// because each chunk's map attributes buckets only to its own fresh
/// inserts (corpus-seeded fingerprints are bare) — and every novel
/// fingerprint is admitted to the corpus, so no chunk re-counts another's.
fn run_guided_chunked(
    explorer: &Explorer,
    gen: &ScenarioGen,
    start_seed: u64,
    seeds: u64,
    corpus: Corpus,
    budget: Option<Duration>,
    t0: Instant,
) -> (rgb_sim::explore::GuidedExploration, u64, BTreeMap<String, usize>) {
    const CHUNK: u64 = 25;
    let config = GuidedConfig::default();
    let mut corpus = corpus;
    let mut stats = GuidedStats::default();
    let mut found = Vec::new();
    let mut covered = 0u64;
    let mut coverage = CoverageMap::new();
    let mut buckets = BTreeMap::new();
    while covered < seeds {
        if let Some(b) = budget {
            if t0.elapsed() > b {
                break;
            }
        }
        let n = CHUNK.min(seeds - covered);
        let r = explorer.explore_guided(gen, start_seed + covered, n, corpus, &config);
        corpus = r.corpus;
        coverage = r.coverage;
        for (bucket, count) in coverage.by_bucket() {
            *buckets.entry(bucket.clone()).or_insert(0) += count;
        }
        stats.runs += r.stats.runs;
        stats.from_mutation += r.stats.from_mutation;
        stats.novel += r.stats.novel;
        stats.novel_from_mutation += r.stats.novel_from_mutation;
        stats.corpus_added += r.stats.corpus_added;
        stats.violations += r.stats.violations;
        found.extend(r.found);
        covered += n;
    }
    (rgb_sim::explore::GuidedExploration { stats, coverage, corpus, found }, covered, buckets)
}

/// Replay every `.scn` under `dir` on the sequential and the sharded
/// engine, requiring byte-identical digest streams and silent oracles.
fn corpus_replay(explorer: &Explorer, dir: &Path, shards: usize) {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .scn artifacts under {}", dir.display());
    println!(
        "corpus replay: {} artifacts under {}, Seq vs Par({shards})",
        paths.len(),
        dir.display()
    );
    let mut failed = false;
    for path in &paths {
        let text = std::fs::read_to_string(path).expect("read artifact");
        let scenario =
            artifact::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
        let t0 = Instant::now();
        // Observation stride scaled to the scenario so short and long
        // runs both get a real stream (and the same checkpoints on both
        // engines).
        let stride = (scenario.duration / 16).max(1);
        let mut seq = scenario.try_build_sim().expect("artifact validates");
        let mut par = scenario.try_build_par(shards).expect("artifact validates");
        let mut t = 0u64;
        let mut checkpoints = 0usize;
        let mut diverged = false;
        while t < scenario.duration {
            t = (t + stride).min(scenario.duration);
            seq.run_until(t);
            par.run_until(t);
            checkpoints += 1;
            if seq.system_digest(false) != par.system_digest(false) {
                eprintln!(
                    "DIGEST DIVERGENCE {} at t={t} (checkpoint {checkpoints})",
                    scenario.name
                );
                diverged = true;
                failed = true;
                break;
            }
        }
        if diverged {
            continue;
        }
        // Oracle pass on the sequential engine (the engines were just
        // proven digest-identical over this scenario).
        let report = explorer.run_scenario(&scenario).expect("artifact validates");
        match report.violation {
            Some(v) => {
                eprintln!("VIOLATION {} in {}", v, scenario.name);
                failed = true;
            }
            None => println!(
                "  {} ok: {checkpoints} identical checkpoints, oracles silent ({:.1}s)",
                scenario.name,
                t0.elapsed().as_secs_f64()
            ),
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("{} corpus artifacts replay identically on both engines", paths.len());
}

/// Regenerate the named production-shaped corpus artifacts (seed 1).
fn write_presets(dir: &Path) {
    std::fs::create_dir_all(dir).expect("create corpus dir");
    for sc in presets::all(1) {
        let path = dir.join(format!("{}.scn", sc.name));
        std::fs::write(&path, artifact::render(&sc)).expect("write preset artifact");
        println!("wrote {}", path.display());
    }
}

/// `--obs-run NAME`: run the named preset with the observability layer on
/// (flight recorders on every shard, per-ring-level latency histograms),
/// prove the sequential and sharded digest streams stay byte-identical
/// with obs enabled, and export the parallel run as an `rgb-obs v1` JSON
/// document plus a Prometheus-style text sibling.
fn obs_run(name: &str, out: Option<&Path>, shards: usize) {
    use rgb_core::obs::{FlightRecorder, TraceSink};
    use rgb_sim::{obs_json, prometheus_text, ObsReport, Timeline};

    /// Per-engine flight-recorder capacity (the par engine gets one per
    /// shard; the snapshot is the sorted concatenation).
    const TRACE_CAP: usize = 4096;

    let scenario = presets::by_name(name, 1).unwrap_or_else(|| {
        eprintln!("unknown preset '{name}'; available: {}", presets::NAMES.join(", "));
        std::process::exit(2);
    });
    println!(
        "obs run: preset '{}' ({} nodes, {} ticks), Seq vs Par({shards}), obs enabled on both",
        scenario.name,
        scenario.layout().nodes.len(),
        scenario.duration
    );
    let t0 = Instant::now();
    let mut seq = scenario.try_build_sim().expect("preset validates");
    seq.enable_obs(Box::new(FlightRecorder::new(TRACE_CAP)));
    let mut par = scenario.try_build_par(shards).expect("preset validates");
    par.enable_obs(|_| Box::new(FlightRecorder::new(TRACE_CAP)) as Box<dyn TraceSink>);

    // Same checkpoint stride as --corpus-replay, with a timeline sample at
    // every checkpoint — the digest equality check *is* the smoke test
    // that obs instrumentation never perturbs the protocol.
    let stride = (scenario.duration / 16).max(1);
    let mut timeline = Timeline::new();
    let mut t = 0u64;
    let mut checkpoints = 0usize;
    while t < scenario.duration {
        t = (t + stride).min(scenario.duration);
        seq.run_until(t);
        par.run_until(t);
        timeline.sample(t, t0.elapsed().as_nanos(), &par.metrics());
        checkpoints += 1;
        if seq.system_digest(false) != par.system_digest(false) {
            eprintln!("DIGEST DIVERGENCE with obs enabled at t={t} (checkpoint {checkpoints})");
            std::process::exit(1);
        }
    }
    let wall_nanos = t0.elapsed().as_nanos();
    println!(
        "  {checkpoints} obs-enabled checkpoints byte-identical ({:.1}s)",
        t0.elapsed().as_secs_f64()
    );

    let metrics = par.metrics();
    let trace = par.trace_snapshot();
    let report = ObsReport {
        scenario: &scenario.name,
        backend: "par",
        ticks: scenario.duration,
        wall_nanos,
        metrics: &metrics,
        timeline: &timeline,
        trace: &trace,
        trace_dropped: par.trace_dropped(),
    };
    println!(
        "  {} trace records ({} evicted); repair p50 {:?} / p99 {:?} ticks",
        trace.len(),
        report.trace_dropped,
        metrics.levels.repair_quantile(0.5),
        metrics.levels.repair_quantile(0.99)
    );
    match out {
        Some(path) => {
            std::fs::write(path, obs_json(&report)).expect("write obs json");
            let prom = path.with_extension("prom");
            std::fs::write(&prom, prometheus_text(&metrics)).expect("write obs prometheus text");
            println!("obs documents written to {} and {}", path.display(), prom.display());
        }
        None => print!("{}", obs_json(&report)),
    }
}

fn load_corpus(dir: Option<&Path>) -> Corpus {
    match dir {
        Some(dir) => {
            Corpus::load(dir).unwrap_or_else(|e| panic!("load corpus {}: {e}", dir.display()))
        }
        None => Corpus::new(),
    }
}

fn print_buckets(buckets: &BTreeMap<String, usize>) {
    for (bucket, n) in buckets {
        println!("  bucket {bucket:<28} {n} fingerprints");
    }
}

/// Minimal hand-rolled JSON stats dump for nightly artifact upload.
#[allow(clippy::too_many_arguments)]
fn write_stats_json(
    path: &Path,
    mode: &str,
    runs: u64,
    stats: &GuidedStats,
    distinct: usize,
    buckets: &BTreeMap<String, usize>,
    blind: Option<(u64, usize)>,
) {
    let mut bucket_json = String::new();
    for (i, (bucket, n)) in buckets.iter().enumerate() {
        if i > 0 {
            bucket_json.push(',');
        }
        bucket_json.push_str(&format!("\"{bucket}\":{n}"));
    }
    let blind_part = blind
        .map(|(runs, distinct)| format!("\"blind_runs\":{runs},\"blind_distinct\":{distinct},"))
        .unwrap_or_default();
    let json = format!(
        "{{\"mode\":\"{mode}\",\"runs\":{runs},{blind_part}\"guided_distinct\":{distinct},\
         \"novel\":{},\"novel_from_mutation\":{},\"from_mutation\":{},\"corpus_added\":{},\
         \"violations\":{},\"by_bucket\":{{{bucket_json}}}}}\n",
        stats.novel,
        stats.novel_from_mutation,
        stats.from_mutation,
        stats.corpus_added,
        stats.violations,
    );
    std::fs::write(path, json).expect("write stats json");
    println!("stats written to {}", path.display());
}

/// Window/batching counters of the slowest sharded seed (`--par-stats`).
fn print_par_stats(slowest: &Option<(u64, Duration, rgb_sim::ParStats)>) {
    if let Some((seed, wall, stats)) = slowest {
        println!(
            "par-stats (slowest seed {seed}, {:.2}s): {} windows, {} idle skipped, {} frames in \
             {} batches (max batch {})",
            wall.as_secs_f64(),
            stats.windows,
            stats.idle_skips,
            stats.frames_batched,
            stats.batches,
            stats.max_batch
        );
    }
}

/// `--replay`: run one artifact under the standard oracles.
///
/// Exit codes: 0 expected outcome, 1 violation (on a plain or
/// `--expect-clean` artifact, or the expected oracle of a repro — the
/// documented bug is live), 3 stale repro (`meta.oracle` present but the
/// replay stayed clean or fired a different oracle).
fn replay(explorer: &Explorer, path: &std::path::Path, expect_clean: bool) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let (scenario, meta) =
        artifact::parse_with_meta(&text).unwrap_or_else(|e| panic!("parse artifact: {e}"));
    let expected = if expect_clean { None } else { meta.oracle.as_deref() };
    println!(
        "replaying '{}' ({} scheduled events, duration {}{})",
        scenario.name,
        scenario.scheduled_events(),
        scenario.duration,
        expected.map(|o| format!(", expected oracle: {o}")).unwrap_or_default()
    );
    let report =
        explorer.run_scenario(&scenario).unwrap_or_else(|e| panic!("invalid scenario: {e}"));
    match (report.violation, expected) {
        (Some(v), Some(oracle)) if v.oracle == oracle => {
            eprintln!("VIOLATION {v}");
            eprintln!("repro confirmed: '{oracle}' still fires");
            std::process::exit(1);
        }
        (Some(v), Some(oracle)) => {
            eprintln!("VIOLATION {v}");
            eprintln!(
                "STALE REPRO: artifact documents '{oracle}' but '{}' fired instead — \
                 re-shrink or retire it",
                v.oracle
            );
            std::process::exit(EXIT_STALE);
        }
        (Some(v), None) => {
            eprintln!("VIOLATION {v}");
            std::process::exit(1);
        }
        (None, Some(oracle)) => {
            eprintln!(
                "STALE REPRO: replay is clean but the artifact documents '{oracle}' — the bug \
                 is fixed (retire the artifact or re-record it) or the repro rotted"
            );
            std::process::exit(EXIT_STALE);
        }
        (None, None) => println!(
            "replay clean ({} observations, settled at {:?})",
            report.trace.observations.len(),
            report.trace.settled_at()
        ),
    }
}
