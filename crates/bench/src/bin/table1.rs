//! Experiment E1: regenerate **Table I** (scalability comparison between
//! the tree-based and the ring-based hierarchy) from formulas (1)–(6).
//!
//! ```text
//! cargo run -p rgb-bench --bin table1
//! ```

use rgb_analysis::table_i;
use rgb_analysis::tables::render;

fn main() {
    println!("Table I — Comparison on Scalability between the Tree-based");
    println!("Hierarchy and the Ring-based Hierarchy (paper §5.1)\n");
    let rows: Vec<Vec<String>> = table_i()
        .into_iter()
        .map(|row| {
            vec![
                row.n.to_string(),
                row.tree_h.to_string(),
                row.r.to_string(),
                row.hcn_tree.to_string(),
                row.n.to_string(),
                row.ring_h.to_string(),
                row.r.to_string(),
                row.hcn_ring.to_string(),
                format!("{:.3}", row.hcn_ring as f64 / row.hcn_tree as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["n", "h", "r", "HCN_Tree", "n", "h", "r", "HCN_Ring", "ring/tree"], &rows)
    );
    println!("Paper values: 29/35, 149/185, 750/935, 109/120, 1099/1220, 11000/12220.");
    println!("Every cell is reproduced exactly; the ring stays within ~25% of the");
    println!("tree on all rows — the paper's \"comparable scalability\" claim.");
}
