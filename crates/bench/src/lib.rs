//! # rgb-bench — measurement helpers behind the table/figure binaries and
//! the criterion benches.
//!
//! Every experiment in `EXPERIMENTS.md` (E1–E11) calls into this crate so
//! the binaries, the criterion benches and the integration tests measure
//! the *same* code paths.
//!
//! Measurement runs are **built from declarative [`Scenario`] values**
//! (topology, configuration, schedule) and then driven imperatively with
//! predicates; the scenario part can be replayed unchanged on any backend
//! through `Scenario::run_on` (including the live reactor via
//! `Backend::Live`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rgb_core::prelude::*;
use rgb_sim::{NetConfig, Scenario};

/// Result of measuring one membership change on a full (h, r) hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct ChangeCost {
    /// Messages in the paper's "proposal" category (tokens, notifications,
    /// leader relays, the wireless hop).
    pub proposal_hops: u64,
    /// Every message including acknowledgements.
    pub total_msgs: u64,
    /// Token hops alone (exactly `r · tn` when the change floods every
    /// ring).
    pub token_hops: u64,
    /// Simulated ticks from injection until the change reached the root
    /// ring.
    pub latency_to_root: u64,
    /// Simulated ticks until full quiescence (every ring done).
    pub latency_total: u64,
}

/// Measure one Member-Join on an idle full hierarchy under the on-demand
/// policy (experiment E2/E6). `net` controls latency; use
/// [`NetConfig::instant`] for pure hop counting.
pub fn measure_change(h: usize, r: usize, net: NetConfig, seed: u64) -> ChangeCost {
    let scenario = Scenario::new("one member join", h, r).with_net(net).with_seed(seed);
    let layout = scenario.layout();
    let aps = layout.aps();
    let ap = aps[aps.len() / 2];
    let root = layout.root_ring().nodes[0];
    let scenario = scenario.join(0, ap, Guid(99_999), Luid(1));
    let mut sim = scenario.build_sim();
    let before = sim.metrics.snapshot();
    let t0 = sim.now;
    let reached_root = sim
        .run_until_pred(u64::MAX / 2, |s| s.member_at(root, Guid(99_999)))
        .expect("join reaches root");
    assert!(sim.run_until_quiet(500_000_000), "simulation did not quiesce");
    let token_hops =
        sim.metrics.sent("token") - before.sent_by_label.get("token").copied().unwrap_or(0);
    ChangeCost {
        proposal_hops: sim.metrics.proposal_hops() - before.proposal_hops,
        total_msgs: sim.metrics.sent_total - before.sent_total,
        token_hops,
        latency_to_root: reached_root - t0,
        latency_total: sim.now - t0,
    }
}

/// Measured query cost for one global query under `scheme` on a populated
/// (h, r) hierarchy (experiment E10).
#[derive(Debug, Clone, Copy)]
pub struct QueryCost {
    /// Messages attributable to the query.
    pub messages: u64,
    /// Simulated ticks from request to result.
    pub latency: u64,
    /// Members returned.
    pub members: usize,
    /// Partial responses aggregated.
    pub responses: u32,
}

/// Populate a hierarchy (one member per AP) and measure one global query
/// issued at an access proxy.
pub fn measure_query(
    h: usize,
    r: usize,
    scheme: MembershipScheme,
    net: NetConfig,
    seed: u64,
) -> QueryCost {
    let cfg = ProtocolConfig { scheme, ..ProtocolConfig::default() };
    let mut scenario = Scenario::new("populated hierarchy, one global query", h, r)
        .with_cfg(cfg)
        .with_net(net)
        .with_seed(seed);
    let aps = scenario.layout().aps();
    for (i, &ap) in aps.iter().enumerate() {
        scenario = scenario.join(i as u64, ap, Guid(i as u64), Luid(1));
    }
    let mut sim = scenario.build_sim();
    assert!(sim.run_until_quiet(500_000_000));
    let before = sim.metrics.sent_total;
    let ap = aps[0];
    sim.schedule_query(0, ap, QueryScope::Global);
    assert!(sim.run_until_quiet(500_000_000));
    let (members, responses) = sim
        .events_at(ap)
        .iter()
        .rev()
        .find_map(|(_, e)| match e {
            AppEvent::QueryResult { members, responses, .. } => {
                Some((members.operational_count(), *responses))
            }
            _ => None,
        })
        .expect("query answered");
    QueryCost {
        messages: sim.metrics.sent_total - before,
        latency: sim.metrics.query_latency.max().unwrap_or(0),
        members,
        responses,
    }
}

/// Handoff admission latency (ticks until the member is operational at the
/// destination proxy's ring view), fast path vs slow path (experiment E11).
#[derive(Debug, Clone, Copy)]
pub struct HandoffCost {
    /// Ticks until ring-level admission via the fast path (prior location
    /// known from the proxy's working sets).
    pub fast_admission: u64,
    /// Ticks until ring-level admission via the slow path (unknown member,
    /// must wait for one-round agreement).
    pub slow_admission: u64,
}

/// Measure both handoff paths on a single ring of `r` proxies.
pub fn measure_handoff(r: usize, net: NetConfig, seed: u64) -> HandoffCost {
    // Fast path: join at proxy a (a neighbour of b), then hand off to b —
    // b already knows the member from its ring state.
    let scenario = Scenario::new("fast handoff: populated single ring", 1, r)
        .with_net(net.clone())
        .with_seed(seed);
    let nodes = scenario.layout().root_ring().nodes.clone();
    let (a, b) = (nodes[1], nodes[2]);
    let mut sim = scenario.join(0, a, Guid(1), Luid(1)).build_sim();
    assert!(sim.run_until_quiet(100_000_000));
    let t0 = sim.now;
    sim.schedule_mh(0, b, MhEvent::HandoffIn { guid: Guid(1), luid: Luid(2), from: None });
    let fast = sim
        .run_until_pred(u64::MAX / 2, |s| {
            s.node(b).ring_members.get(Guid(1)).map(|m| m.ap) == Some(b)
        })
        .expect("fast handoff admits");
    let fast_admission = fast - t0;
    assert!(sim.run_until_quiet(100_000_000));

    // Slow path: the member is unknown at b's ring (fresh simulation, no
    // prior join in this ring), so admission waits for agreement.
    let scenario2 =
        Scenario::new("slow handoff: empty single ring", 1, r).with_net(net).with_seed(seed + 1);
    let mut sim2 = scenario2.build_sim();
    let nodes2 = sim2.layout.root_ring().nodes.clone();
    let b2 = nodes2[2];
    let t0 = sim2.now;
    sim2.schedule_mh(0, b2, MhEvent::HandoffIn { guid: Guid(2), luid: Luid(2), from: None });
    let slow = sim2
        .run_until_pred(u64::MAX / 2, |s| {
            s.node(b2).ring_members.get(Guid(2)).map(|m| m.ap) == Some(b2)
        })
        .expect("slow handoff admits");
    HandoffCost { fast_admission, slow_admission: slow - t0 }
}

/// Propagation latency of one join to the root, per hierarchy shape, at
/// equal AP count (experiment E8: small rings beat large rings).
pub fn measure_shape_latency(h: usize, r: usize, seed: u64) -> ChangeCost {
    measure_change(h, r, NetConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgb_analysis::hcn_ring;

    #[test]
    fn measured_token_hops_equal_r_times_tn() {
        for &(h, r) in &[(2usize, 3usize), (3, 3), (2, 5)] {
            let cost = measure_change(h, r, NetConfig::instant(), 42);
            let tn: u64 = (0..h).map(|i| (r as u64).pow(i as u32)).sum();
            assert_eq!(cost.token_hops, r as u64 * tn, "h={h} r={r}");
            // Proposal traffic is within the analytic envelope
            // (r+1)·tn − 1 … (r+2)·tn + 1 (leader relays add ≤1 per ring).
            let lo = hcn_ring(h as u32, r as u64) - tn;
            let hi = hcn_ring(h as u32, r as u64) + 2 * tn + 2;
            assert!(
                (lo..=hi).contains(&cost.proposal_hops),
                "h={h} r={r}: proposal {} outside [{lo}, {hi}]",
                cost.proposal_hops
            );
        }
    }

    #[test]
    fn query_cost_ordering() {
        let tms = measure_query(3, 3, MembershipScheme::Tms, NetConfig::instant(), 1);
        let bms = measure_query(3, 3, MembershipScheme::Bms, NetConfig::instant(), 1);
        assert_eq!(tms.members, 27);
        assert_eq!(bms.members, 27);
        assert!(tms.messages < bms.messages);
        assert_eq!(tms.responses, 1);
        assert_eq!(bms.responses, 9);
    }

    #[test]
    fn fast_handoff_beats_slow() {
        let cost = measure_handoff(6, NetConfig::default(), 3);
        assert!(
            cost.fast_admission < cost.slow_admission,
            "fast {} !< slow {}",
            cost.fast_admission,
            cost.slow_admission
        );
    }

    #[test]
    fn small_rings_finish_agreement_faster_at_equal_n() {
        // 4096 APs: (h=12, r=2) vs (h=2, r=64). The §6 claim — small rings
        // propagate membership messages with lower delay — holds for the
        // *full agreement* time (every ring done): a 64-node round
        // serialises 64 hops, while the deep hierarchy's 2-node rounds run
        // concurrently. First-notification-at-root goes the other way
        // (fewer levels = fewer pipelined ascent hops); the ring_size_sweep
        // binary reports both columns.
        let deep = measure_shape_latency(12, 2, 7);
        let wide = measure_shape_latency(2, 64, 7);
        assert!(
            deep.latency_total < wide.latency_total,
            "deep total {} !< wide total {}",
            deep.latency_total,
            wide.latency_total
        );
        assert!(
            deep.latency_to_root > wide.latency_to_root,
            "pipelined ascent: deep first-notify {} should exceed wide {}",
            deep.latency_to_root,
            wide.latency_to_root
        );
    }
}
