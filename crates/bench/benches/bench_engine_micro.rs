//! Criterion micro-benches for the simulator's dispatch primitives —
//! `Simulation::step` (event pop + protocol handling) and the
//! `Substrate::send_frame` classify/count/schedule path — the two hot
//! functions the engine overhaul targets. The macro-scenario numbers live
//! in `bench_engine` (`BENCH_sim.json`); these isolate the per-event cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rgb_core::prelude::*;
use rgb_sim::sim::Simulation;
use rgb_sim::{NetConfig, Scenario};
use std::hint::black_box;

/// A booted continuous-token simulation with traffic in flight.
fn running_sim() -> Simulation {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 10;
    cfg.token_retransmit_timeout = 30;
    cfg.heartbeat_interval = 100;
    cfg.token_lost_timeout = 400;
    let scenario =
        Scenario::new("micro", 2, 4).with_cfg(cfg).with_seed(42).with_duration(u64::MAX / 4);
    let mut sim = scenario.build_sim();
    let aps = sim.layout.aps();
    for (i, &ap) in aps.iter().enumerate() {
        sim.schedule_mh(i as u64, ap, MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) });
    }
    // Reach steady state so step() measures the sustained dispatch loop.
    sim.run_until(2_000);
    sim
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    const BATCH: u64 = 10_000;
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("continuous_tokens_h2_r4", |b| {
        let mut sim = running_sim();
        b.iter(|| {
            for _ in 0..BATCH {
                if !sim.step() {
                    // Continuous rings never quiesce; this is unreachable,
                    // but keep the bench robust against config changes.
                    sim = running_sim();
                }
            }
            black_box(sim.now)
        })
    });
    group.finish();
}

fn bench_send_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_send_frame");
    const BATCH: u64 = 10_000;
    group.throughput(Throughput::Elements(BATCH));
    // Pairs covering all three NE link classes, in a h=3 hierarchy.
    group.bench_function("classify_count_schedule", |b| {
        let mut sim = Simulation::full(3, 4, &ProtocolConfig::default(), NetConfig::default(), 7);
        sim.boot_all();
        let ring = sim.layout.rings_at(2).next().unwrap().clone();
        let sponsor = ring.parent_node.unwrap();
        let far = *sim.layout.aps().last().unwrap();
        let frame = rgb_core::wire::encode(&Envelope {
            gid: sim.layout.gid,
            msg: Msg::TokenAck { ring: ring.id, seq: 1 },
        });
        let pairs = [
            (ring.nodes[0], ring.nodes[1]), // intra-ring
            (ring.nodes[0], sponsor),       // inter-tier
            (ring.nodes[0], far),           // wide-area
        ];
        b.iter(|| {
            for i in 0..BATCH {
                let (from, to) = pairs[(i % 3) as usize];
                sim.send_frame(from, to, MsgLabel::TokenAck, frame.clone());
            }
            // Drain what was scheduled so the queue doesn't grow across
            // samples and pops are part of the measured cost.
            while sim.step() {}
            black_box(sim.metrics.sent_total)
        })
    });
    group.finish();
}

criterion_group!(engine_micro, bench_step, bench_send_frame);
criterion_main!(engine_micro);
