//! Criterion bench for E7 (Figure 3 as measurement): one-round token
//! passing on a single ring — full agreement of one membership change —
//! as a function of ring size `r`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rgb_core::prelude::*;
use rgb_core::testing::Loopback;
use std::hint::black_box;

fn one_round(r: usize, seq: u64) -> u64 {
    let layout = HierarchySpec::new(1, r).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
    net.boot_all();
    let ap = layout.aps()[r / 2];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(seq), luid: Luid(1) }));
    assert!(net.run_until_quiet(10_000_000));
    net.sent_total
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_round");
    for &r in &[2usize, 4, 8, 16, 32, 64] {
        group.throughput(Throughput::Elements(r as u64));
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let mut seq = 0;
            b.iter(|| {
                seq += 1;
                black_box(one_round(r, seq))
            })
        });
    }
    group.finish();
}

fn bench_round_messages(c: &mut Criterion) {
    // Message-processing throughput of a ring under sustained churn.
    let mut group = c.benchmark_group("sustained_churn_ring8");
    group.sample_size(20);
    group.bench_function("100_joins", |b| {
        b.iter(|| {
            let layout = HierarchySpec::new(1, 8).build(GroupId(1)).unwrap();
            let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
            net.boot_all();
            for i in 0..100u64 {
                let ap = layout.aps()[(i % 8) as usize];
                net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i), luid: Luid(1) }));
            }
            assert!(net.run_until_quiet(50_000_000));
            black_box(net.sent_total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_round, bench_round_messages);
criterion_main!(benches);
