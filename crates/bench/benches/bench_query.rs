//! Criterion bench for E10: global membership queries under the three
//! maintenance schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgb_bench::measure_query;
use rgb_core::prelude::MembershipScheme;
use rgb_sim::NetConfig;
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_query_h3_r5");
    group.sample_size(10);
    for (name, scheme) in [
        ("tms", MembershipScheme::Tms),
        ("ims1", MembershipScheme::Ims { level: 1 }),
        ("bms", MembershipScheme::Bms),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &scheme| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(measure_query(3, 5, scheme, NetConfig::instant(), seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
