//! Criterion bench for E11: handoff intake — the fast path (member known
//! from the proxy's working sets) against the slow path (agreement-gated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgb_bench::measure_handoff;
use rgb_sim::NetConfig;
use std::hint::black_box;

fn bench_handoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("handoff");
    group.sample_size(10);
    for &r in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let mut seed = 0;
            b.iter(|| {
                seed += 2;
                black_box(measure_handoff(r, NetConfig::default(), seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_handoff);
criterion_main!(benches);
