//! Criterion bench for E1: evaluating the scalability formulas (1)–(6)
//! across the Table I grid, plus the measured tree baseline accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgb_analysis::{hcn_ring, hcn_tree, table_i};
use rgb_baselines::TreeHierarchy;
use std::hint::black_box;

fn bench_formulas(c: &mut Criterion) {
    c.bench_function("table_i/full_grid", |b| b.iter(|| black_box(table_i())));
    let mut group = c.benchmark_group("hcn");
    for &(h, r) in &[(3u32, 5u64), (5, 5), (5, 10)] {
        group.bench_with_input(
            BenchmarkId::new("tree", format!("h{h}_r{r}")),
            &(h, r),
            |b, &(h, r)| b.iter(|| black_box(hcn_tree(h, r))),
        );
        group.bench_with_input(
            BenchmarkId::new("ring", format!("h{h}_r{r}")),
            &(h, r),
            |b, &(h, r)| b.iter(|| black_box(hcn_ring(h - 1, r))),
        );
    }
    group.finish();
}

fn bench_tree_measured(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_measured_hops");
    for &(h, r) in &[(3u32, 5u64), (4, 10)] {
        let tree = TreeHierarchy::new(h, r);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{h}_r{r}")),
            &tree,
            |b, tree| b.iter(|| black_box(tree.change_hops_total(black_box(3), true))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_formulas, bench_tree_measured);
criterion_main!(benches);
