//! Ablation bench for design decision D2: holder rotation (Figure 3 lines
//! 21–23) against a static token owner, under the continuous policy.
//! Rotation spreads queue-drain opportunities around the ring; with a
//! static owner, changes queued at other nodes wait for the owner's rounds
//! and the owner becomes a hotspot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgb_core::prelude::*;
use rgb_core::testing::Loopback;
use std::hint::black_box;

fn churn_run(rotate: bool) -> (u64, u64) {
    let mut cfg = ProtocolConfig::live();
    cfg.rotate_holder = rotate;
    cfg.token_interval = 10;
    cfg.heartbeat_interval = 1_000_000;
    cfg.token_lost_timeout = 1_000_000;
    let layout = HierarchySpec::new(1, 8).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &cfg);
    net.boot_all();
    let aps = layout.aps();
    for i in 0..40u64 {
        let ap = aps[(i % 8) as usize];
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i), luid: Luid(1) }));
    }
    net.run_until(5_000);
    let leader = layout.root_ring().nodes.iter().copied().min().unwrap();
    let agreed =
        net.nodes.values().map(|n| n.ring_members.operational_count() as u64).min().unwrap_or(0);
    (net.sent_total, agreed + net.node(leader).stats.rounds_started)
}

fn bench_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rotation");
    group.sample_size(10);
    for &rotate in &[true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if rotate { "rotate" } else { "static" }),
            &rotate,
            |b, &rotate| b.iter(|| black_box(churn_run(rotate))),
        );
    }
    group.finish();
    // Both configurations must still agree on all 40 members.
    let (_, rotate_ok) = churn_run(true);
    let (_, static_ok) = churn_run(false);
    assert!(rotate_ok >= 40, "rotation failed to agree");
    assert!(static_ok >= 40, "static owner failed to agree");
}

criterion_group!(benches, bench_rotation);
criterion_main!(benches);
