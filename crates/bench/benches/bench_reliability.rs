//! Criterion bench for E3/E4: the Function-Well probability formulas and
//! the Monte-Carlo estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgb_analysis::montecarlo::estimate_hierarchy_fw;
use rgb_analysis::reliability::table_ii;
use rgb_analysis::{prob_fw_hierarchy, prob_fw_ring};
use std::hint::black_box;

fn bench_formulas(c: &mut Criterion) {
    c.bench_function("table_ii/full_grid", |b| b.iter(|| black_box(table_ii())));
    c.bench_function("prob_fw_ring/r10", |b| {
        b.iter(|| black_box(prob_fw_ring(black_box(10), black_box(0.005))))
    });
    c.bench_function("prob_fw_hierarchy/h3_r10_k3", |b| {
        b.iter(|| black_box(prob_fw_hierarchy(3, 10, black_box(0.005), 3)))
    });
}

fn bench_montecarlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo");
    group.sample_size(10);
    for &trials in &[1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("hierarchy_fw", trials), &trials, |b, &trials| {
            b.iter(|| black_box(estimate_hierarchy_fw(3, 10, 0.005, 3, trials, 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_formulas, bench_montecarlo);
criterion_main!(benches);
