//! Criterion bench for E6: full bottom-to-top (and sibling-subtree)
//! propagation of one membership change through complete hierarchies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgb_bench::measure_change;
use rgb_sim::NetConfig;
use std::hint::black_box;

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagate_join");
    group.sample_size(10);
    for &(h, r) in &[(2usize, 5usize), (3, 5), (3, 10)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{h}_r{r}_n{}", (r as u64).pow(h as u32))),
            &(h, r),
            |b, &(h, r)| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(measure_change(h, r, NetConfig::instant(), seed))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
