//! Ablation bench for design decision D1: the self-aggregating message
//! queue. A bursty workload (every member joins, half immediately leave,
//! some bounce between proxies) is driven through a hierarchy with
//! aggregation on and off. Because one token round carries any number of
//! queued records, aggregation does not change the *message count* — its
//! payoff is fewer operations executed per node (cancelled pairs never
//! ride a token at all) and smaller token payloads, which is what this
//! bench measures and asserts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rgb_core::prelude::*;
use rgb_core::testing::Loopback;
use std::hint::black_box;

/// Returns (total messages, ops executed across all nodes, records
/// aggregated away).
fn bursty(aggregate: bool) -> (u64, u64, u64) {
    let cfg = ProtocolConfig { aggregate_mq: aggregate, ..ProtocolConfig::default() };
    let layout = HierarchySpec::new(2, 5).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &cfg);
    net.boot_all();
    let aps = layout.aps();
    for i in 0..50u64 {
        let ap = aps[(i % aps.len() as u64) as usize];
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i), luid: Luid(1) }));
        if i % 2 == 0 {
            net.inject(ap, Input::Mh(MhEvent::Leave { guid: Guid(i) }));
        }
        if i % 7 == 0 {
            let to = aps[((i + 1) % aps.len() as u64) as usize];
            net.inject(
                to,
                Input::Mh(MhEvent::HandoffIn { guid: Guid(i + 1), luid: Luid(9), from: Some(ap) }),
            );
        }
    }
    assert!(net.run_until_quiet(100_000_000));
    let ops: u64 = net.nodes.values().map(|n| n.stats.ops_executed).sum();
    let merged: u64 = net.nodes.values().map(|n| n.mq.total_aggregated_away()).sum();
    (net.sent_total, ops, merged)
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_aggregation");
    group.sample_size(20);
    for &aggregate in &[true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if aggregate { "on" } else { "off" }),
            &aggregate,
            |b, &aggregate| b.iter(|| black_box(bursty(aggregate))),
        );
    }
    group.finish();
    // Correctness side-channel: aggregation must reduce executed work.
    let (msgs_on, ops_on, merged_on) = bursty(true);
    let (msgs_off, ops_off, merged_off) = bursty(false);
    assert!(merged_on > 0, "aggregation never fired on the bursty workload");
    assert_eq!(merged_off, 0, "raw queue must not aggregate");
    assert!(
        ops_on < ops_off,
        "aggregation on ({ops_on} ops) must execute fewer ops than off ({ops_off})"
    );
    assert!(msgs_on <= msgs_off, "aggregation must never increase traffic");
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
