//! Membership-Query tests (§4.4): correctness of TMS/BMS/IMS answers and
//! the efficiency ordering the paper claims (TMS queries are cheap, BMS
//! queries are expensive).

use rgb_core::prelude::*;
use rgb_core::testing::Loopback;

fn populated(h: usize, r: usize, scheme: MembershipScheme) -> (HierarchyLayout, Loopback) {
    let cfg = ProtocolConfig { scheme, ..ProtocolConfig::default() };
    let layout = HierarchySpec::new(h, r).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &cfg);
    net.boot_all();
    for (i, &ap) in layout.aps().iter().enumerate() {
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) }));
    }
    assert!(net.run_until_quiet(50_000_000));
    (layout, net)
}

fn query_result(net: &Loopback, node: NodeId) -> Option<(MemberList, u32)> {
    net.events_at(node).iter().rev().find_map(|e| match e {
        AppEvent::QueryResult { members, responses, .. } => Some((members.clone(), *responses)),
        _ => None,
    })
}

#[test]
fn tms_query_from_an_ap_returns_global_membership() {
    let (layout, mut net) = populated(3, 3, MembershipScheme::Tms);
    let ap = layout.aps()[7];
    net.inject(ap, Input::StartQuery { scope: QueryScope::Global });
    assert!(net.run_until_quiet(1_000_000));
    let (members, responses) = query_result(&net, ap).expect("query answered");
    assert_eq!(members.operational_count(), 27);
    assert_eq!(responses, 1, "TMS needs a single response");
}

#[test]
fn tms_query_from_root_is_local() {
    let (_layout, mut net) = populated(3, 3, MembershipScheme::Tms);
    let before = net.sent_total;
    net.inject(NodeId(0), Input::StartQuery { scope: QueryScope::Global });
    assert!(net.run_until_quiet(1_000_000));
    let (members, _) = query_result(&net, NodeId(0)).expect("answered");
    assert_eq!(members.operational_count(), 27);
    assert_eq!(net.sent_total, before, "root-ring TMS query needs no messages");
}

#[test]
fn bms_query_aggregates_every_bottom_ring() {
    let (layout, mut net) = populated(3, 3, MembershipScheme::Bms);
    let ap = layout.aps()[0];
    net.inject(ap, Input::StartQuery { scope: QueryScope::Global });
    assert!(net.run_until_quiet(1_000_000));
    let (members, responses) = query_result(&net, ap).expect("query answered");
    assert_eq!(members.operational_count(), 27);
    assert_eq!(responses, 9, "one response per bottommost ring");
}

#[test]
fn ims_query_aggregates_middle_level() {
    let (layout, mut net) = populated(3, 3, MembershipScheme::Ims { level: 1 });
    let ap = layout.aps()[11];
    net.inject(ap, Input::StartQuery { scope: QueryScope::Global });
    assert!(net.run_until_quiet(1_000_000));
    let (members, responses) = query_result(&net, ap).expect("query answered");
    assert_eq!(members.operational_count(), 27);
    assert_eq!(responses, 3, "one response per level-1 ring");
}

#[test]
fn query_cost_ordering_tms_ims_bms() {
    // Same hierarchy, same data, same querying AP — message cost must
    // be TMS < IMS{1} < BMS, the paper's efficiency claim.
    let mut costs = Vec::new();
    for scheme in [MembershipScheme::Tms, MembershipScheme::Ims { level: 1 }, MembershipScheme::Bms]
    {
        let (layout, mut net) = populated(3, 3, scheme);
        let before = net.sent_total;
        let ap = layout.aps()[4];
        net.inject(ap, Input::StartQuery { scope: QueryScope::Global });
        assert!(net.run_until_quiet(1_000_000));
        assert!(query_result(&net, ap).is_some());
        costs.push(net.sent_total - before);
    }
    assert!(costs[0] < costs[1], "TMS {} !< IMS {}", costs[0], costs[1]);
    assert!(costs[1] < costs[2], "IMS {} !< BMS {}", costs[1], costs[2]);
}

#[test]
fn ring_scope_query_is_answered_locally_at_store_level() {
    let (layout, mut net) = populated(2, 4, MembershipScheme::Tms);
    let ap = layout.aps()[5];
    let ring = layout.placement(ap).unwrap().ring;
    let before = net.sent_total;
    net.inject(ap, Input::StartQuery { scope: QueryScope::Ring(ring) });
    assert!(net.run_until_quiet(1_000_000));
    let (members, _) = query_result(&net, ap).expect("answered");
    assert_eq!(members.operational_count(), 4, "own ring coverage");
    assert_eq!(net.sent_total, before);
}

#[test]
fn queries_reflect_later_changes() {
    let (layout, mut net) = populated(2, 3, MembershipScheme::Tms);
    let ap = layout.aps()[0];
    // member 0 leaves, member 100 joins
    net.inject(ap, Input::Mh(MhEvent::Leave { guid: Guid(0) }));
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(100), luid: Luid(9) }));
    assert!(net.run_until_quiet(1_000_000));
    net.inject(ap, Input::StartQuery { scope: QueryScope::Global });
    assert!(net.run_until_quiet(1_000_000));
    let (members, _) = query_result(&net, ap).expect("answered");
    assert!(!members.contains_operational(Guid(0)));
    assert!(members.contains_operational(Guid(100)));
    assert_eq!(members.operational_count(), 9);
}

#[test]
fn two_concurrent_queries_get_separate_answers() {
    let (layout, mut net) = populated(2, 3, MembershipScheme::Tms);
    let a = layout.aps()[1];
    let b = layout.aps()[7];
    net.inject(a, Input::StartQuery { scope: QueryScope::Global });
    net.inject(b, Input::StartQuery { scope: QueryScope::Global });
    assert!(net.run_until_quiet(1_000_000));
    let (ma, _) = query_result(&net, a).expect("a answered");
    let (mb, _) = query_result(&net, b).expect("b answered");
    assert_eq!(ma.operational_count(), 9);
    assert_eq!(mb.operational_count(), 9);
}
