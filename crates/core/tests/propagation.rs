//! Hierarchy-wide propagation tests: a membership change generated at an
//! access proxy must be agreed in its own ring, propagate bottom-up through
//! ring leaders (Notification-to-Parent), flood down into sibling subtrees
//! (Notification-to-Child), and be executed by every logical ring exactly
//! once.

use rgb_core::prelude::*;
use rgb_core::testing::Loopback;

fn hierarchy(h: usize, r: usize, cfg: ProtocolConfig) -> (HierarchyLayout, Loopback) {
    let layout = HierarchySpec::new(h, r).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &cfg);
    net.boot_all();
    (layout, net)
}

#[test]
fn every_ring_executes_a_change_exactly_once() {
    let (layout, mut net) = hierarchy(3, 3, ProtocolConfig::default());
    let ap = layout.aps()[5];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    // One loaded round per ring means epoch == 1 at every node of every ring.
    for (id, node) in &net.nodes {
        assert_eq!(node.epoch, 1, "node {id} executed {} loaded rounds", node.epoch);
    }
}

#[test]
fn tms_root_ring_holds_global_membership() {
    let (layout, mut net) = hierarchy(3, 3, ProtocolConfig::default());
    for (i, &ap) in layout.aps().iter().enumerate() {
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) }));
    }
    assert!(net.run_until_quiet(10_000_000));
    let n_aps = layout.aps().len();
    for &root_node in layout.root_ring().nodes.iter() {
        assert_eq!(
            net.node(root_node).ring_members.operational_count(),
            n_aps,
            "root node {root_node} misses members"
        );
    }
    // Middle (AGT) rings do not store members under TMS.
    for ring in layout.rings_at(1) {
        for &n in &ring.nodes {
            assert_eq!(net.node(n).ring_members.len(), 0, "AGT node {n} stored members");
        }
    }
    // Bottom rings keep exactly their own coverage.
    for ring in layout.rings_at(2) {
        for &n in &ring.nodes {
            assert_eq!(net.node(n).ring_members.operational_count(), 3);
        }
    }
}

#[test]
fn bms_stores_only_at_the_bottom() {
    let cfg = ProtocolConfig { scheme: MembershipScheme::Bms, ..ProtocolConfig::default() };
    let (layout, mut net) = hierarchy(3, 2, cfg);
    for (i, &ap) in layout.aps().iter().enumerate() {
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) }));
    }
    assert!(net.run_until_quiet(10_000_000));
    for level in 0..2 {
        for ring in layout.rings_at(level) {
            for &n in &ring.nodes {
                assert_eq!(net.node(n).ring_members.len(), 0);
            }
        }
    }
    for ring in layout.rings_at(2) {
        for &n in &ring.nodes {
            assert_eq!(net.node(n).ring_members.operational_count(), 2);
        }
    }
}

#[test]
fn ims_stores_subtree_aggregates_at_its_level() {
    let cfg =
        ProtocolConfig { scheme: MembershipScheme::Ims { level: 1 }, ..ProtocolConfig::default() };
    let (layout, mut net) = hierarchy(3, 3, cfg);
    for (i, &ap) in layout.aps().iter().enumerate() {
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) }));
    }
    assert!(net.run_until_quiet(10_000_000));
    // Each level-1 ring aggregates its subtree: r^2 = 9 members.
    for ring in layout.rings_at(1) {
        for &n in &ring.nodes {
            assert_eq!(
                net.node(n).ring_members.operational_count(),
                9,
                "IMS node {n} should hold its subtree"
            );
        }
    }
    // Root stores nothing under IMS{1}.
    for &n in layout.root_ring().nodes.iter() {
        assert_eq!(net.node(n).ring_members.len(), 0);
    }
}

#[test]
fn leave_propagates_to_the_root() {
    let (layout, mut net) = hierarchy(3, 2, ProtocolConfig::default());
    let ap = layout.aps()[0];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    net.inject(ap, Input::Mh(MhEvent::Leave { guid: Guid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    for &root_node in layout.root_ring().nodes.iter() {
        assert_eq!(net.node(root_node).ring_members.operational_count(), 0);
    }
}

#[test]
fn concurrent_changes_from_all_aps_converge() {
    let (layout, mut net) = hierarchy(3, 3, ProtocolConfig::default());
    // joins and immediate leaves interleaved across all APs
    for (i, &ap) in layout.aps().iter().enumerate() {
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) }));
        if i % 3 == 0 {
            net.inject(ap, Input::Mh(MhEvent::Leave { guid: Guid(i as u64) }));
        }
    }
    assert!(net.run_until_quiet(10_000_000));
    let expected = layout.aps().len() - layout.aps().len().div_ceil(3);
    for &root_node in layout.root_ring().nodes.iter() {
        assert_eq!(net.node(root_node).ring_members.operational_count(), expected);
    }
    // All root nodes agree exactly.
    let first = net.node(layout.root_ring().nodes[0]).ring_members.clone();
    for &n in &layout.root_ring().nodes[1..] {
        assert_eq!(net.node(n).ring_members, first);
    }
}

#[test]
fn cross_ring_handoff_updates_root_location() {
    let (layout, mut net) = hierarchy(3, 3, ProtocolConfig::default());
    let aps = layout.aps();
    let a = aps[0]; // first bottom ring
    let b = aps[8]; // a different bottom ring
    assert_ne!(layout.placement(a).unwrap().ring, layout.placement(b).unwrap().ring);
    net.inject(a, Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    net.inject(b, Input::Mh(MhEvent::HandoffIn { guid: Guid(1), luid: Luid(2), from: Some(a) }));
    assert!(net.run_until_quiet(1_000_000));
    for &root_node in layout.root_ring().nodes.iter() {
        let m = net.node(root_node).ring_members.get(Guid(1)).expect("known at root");
        assert_eq!(m.ap, b);
    }
}

#[test]
fn taller_hierarchies_propagate_too() {
    let (layout, mut net) = hierarchy(4, 2, ProtocolConfig::default());
    assert_eq!(layout.aps().len(), 16);
    let ap = layout.aps()[13];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    for (id, node) in &net.nodes {
        assert_eq!(node.epoch, 1, "node {id}");
    }
    for &root_node in layout.root_ring().nodes.iter() {
        assert!(net.node(root_node).ring_members.contains_operational(Guid(1)));
    }
}

#[test]
fn message_cost_scales_with_all_rings() {
    // The paper's HopCount model (formula 5) says one change involves all
    // tn rings at (r+1) hops each, ≈ (r+1)·tn − 1. Our measured proposal
    // traffic (tokens + notifications + leader relays) should be within a
    // small factor of that.
    let h = 3;
    let r = 3;
    let (layout, mut net) = hierarchy(h, r, ProtocolConfig::default());
    let ap = layout.aps()[4];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    let tn: u64 = (0..h).map(|i| (r as u64).pow(i as u32)).sum();
    let analytic = (r as u64 + 1) * tn - 1;
    let measured = net.sent("token")
        + net.sent("notify_parent")
        + net.sent("notify_child")
        + net.sent("mq_local");
    assert!(
        measured >= analytic.saturating_sub(tn) && measured <= analytic + 2 * tn,
        "measured {measured} vs analytic {analytic}"
    );
    // Token hops alone are exactly r per ring.
    assert_eq!(net.sent("token"), (r as u64) * tn);
}
