//! Lifecycle tests: member disconnection/resume (§1's disconnection
//! taxonomy, §4.2's `Disconnected` status) and runtime NE-Join/Leave with
//! ring-state transfer (§4.3's AP join procedure).

use rgb_core::prelude::*;
use rgb_core::testing::Loopback;

fn single_ring(r: usize) -> (HierarchyLayout, Loopback) {
    let layout = HierarchySpec::new(1, r).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
    net.boot_all();
    (layout, net)
}

// ---------------------------------------------------------------------
// disconnection / resume
// ---------------------------------------------------------------------

#[test]
fn disconnect_leaves_member_on_list_but_out_of_view() {
    let (layout, mut net) = single_ring(4);
    let ap = layout.aps()[1];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(5), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    net.inject(ap, Input::Mh(MhEvent::Disconnect { guid: Guid(5) }));
    assert!(net.run_until_quiet(100_000));
    for &n in layout.root_ring().nodes.iter() {
        let node = net.node(n);
        assert!(!node.ring_members.contains_operational(Guid(5)), "still operational at {n}");
        let rec = node.ring_members.get(Guid(5)).expect("record retained");
        assert_eq!(rec.status, MemberStatus::Disconnected);
    }
}

#[test]
fn resume_at_same_cell_restores_operational_status() {
    let (layout, mut net) = single_ring(4);
    let ap = layout.aps()[1];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(5), luid: Luid(1) }));
    net.inject(ap, Input::Mh(MhEvent::Disconnect { guid: Guid(5) }));
    assert!(net.run_until_quiet(100_000));
    net.inject(ap, Input::Mh(MhEvent::Resume { guid: Guid(5), luid: Luid(2) }));
    assert!(net.run_until_quiet(100_000));
    for &n in layout.root_ring().nodes.iter() {
        let rec = net.node(n).ring_members.get(Guid(5)).expect("present");
        assert_eq!(rec.status, MemberStatus::Operational);
        assert_eq!(rec.ap, ap);
        assert_eq!(rec.luid, Luid(2));
    }
}

#[test]
fn resume_at_another_cell_moves_the_member() {
    // §1: "voluntary disconnection … after an arbitrary period of time may
    // reconnect at any other cell and resume normal operation".
    let (layout, mut net) = single_ring(5);
    let a = layout.aps()[1];
    let b = layout.aps()[3];
    net.inject(a, Input::Mh(MhEvent::Join { guid: Guid(5), luid: Luid(1) }));
    net.inject(a, Input::Mh(MhEvent::Disconnect { guid: Guid(5) }));
    assert!(net.run_until_quiet(100_000));
    net.inject(b, Input::Mh(MhEvent::Resume { guid: Guid(5), luid: Luid(2) }));
    assert!(net.run_until_quiet(100_000));
    for &n in layout.root_ring().nodes.iter() {
        let rec = net.node(n).ring_members.get(Guid(5)).expect("present");
        assert_eq!(rec.status, MemberStatus::Operational);
        assert_eq!(rec.ap, b, "resume did not move the member at {n}");
    }
}

#[test]
fn disconnected_members_are_absent_from_views_and_queries() {
    let layout = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
    net.boot_all();
    let aps = layout.aps();
    for (i, &ap) in aps.iter().enumerate() {
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) }));
    }
    assert!(net.run_until_quiet(10_000_000));
    net.inject(aps[0], Input::Mh(MhEvent::Disconnect { guid: Guid(0) }));
    assert!(net.run_until_quiet(10_000_000));
    net.inject(aps[1], Input::StartQuery { scope: QueryScope::Global });
    assert!(net.run_until_quiet(10_000_000));
    let members = net
        .events_at(aps[1])
        .iter()
        .find_map(|e| match e {
            AppEvent::QueryResult { members, .. } => Some(members.clone()),
            _ => None,
        })
        .expect("answered");
    assert_eq!(members.operational_count(), aps.len() - 1);
    assert!(!members.contains_operational(Guid(0)));
}

#[test]
fn disconnect_then_failure_upgrades_to_removal() {
    let (layout, mut net) = single_ring(3);
    let ap = layout.aps()[0];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(5), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    net.inject(ap, Input::Mh(MhEvent::Disconnect { guid: Guid(5) }));
    net.inject(ap, Input::Mh(MhEvent::FailureDetected { guid: Guid(5) }));
    assert!(net.run_until_quiet(100_000));
    for &n in layout.root_ring().nodes.iter() {
        assert!(net.node(n).ring_members.get(Guid(5)).is_none(), "tombstone left at {n}");
    }
}

// ---------------------------------------------------------------------
// runtime NE-Join / NE-Leave
// ---------------------------------------------------------------------

/// Drive a standalone node joining ring 0 of a live loopback network.
fn join_standalone(net: &mut Loopback, layout: &HierarchyLayout, new_id: u64) -> NodeId {
    let joiner_id = NodeId(new_id);
    let joiner = NodeState::standalone(
        ProtocolConfig::default(),
        GroupId(1),
        joiner_id,
        RingId(1_000),
        layout.height() - 1,
        layout.height(),
    );
    net.nodes.insert(joiner_id, joiner);
    let contact = layout.aps()[0];
    let outs = net.nodes.get_mut(&joiner_id).unwrap().request_join(contact);
    // feed the outputs through the loopback manually
    for out in outs {
        if let Output::Send { to, msg } = out {
            net.inject(to, Input::Msg { from: joiner_id, msg });
        }
    }
    assert!(net.run_until_quiet(1_000_000));
    joiner_id
}

#[test]
fn standalone_node_is_its_own_leader_and_serves_members() {
    let mut node =
        NodeState::standalone(ProtocolConfig::default(), GroupId(1), NodeId(500), RingId(77), 0, 1);
    assert!(node.is_leader());
    assert!(node.is_bottom());
    let outs = node.handle(Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    // single-node ring agrees instantly, no messages needed
    assert!(outs.iter().all(|o| o.as_send().is_none()));
    assert!(node.ring_members.contains_operational(Guid(1)));
}

#[test]
fn joiner_is_admitted_and_installed() {
    let layout = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
    net.boot_all();
    let joiner_id = join_standalone(&mut net, &layout, 900);
    // every original node's roster now contains the joiner
    for &n in layout.root_ring().nodes.iter() {
        assert!(net.node(n).roster.contains(joiner_id), "roster missing joiner at {n}");
        assert_eq!(net.node(n).roster.len(), 4);
    }
    // the joiner installed the ring state
    let joiner = net.node(joiner_id);
    assert_eq!(joiner.ring_id(), layout.root_ring().id);
    assert_eq!(joiner.roster.len(), 4);
    let joined = net.events_at(joiner_id).iter().any(|e| matches!(e, AppEvent::JoinedRing { .. }));
    assert!(joined, "JoinedRing never delivered");
}

#[test]
fn joiner_sees_existing_members_and_future_changes() {
    let layout = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
    net.boot_all();
    // existing member before the join
    net.inject(layout.aps()[1], Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    let joiner_id = join_standalone(&mut net, &layout, 901);
    assert!(
        net.node(joiner_id).ring_members.contains_operational(Guid(1)),
        "state transfer missed the existing member"
    );
    // future change reaches the joiner through normal rounds
    net.inject(layout.aps()[2], Input::Mh(MhEvent::Join { guid: Guid(2), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    assert!(net.node(joiner_id).ring_members.contains_operational(Guid(2)));
    // and a member joining *at the joiner* reaches everyone else
    net.inject(joiner_id, Input::Mh(MhEvent::Join { guid: Guid(3), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    for &n in layout.root_ring().nodes.iter() {
        assert!(net.node(n).ring_members.contains_operational(Guid(3)));
    }
}

#[test]
fn duplicate_join_request_is_idempotent() {
    let layout = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
    net.boot_all();
    let joiner_id = join_standalone(&mut net, &layout, 902);
    // retry the request; rosters must not duplicate
    let outs = net.nodes.get_mut(&joiner_id).unwrap().request_join(layout.aps()[0]);
    for out in outs {
        if let Output::Send { to, msg } = out {
            net.inject(to, Input::Msg { from: joiner_id, msg });
        }
    }
    assert!(net.run_until_quiet(1_000_000));
    for &n in layout.root_ring().nodes.iter() {
        assert_eq!(net.node(n).roster.len(), 4, "duplicate admission at {n}");
    }
}

#[test]
fn voluntary_leave_shrinks_every_roster() {
    let layout = HierarchySpec::new(1, 4).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
    net.boot_all();
    let leaver = layout.aps()[2];
    let outs = net.nodes.get_mut(&leaver).unwrap().request_leave();
    for out in outs {
        if let Output::Send { to, msg } = out {
            net.inject(to, Input::Msg { from: leaver, msg });
        }
    }
    assert!(net.run_until_quiet(1_000_000));
    for &n in layout.root_ring().nodes.iter() {
        if n == leaver {
            continue;
        }
        assert!(!net.node(n).roster.contains(leaver), "roster still lists leaver at {n}");
        assert_eq!(net.node(n).roster.len(), 3);
    }
}
