//! Behavioural tests of the One-Round Token Passing Membership algorithm on
//! a single logical ring (paper §4.3, Figure 3).

use rgb_core::prelude::*;
use rgb_core::testing::Loopback;

/// One ring of `r` access proxies (height-1 hierarchy).
fn single_ring(r: usize, cfg: ProtocolConfig) -> (HierarchyLayout, Loopback) {
    let layout = HierarchySpec::new(1, r).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &cfg);
    net.boot_all();
    (layout, net)
}

#[test]
fn join_reaches_every_ring_node() {
    let (layout, mut net) = single_ring(5, ProtocolConfig::default());
    let ap = layout.aps()[3];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(7), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    for &n in layout.root_ring().nodes.iter() {
        assert!(net.node(n).ring_members.contains_operational(Guid(7)), "node {n} missing member");
    }
}

#[test]
fn epochs_and_views_are_identical_across_the_ring() {
    let (layout, mut net) = single_ring(6, ProtocolConfig::default());
    for (i, &ap) in layout.aps().iter().enumerate() {
        net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(100 + i as u64), luid: Luid(1) }));
    }
    assert!(net.run_until_quiet(1_000_000));
    let nodes = layout.root_ring().nodes.clone();
    let first = net.node(nodes[0]);
    for &n in &nodes[1..] {
        let other = net.node(n);
        assert_eq!(other.epoch, first.epoch, "epoch diverged at {n}");
        assert_eq!(other.ring_members, first.ring_members, "membership diverged at {n}");
    }
    assert_eq!(first.ring_members.operational_count(), 6);
}

#[test]
fn leave_removes_member_everywhere() {
    let (layout, mut net) = single_ring(4, ProtocolConfig::default());
    let ap = layout.aps()[0];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    net.inject(ap, Input::Mh(MhEvent::Leave { guid: Guid(1) }));
    assert!(net.run_until_quiet(100_000));
    for &n in layout.root_ring().nodes.iter() {
        assert_eq!(net.node(n).ring_members.operational_count(), 0);
    }
}

#[test]
fn originator_receives_agreement() {
    let (layout, mut net) = single_ring(5, ProtocolConfig::default());
    let ap = layout.aps()[2]; // not the leader (leader is min id = aps()[0])
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(9), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    let agreed = net
        .events_at(ap)
        .iter()
        .any(|e| matches!(e, AppEvent::Agreed { ids, .. } if ids.iter().any(|i| i.origin == ap)));
    assert!(agreed, "originator never saw its change agreed");
}

#[test]
fn holder_ack_sent_for_remote_originators() {
    let (layout, mut net) = single_ring(5, ProtocolConfig::default());
    let ap = layout.aps()[2];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(9), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    assert!(net.sent("holder_ack") >= 1, "expected a Holder-Acknowledgement");
}

#[test]
fn one_round_costs_r_plus_entry_hops_on_demand() {
    // OnDemand + TMS on a single ring: a join at a non-leader AP costs
    // 1 relay to the leader + r token hops. Token acks ride separately.
    let r = 5;
    let (layout, mut net) = single_ring(r, ProtocolConfig::default());
    let ap = layout.aps()[2];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(9), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    assert_eq!(net.sent("token"), r as u64, "token should travel exactly r hops");
    assert_eq!(net.sent("mq_local"), 1, "one relay to the leader");
}

#[test]
fn join_at_leader_skips_the_relay() {
    let r = 5;
    let (layout, mut net) = single_ring(r, ProtocolConfig::default());
    let leader = layout.root_ring().nodes.iter().copied().min().unwrap();
    net.inject(leader, Input::Mh(MhEvent::Join { guid: Guid(9), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    assert_eq!(net.sent("token"), r as u64);
    assert_eq!(net.sent("mq_local"), 0);
}

#[test]
fn aggregation_collapses_join_leave_into_nothing() {
    let (layout, mut net) = single_ring(4, ProtocolConfig::default());
    // Target a non-leader AP so both events sit in the leader's MQ while a
    // round for an unrelated change is in flight... simpler: join+leave at
    // the leader while the token is parked but queue both before draining.
    let leader = layout.root_ring().nodes.iter().copied().min().unwrap();
    let other = layout.aps()[3];
    // Keep the token busy with an unrelated change first.
    net.inject(other, Input::Mh(MhEvent::Join { guid: Guid(50), luid: Luid(1) }));
    // While messages are pending, queue join+leave of member 7 at leader.
    net.inject(leader, Input::Mh(MhEvent::Join { guid: Guid(7), luid: Luid(1) }));
    net.inject(leader, Input::Mh(MhEvent::Leave { guid: Guid(7) }));
    assert!(net.run_until_quiet(1_000_000));
    for &n in layout.root_ring().nodes.iter() {
        assert!(!net.node(n).ring_members.contains_operational(Guid(7)));
        assert!(net.node(n).ring_members.contains_operational(Guid(50)));
    }
}

#[test]
fn continuous_policy_rotates_holdership() {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 10;
    cfg.heartbeat_interval = 1_000_000; // silence heartbeats for this test
    cfg.token_lost_timeout = 1_000_000;
    let (layout, mut net) = single_ring(4, cfg);
    net.run_until(200);
    // Multiple rounds happened and different nodes started them.
    let starters: Vec<u64> =
        layout.root_ring().nodes.iter().map(|&n| net.node(n).stats.rounds_started).collect();
    let total: u64 = starters.iter().sum();
    assert!(total >= 4, "expected several rounds, got {total}");
    assert!(
        starters.iter().filter(|&&s| s > 0).count() >= 2,
        "rotation should spread holdership: {starters:?}"
    );
}

#[test]
fn static_holder_when_rotation_disabled() {
    let mut cfg = ProtocolConfig::live();
    cfg.rotate_holder = false;
    cfg.token_interval = 10;
    cfg.heartbeat_interval = 1_000_000;
    cfg.token_lost_timeout = 1_000_000;
    let (layout, mut net) = single_ring(4, cfg);
    net.run_until(200);
    let leader = layout.root_ring().nodes.iter().copied().min().unwrap();
    for &n in layout.root_ring().nodes.iter() {
        let started = net.node(n).stats.rounds_started;
        if n == leader {
            assert!(started >= 4);
        } else {
            assert_eq!(started, 0, "non-leader {n} started rounds despite static holder");
        }
    }
}

#[test]
fn continuous_changes_still_agree() {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 10;
    cfg.heartbeat_interval = 1_000_000;
    cfg.token_lost_timeout = 1_000_000;
    let (layout, mut net) = single_ring(4, cfg);
    let ap = layout.aps()[2];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(5), luid: Luid(1) }));
    net.run_until(500);
    for &n in layout.root_ring().nodes.iter() {
        assert!(net.node(n).ring_members.contains_operational(Guid(5)));
    }
}

#[test]
fn single_node_ring_agrees_instantly() {
    let (layout, mut net) = single_ring(1, ProtocolConfig::default());
    let ap = layout.aps()[0];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(3), luid: Luid(1) }));
    assert!(net.run_until_quiet(10_000));
    assert!(net.node(ap).ring_members.contains_operational(Guid(3)));
    assert_eq!(net.sent("token"), 0, "no messages needed on a 1-ring");
}

#[test]
fn handoff_between_ring_neighbors_updates_location() {
    let (layout, mut net) = single_ring(5, ProtocolConfig::default());
    let a = layout.aps()[1];
    let b = layout.aps()[2];
    net.inject(a, Input::Mh(MhEvent::Join { guid: Guid(8), luid: Luid(1) }));
    assert!(net.run_until_quiet(100_000));
    net.inject(b, Input::Mh(MhEvent::HandoffIn { guid: Guid(8), luid: Luid(2), from: Some(a) }));
    assert!(net.run_until_quiet(100_000));
    for &n in layout.root_ring().nodes.iter() {
        let m = net.node(n).ring_members.get(Guid(8)).expect("member known");
        assert_eq!(m.ap, b, "location not updated at {n}");
        assert_eq!(m.luid, Luid(2));
    }
}
