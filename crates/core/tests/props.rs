//! Property-based tests (proptest) of the core data structures and
//! invariants: MQ aggregation soundness, ring-roster arithmetic, partition
//! segmentation, and wire-format round-trips.

use proptest::prelude::*;
use rgb_core::partition;
use rgb_core::prelude::*;
use rgb_core::wire;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------

fn arb_member_op(guids: u64) -> impl Strategy<Value = ChangeOp> {
    let g = 0..guids;
    prop_oneof![
        (g.clone(), any::<u16>(), 0u64..8).prop_map(|(guid, luid, ap)| ChangeOp::MemberJoin {
            info: MemberInfo::operational(Guid(guid), Luid(luid as u64), NodeId(ap)),
        }),
        g.clone().prop_map(|guid| ChangeOp::MemberLeave { guid: Guid(guid) }),
        (g.clone(), any::<u16>(), proptest::option::of(0u64..8), 0u64..8).prop_map(
            |(guid, luid, from, to)| ChangeOp::MemberHandoff {
                guid: Guid(guid),
                luid: Luid(luid as u64),
                from: from.map(NodeId),
                to: NodeId(to),
            }
        ),
        g.prop_map(|guid| ChangeOp::MemberFailure { guid: Guid(guid) }),
    ]
}

fn arb_record(guids: u64) -> impl Strategy<Value = ChangeRecord> {
    (arb_member_op(guids), any::<u64>()).prop_map(|(op, seq)| {
        ChangeRecord::new(ChangeId { origin: NodeId(1), seq }, NodeId(1), RingId(0), op)
    })
}

/// The reference execution semantics: exactly what
/// `protocol::apply_member_op` does at every node — location ops are
/// applied under the stale-LUID guard (Mobile-IPv6 binding-sequence
/// discipline), departures unconditionally.
fn apply_ops(list: &mut MemberList, records: &[ChangeRecord]) {
    for rec in records {
        match &rec.op {
            ChangeOp::MemberJoin { info } => {
                list.apply_join(*info);
            }
            ChangeOp::MemberLeave { guid } | ChangeOp::MemberFailure { guid } => {
                list.remove(*guid);
            }
            ChangeOp::MemberHandoff { guid, luid, to, .. } => {
                list.apply_handoff(*guid, *luid, *to);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// MQ aggregation soundness
// ---------------------------------------------------------------------

proptest! {
    /// Applying the aggregated queue to a member list must yield exactly the
    /// same final membership as applying the raw op sequence.
    #[test]
    fn aggregation_preserves_final_membership(
        ops in proptest::collection::vec(arb_record(4), 0..40)
    ) {
        let mut raw_list = MemberList::new();
        apply_ops(&mut raw_list, &ops);

        let mut mq = MessageQueue::new();
        for rec in &ops {
            mq.push_aggregating(rec.clone());
        }
        let aggregated = mq.drain(usize::MAX);
        let mut agg_list = MemberList::new();
        apply_ops(&mut agg_list, &aggregated);

        prop_assert_eq!(
            raw_list.operational_guids(),
            agg_list.operational_guids(),
            "raw vs aggregated membership diverged"
        );
        // Locations must match too.
        for guid in raw_list.operational_guids() {
            prop_assert_eq!(
                raw_list.get(guid).map(|m| m.ap),
                agg_list.get(guid).map(|m| m.ap)
            );
        }
    }

    /// Aggregation never grows the queue beyond the raw insertion count.
    #[test]
    fn aggregation_never_grows(ops in proptest::collection::vec(arb_record(3), 0..40)) {
        let mut mq = MessageQueue::new();
        for (i, rec) in ops.iter().enumerate() {
            mq.push_aggregating(rec.clone());
            prop_assert!(mq.len() <= i + 1);
        }
    }
}

// ---------------------------------------------------------------------
// Ring roster arithmetic
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn roster_next_prev_are_inverse(ids in proptest::collection::btree_set(0u64..1000, 1..40)) {
        let nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let roster = RingRoster::new(RingId(0), Tier::AccessProxy, 0, nodes.clone());
        for &n in &nodes {
            let next = roster.next_of(n).unwrap();
            prop_assert_eq!(roster.prev_of(next).unwrap(), n);
            let prev = roster.prev_of(n).unwrap();
            prop_assert_eq!(roster.next_of(prev).unwrap(), n);
        }
        prop_assert_eq!(roster.leader(), nodes.iter().copied().min());
    }

    #[test]
    fn roster_walk_visits_everyone_once(ids in proptest::collection::btree_set(0u64..1000, 1..40)) {
        let nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let roster = RingRoster::new(RingId(0), Tier::AccessProxy, 0, nodes.clone());
        let start = nodes[0];
        let mut seen = vec![start];
        let mut cur = start;
        loop {
            cur = roster.next_of(cur).unwrap();
            if cur == start { break; }
            seen.push(cur);
            prop_assert!(seen.len() <= nodes.len(), "walk does not terminate");
        }
        seen.sort();
        let mut expect = nodes.clone();
        expect.sort();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn roster_remove_keeps_ring_closed(
        ids in proptest::collection::btree_set(0u64..1000, 2..40),
        victim_idx in 0usize..40
    ) {
        let nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let mut roster = RingRoster::new(RingId(0), Tier::AccessProxy, 0, nodes.clone());
        let victim = nodes[victim_idx % nodes.len()];
        prop_assert!(roster.remove(victim));
        prop_assert!(!roster.contains(victim));
        if let Some(&start) = roster.nodes().first() {
            // Ring is still closed: walking next() returns to start.
            let mut cur = start;
            for _ in 0..roster.len() {
                cur = roster.next_of(cur).unwrap();
            }
            prop_assert_eq!(cur, start);
        }
    }
}

// ---------------------------------------------------------------------
// Partition segmentation
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn segments_cover_exactly_alive_nodes(
        n in 1usize..30,
        fault_bits in proptest::collection::vec(any::<bool>(), 30)
    ) {
        let nodes: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let faulty: BTreeSet<NodeId> = nodes
            .iter()
            .zip(&fault_bits)
            .filter(|(_, &f)| f)
            .map(|(&n, _)| n)
            .collect();
        let segs = partition::segments(&nodes, &faulty);
        let covered: BTreeSet<NodeId> = segs.iter().flatten().copied().collect();
        let alive: BTreeSet<NodeId> =
            nodes.iter().copied().filter(|x| !faulty.contains(x)).collect();
        prop_assert_eq!(covered.len(), segs.iter().map(Vec::len).sum::<usize>(), "duplicate nodes across segments");
        prop_assert_eq!(covered, alive);
        // Segment count is bounded by the fault count (each gap needs a fault).
        let faults = partition::fault_count(&nodes, &faulty);
        if faults > 0 {
            prop_assert!(segs.len() <= faults);
        } else {
            prop_assert_eq!(segs.len(), 1);
        }
    }

    #[test]
    fn merge_segments_is_a_permutation_of_alive(
        n in 1usize..30,
        fault_bits in proptest::collection::vec(any::<bool>(), 30)
    ) {
        let nodes: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let faulty: BTreeSet<NodeId> = nodes
            .iter()
            .zip(&fault_bits)
            .filter(|(_, &f)| f)
            .map(|(&n, _)| n)
            .collect();
        let segs = partition::segments(&nodes, &faulty);
        let merged = partition::merge_segments(&segs);
        let direct = partition::merged_ring(&nodes, &faulty);
        let a: BTreeSet<NodeId> = merged.iter().copied().collect();
        let b: BTreeSet<NodeId> = direct.iter().copied().collect();
        prop_assert_eq!(merged.len(), a.len(), "merge produced duplicates");
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Wire round-trips
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn wire_round_trip_mq_insert(records in proptest::collection::vec(arb_record(16), 0..10)) {
        let env = Envelope {
            gid: GroupId(3),
            msg: Msg::MqInsert { kind: NotifyKind::ToParent, records },
        };
        let bytes = wire::encode(&env);
        let back = wire::decode(&bytes).unwrap();
        prop_assert_eq!(back, env);
    }

    #[test]
    fn wire_round_trip_token(
        records in proptest::collection::vec(arb_record(16), 0..10),
        seq in any::<u64>(),
        holder in 0u64..100,
        visited in proptest::collection::vec(0u64..100, 0..10),
    ) {
        let mut t = Token::fresh(GroupId(1), RingId(2), seq, NodeId(holder), records);
        for v in visited {
            t.note_visit(NodeId(v));
        }
        let env = Envelope { gid: GroupId(1), msg: Msg::Token(t) };
        let bytes = wire::encode(&env);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), env);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = wire::decode(&bytes);
    }
}
