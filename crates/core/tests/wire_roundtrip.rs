//! Property test: every [`Msg`] variant round-trips through
//! [`wire::encode`]/[`wire::decode`] **byte-identically** — decode(encode)
//! returns the same envelope, and re-encoding that envelope reproduces the
//! exact original byte string.
//!
//! This guards the substrate layer's codec path: since the simulator now
//! routes every delivery through `rgb_core::wire` (like the live runtime
//! always did), a codec asymmetry would corrupt *both* execution worlds.

use proptest::prelude::*;
use rgb_core::prelude::*;
use rgb_core::wire;

// ---------------------------------------------------------------------
// strategies: arbitrary values for every message ingredient
// ---------------------------------------------------------------------

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u64..1_000).prop_map(NodeId)
}

fn arb_ring() -> impl Strategy<Value = RingId> {
    (0u32..64).prop_map(RingId)
}

fn arb_member_info() -> impl Strategy<Value = MemberInfo> {
    (0u64..64, any::<u16>(), 0u64..32, 0u8..3).prop_map(|(guid, luid, ap, status)| {
        let mut info = MemberInfo::operational(Guid(guid), Luid(luid as u64), NodeId(ap));
        info.status = match status {
            0 => MemberStatus::Operational,
            1 => MemberStatus::Disconnected,
            _ => MemberStatus::Failed,
        };
        info
    })
}

fn arb_member_list() -> impl Strategy<Value = MemberList> {
    proptest::collection::vec(arb_member_info(), 0..8).prop_map(|infos| {
        let mut list = MemberList::new();
        for info in infos {
            list.upsert(info);
        }
        list
    })
}

fn arb_change_id() -> impl Strategy<Value = ChangeId> {
    (arb_node(), any::<u64>()).prop_map(|(origin, seq)| ChangeId { origin, seq })
}

fn arb_change_op() -> impl Strategy<Value = ChangeOp> {
    prop_oneof![
        arb_member_info().prop_map(|info| ChangeOp::MemberJoin { info }),
        (0u64..64).prop_map(|g| ChangeOp::MemberLeave { guid: Guid(g) }),
        (0u64..64, any::<u16>(), proptest::option::of(arb_node()), arb_node()).prop_map(
            |(g, l, from, to)| ChangeOp::MemberHandoff {
                guid: Guid(g),
                luid: Luid(l as u64),
                from,
                to,
            }
        ),
        (0u64..64).prop_map(|g| ChangeOp::MemberFailure { guid: Guid(g) }),
        (0u64..64).prop_map(|g| ChangeOp::MemberDisconnect { guid: Guid(g) }),
        (arb_node(), arb_ring()).prop_map(|(node, ring)| ChangeOp::NeJoin { node, ring }),
        (arb_node(), arb_ring()).prop_map(|(node, ring)| ChangeOp::NeLeave { node, ring }),
        (arb_node(), arb_ring()).prop_map(|(node, ring)| ChangeOp::NeFailure { node, ring }),
        (arb_ring(), arb_node()).prop_map(|(ring, leader)| ChangeOp::LeaderChange { ring, leader }),
    ]
}

fn arb_record() -> impl Strategy<Value = ChangeRecord> {
    (
        arb_change_id(),
        arb_node(),
        arb_ring(),
        proptest::option::of(arb_ring()),
        any::<bool>(),
        arb_change_op(),
    )
        .prop_map(|(id, origin, origin_ring, from_child_ring, descending, op)| ChangeRecord {
            id,
            origin,
            origin_ring,
            from_child_ring,
            descending,
            op,
        })
}

fn arb_records() -> impl Strategy<Value = Vec<ChangeRecord>> {
    proptest::collection::vec(arb_record(), 0..6)
}

fn arb_token() -> impl Strategy<Value = Token> {
    (
        (0u32..16, arb_ring(), any::<u64>(), arb_node()),
        arb_records(),
        proptest::collection::vec(arb_node(), 0..5),
        proptest::collection::vec(arb_node(), 0..5),
    )
        .prop_map(|((gid, ring, seq, holder), ops, pending, visited)| {
            let mut t = Token::fresh(GroupId(gid), ring, seq, holder, ops);
            for n in pending {
                t.note_pending(n);
            }
            for n in visited {
                t.note_visit(n);
            }
            t
        })
}

fn arb_summary() -> impl Strategy<Value = StatusSummary> {
    (arb_ring(), any::<bool>(), arb_node(), proptest::collection::vec(arb_node(), 0..6))
        .prop_map(|(ring, ring_ok, leader, roster)| StatusSummary { ring, ring_ok, leader, roster })
}

fn arb_notify_kind() -> impl Strategy<Value = NotifyKind> {
    prop_oneof![Just(NotifyKind::Local), Just(NotifyKind::ToParent), Just(NotifyKind::ToChild),]
}

fn arb_query_scope() -> impl Strategy<Value = QueryScope> {
    prop_oneof![Just(QueryScope::Global), arb_ring().prop_map(QueryScope::Ring)]
}

fn arb_mh_event() -> impl Strategy<Value = MhEvent> {
    prop_oneof![
        (0u64..64, any::<u16>())
            .prop_map(|(g, l)| MhEvent::Join { guid: Guid(g), luid: Luid(l as u64) }),
        (0u64..64).prop_map(|g| MhEvent::Leave { guid: Guid(g) }),
        (0u64..64, any::<u16>(), proptest::option::of(arb_node())).prop_map(|(g, l, from)| {
            MhEvent::HandoffIn { guid: Guid(g), luid: Luid(l as u64), from }
        }),
        (0u64..64).prop_map(|g| MhEvent::FailureDetected { guid: Guid(g) }),
        (0u64..64).prop_map(|g| MhEvent::Disconnect { guid: Guid(g) }),
        (0u64..64, any::<u16>())
            .prop_map(|(g, l)| MhEvent::Resume { guid: Guid(g), luid: Luid(l as u64) }),
    ]
}

fn arb_ring_snapshot() -> impl Strategy<Value = RingSnapshot> {
    (
        arb_ring(),
        0u8..6,
        1u8..7,
        proptest::collection::vec(arb_node(), 0..6),
        arb_member_list(),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(arb_node()),
            proptest::option::of(arb_ring()),
            proptest::collection::vec(0u32..512, 0..6),
        ),
    )
        .prop_map(|(ring, level, height, roster, members, rest)| {
            let (epoch, last_token_seq, parent, parent_ring, level_ring_counts) = rest;
            RingSnapshot {
                ring,
                level,
                height,
                roster,
                members,
                epoch,
                last_token_seq,
                parent,
                parent_ring,
                level_ring_counts,
            }
        })
}

/// Every [`Msg`] variant.
fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        arb_token().prop_map(Msg::Token),
        (arb_ring(), any::<u64>()).prop_map(|(ring, seq)| Msg::TokenAck { ring, seq }),
        (arb_notify_kind(), arb_records())
            .prop_map(|(kind, records)| Msg::MqInsert { kind, records }),
        (arb_ring(), any::<u64>(), proptest::collection::vec(arb_change_id(), 0..6))
            .prop_map(|(ring, seq, change_ids)| Msg::HolderAck { ring, seq, change_ids }),
        arb_summary().prop_map(Msg::HeartbeatUp),
        arb_summary().prop_map(Msg::HeartbeatDown),
        (arb_ring(), arb_node()).prop_map(|(ring, leader)| Msg::AttachChild { ring, leader }),
        (arb_node(), arb_ring())
            .prop_map(|(parent, parent_ring)| Msg::AttachAccepted { parent, parent_ring }),
        (
            arb_change_id(),
            arb_node(),
            arb_query_scope(),
            proptest::option::of(0u8..250),
            any::<bool>()
        )
            .prop_map(|(id, reply_to, scope, fanout_level, spread)| Msg::QueryRequest {
                qid: QueryId { origin: id.origin, seq: id.seq },
                reply_to,
                scope,
                fanout_level,
                spread,
            }),
        (arb_change_id(), arb_member_list(), any::<u32>()).prop_map(|(id, members, expected)| {
            Msg::QueryResponse {
                qid: QueryId { origin: id.origin, seq: id.seq },
                members,
                expected,
            }
        }),
        arb_node().prop_map(|node| Msg::JoinRing { node }),
        (arb_ring(), proptest::collection::vec(arb_node(), 0..6), arb_member_list())
            .prop_map(|(ring, roster, members)| Msg::MergeRings { ring, roster, members }),
        arb_ring_snapshot().prop_map(|s| Msg::RingSync(Box::new(s))),
        arb_mh_event().prop_map(|event| Msg::FromMh { event }),
    ]
}

proptest! {
    /// decode(encode(env)) == env, and encode(decode(encode(env))) is the
    /// *same byte string* — no lossy normalisation hides in the codec.
    #[test]
    fn every_msg_round_trips_byte_identically(gid in 0u32..16, msg in arb_msg()) {
        let env = Envelope { gid: GroupId(gid), msg };
        let bytes = wire::encode(&env);
        let back = wire::decode(&bytes).expect("encoded envelope must decode");
        prop_assert_eq!(&back, &env, "decoded envelope differs");
        let re_encoded = wire::encode(&back);
        prop_assert_eq!(
            re_encoded.as_ref(),
            bytes.as_ref(),
            "re-encoding is not byte-identical"
        );
    }
}
