//! Membership-Partition/Merge (§6 future work): two independently formed
//! rings merging into one, and a paper-model partition scenario healed by
//! the merge flow.

use rgb_core::prelude::*;
use rgb_core::testing::Loopback;

/// Build two standalone single-node "rings", grow one by NE-Joins, then
/// merge the other in.
#[test]
fn two_rings_merge_into_one() {
    // Ring A: nodes 0,1,2 (built by runtime joins onto a standalone node).
    let layout = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
    net.boot_all();
    // Ring B: standalone nodes 10, 11 — 11 joins 10's ring first.
    let b_leader = NodeId(10);
    let b_member = NodeId(11);
    net.nodes.insert(
        b_leader,
        NodeState::standalone(ProtocolConfig::default(), GroupId(1), b_leader, RingId(50), 0, 1),
    );
    net.nodes.insert(
        b_member,
        NodeState::standalone(ProtocolConfig::default(), GroupId(1), b_member, RingId(51), 0, 1),
    );
    let outs = net.nodes.get_mut(&b_member).unwrap().request_join(b_leader);
    for out in outs {
        if let Output::Send { to, msg } = out {
            net.inject(to, Input::Msg { from: b_member, msg });
        }
    }
    assert!(net.run_until_quiet(1_000_000));
    assert_eq!(net.node(b_leader).roster.len(), 2);

    // Members join both rings.
    net.inject(layout.aps()[0], Input::Mh(MhEvent::Join { guid: Guid(1), luid: Luid(1) }));
    net.inject(b_leader, Input::Mh(MhEvent::Join { guid: Guid(2), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));

    // Merge B into A (B's leader proposes to A's leader).
    let a_leader = layout.root_ring().nodes.iter().copied().min().unwrap();
    let outs = net.nodes.get_mut(&b_leader).unwrap().propose_merge(a_leader);
    for out in outs {
        if let Output::Send { to, msg } = out {
            net.inject(to, Input::Msg { from: b_leader, msg });
        }
    }
    assert!(net.run_until_quiet(1_000_000));

    // One ring of 5 nodes, knowing both members, everywhere.
    let everyone = [layout.root_ring().nodes.clone(), vec![b_leader, b_member]].concat();
    for &n in &everyone {
        let node = net.node(n);
        assert_eq!(node.roster.len(), 5, "roster wrong at {n}");
        assert_eq!(node.ring_id(), layout.root_ring().id, "ring id wrong at {n}");
        assert!(node.ring_members.contains_operational(Guid(1)), "member 1 missing at {n}");
        assert!(node.ring_members.contains_operational(Guid(2)), "member 2 missing at {n}");
    }
    // Post-merge changes flow to everyone, including the absorbed nodes.
    net.inject(b_member, Input::Mh(MhEvent::Join { guid: Guid(3), luid: Luid(1) }));
    assert!(net.run_until_quiet(1_000_000));
    for &n in &everyone {
        assert!(net.node(n).ring_members.contains_operational(Guid(3)));
    }
}

/// Paper-model partition: a ring shatters (≥2 crashes), the surviving
/// segments run independently after repair, and the merge flow re-unifies
/// them. Here the "partition" is induced by the greedy repair of a
/// continuous ring after a double crash, then a (conceptually revived)
/// splinter ring merges back.
#[test]
fn splinter_ring_merges_back_after_partition() {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 10;
    cfg.token_retransmit_timeout = 5;
    cfg.token_retransmit_limit = 1;
    cfg.token_lost_timeout = 150;
    cfg.heartbeat_interval = 1_000_000;
    let layout = HierarchySpec::new(1, 6).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &cfg);
    net.boot_all();
    let nodes = layout.root_ring().nodes.clone();
    net.run_until(100);
    // Double crash: the paper's model calls this ring partitioned.
    net.crash(nodes[2]);
    net.crash(nodes[4]);
    net.run_until(3_000);
    let survivors: Vec<NodeId> =
        nodes.iter().copied().filter(|&n| n != nodes[2] && n != nodes[4]).collect();
    for &n in &survivors {
        assert_eq!(net.node(n).roster.len(), 4, "repair incomplete at {n}");
    }
    // A splinter partition (a separately formed ring with its own members)
    // reconnects: its leader proposes a merge to the survivors' leader.
    let splinter = NodeId(100);
    net.nodes.insert(
        splinter,
        NodeState::standalone(cfg.clone(), GroupId(1), splinter, RingId(90), 0, 1),
    );
    net.inject(splinter, Input::Mh(MhEvent::Join { guid: Guid(44), luid: Luid(1) }));
    let survivors_leader = survivors.iter().copied().min().unwrap();
    let outs = net.nodes.get_mut(&splinter).unwrap().propose_merge(survivors_leader);
    for out in outs {
        if let Output::Send { to, msg } = out {
            net.inject(to, Input::Msg { from: splinter, msg });
        }
    }
    net.run_until(6_000);
    for &n in &survivors {
        assert!(net.node(n).roster.contains(splinter), "merge missed {n}");
        assert!(
            net.node(n).ring_members.contains_operational(Guid(44)),
            "absorbed member missing at {n}"
        );
    }
    assert_eq!(net.node(splinter).ring_id(), layout.root_ring().id);
}
