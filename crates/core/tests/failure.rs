//! Fault-detection and local-repair tests (§5.2): token retransmission,
//! exclusion of faulty successors, leader re-election, token regeneration,
//! and re-attachment of orphaned rings.

use rgb_core::prelude::*;
use rgb_core::testing::Loopback;

fn live_cfg() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 10;
    cfg.token_retransmit_timeout = 5;
    cfg.token_retransmit_limit = 2;
    cfg.token_lost_timeout = 200;
    cfg.heartbeat_interval = 25;
    cfg.parent_timeout = 100;
    cfg.child_timeout = 100;
    cfg
}

fn single_ring(r: usize) -> (HierarchyLayout, Loopback) {
    let layout = HierarchySpec::new(1, r).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &live_cfg());
    net.boot_all();
    (layout, net)
}

#[test]
fn crashed_successor_is_excluded_and_ring_keeps_working() {
    let (layout, mut net) = single_ring(5);
    let nodes = layout.root_ring().nodes.clone();
    let victim = nodes[2];
    net.run_until(100); // let the token circulate
    net.crash(victim);
    net.run_until(1_500);
    // Every surviving node eventually drops the victim from its roster.
    for &n in &nodes {
        if n == victim {
            continue;
        }
        assert!(!net.node(n).roster.contains(victim), "node {n} still lists crashed {victim}");
        assert_eq!(net.node(n).roster.len(), 4);
    }
    // And the repair event was delivered somewhere.
    let repaired = nodes.iter().any(|&n| {
        net.events_at(n)
            .iter()
            .any(|e| matches!(e, AppEvent::RingRepaired { excluded, .. } if *excluded == victim))
    });
    assert!(repaired, "no RingRepaired event observed");
}

#[test]
fn ring_still_agrees_on_changes_after_repair() {
    let (layout, mut net) = single_ring(5);
    let nodes = layout.root_ring().nodes.clone();
    let victim = nodes[3];
    net.run_until(100);
    net.crash(victim);
    net.run_until(1_500);
    // New membership change after repair.
    let ap = nodes[1];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(77), luid: Luid(1) }));
    net.run_until(2_500);
    for &n in &nodes {
        if n == victim {
            continue;
        }
        assert!(
            net.node(n).ring_members.contains_operational(Guid(77)),
            "post-repair change missing at {n}"
        );
    }
}

#[test]
fn crashed_leader_triggers_re_election() {
    let (layout, mut net) = single_ring(5);
    let nodes = layout.root_ring().nodes.clone();
    let leader = nodes.iter().copied().min().unwrap();
    net.run_until(100);
    net.crash(leader);
    net.run_until(2_000);
    let expected_new = nodes.iter().copied().filter(|&n| n != leader).min().unwrap();
    for &n in &nodes {
        if n == leader {
            continue;
        }
        assert_eq!(
            net.node(n).leader(),
            Some(expected_new),
            "node {n} disagrees on the new leader"
        );
    }
}

#[test]
fn two_adjacent_crashes_are_survived_by_greedy_repair() {
    // The analytical model counts ≥2 faults as a partition; the
    // implementation is stronger and repairs past consecutive failures.
    let (layout, mut net) = single_ring(6);
    let nodes = layout.root_ring().nodes.clone();
    net.run_until(100);
    net.crash(nodes[2]);
    net.crash(nodes[3]);
    net.run_until(3_000);
    for &n in &nodes {
        if n == nodes[2] || n == nodes[3] {
            continue;
        }
        assert_eq!(net.node(n).roster.len(), 4, "roster wrong at {n}");
    }
    // Ring still functional.
    net.inject(nodes[5], Input::Mh(MhEvent::Join { guid: Guid(5), luid: Luid(1) }));
    net.run_until(4_000);
    for &n in &nodes {
        if n == nodes[2] || n == nodes[3] {
            continue;
        }
        assert!(net.node(n).ring_members.contains_operational(Guid(5)));
    }
}

#[test]
fn orphaned_ring_reattaches_to_another_parent_node() {
    let layout = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &live_cfg());
    net.boot_all();
    // Heartbeats established, rosters cached.
    net.run_until(200);
    // Find a bottom ring and crash its sponsor.
    let bottom = layout.rings_at(1).next().unwrap().clone();
    let sponsor = bottom.parent_node.unwrap();
    net.crash(sponsor);
    net.run_until(2_000);
    // The bottom ring's leader must have re-attached to a surviving root node.
    let leader_now = net
        .nodes
        .iter()
        .find(|(id, n)| bottom.nodes.contains(id) && n.is_leader())
        .map(|(_, n)| n)
        .expect("bottom ring has a leader");
    let new_parent = leader_now.parent.expect("has a parent");
    assert_ne!(new_parent, sponsor, "still attached to the crashed sponsor");
    assert!(layout.root_ring().nodes.contains(&new_parent));
    assert!(leader_now.parent_ok);
    // And the adopting node lists the ring as its child.
    let adopted = net.node(new_parent).children.get(&bottom.id).expect("adopted");
    assert!(adopted.ok);
}

#[test]
fn changes_flow_to_root_after_reattachment() {
    let layout = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
    let mut net = Loopback::from_layout(&layout, &live_cfg());
    net.boot_all();
    net.run_until(200);
    let bottom = layout.rings_at(1).next().unwrap().clone();
    let sponsor = bottom.parent_node.unwrap();
    net.crash(sponsor);
    net.run_until(2_000);
    // A join in the re-attached ring must still reach the (surviving) root.
    let ap = bottom.nodes[1];
    net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(42), luid: Luid(1) }));
    net.run_until(4_000);
    for &root_node in layout.root_ring().nodes.iter() {
        if root_node == sponsor {
            continue;
        }
        assert!(
            net.node(root_node).ring_members.contains_operational(Guid(42)),
            "root node {root_node} missed the post-reattach join"
        );
    }
}

#[test]
fn retransmissions_happen_before_exclusion() {
    let (layout, mut net) = single_ring(4);
    let nodes = layout.root_ring().nodes.clone();
    net.run_until(100);
    net.crash(nodes[1]);
    net.run_until(1_000);
    let retransmits: u64 = nodes.iter().map(|&n| net.node(n).stats.retransmits).sum();
    assert!(retransmits >= 2, "exclusion without retransmission attempts");
}

#[test]
fn token_lost_regeneration_restores_circulation() {
    // Crash the node that currently holds/forwards the token *and* its
    // successor's ack: the simplest reproduction is crashing two nodes at
    // once; the leader's TokenLost timer must regenerate.
    let (layout, mut net) = single_ring(5);
    let nodes = layout.root_ring().nodes.clone();
    net.run_until(50);
    net.crash(nodes[4]);
    net.crash(nodes[3]);
    net.run_until(5_000);
    let alive: Vec<_> = nodes[..3].to_vec();
    let rounds: u64 = alive.iter().map(|&n| net.node(n).stats.rounds_completed).sum();
    assert!(rounds > 0, "no rounds completed after double crash");
    // Ring usable again.
    net.inject(alive[2], Input::Mh(MhEvent::Join { guid: Guid(9), luid: Luid(1) }));
    net.run_until(7_000);
    for &n in &alive {
        assert!(net.node(n).ring_members.contains_operational(Guid(9)));
    }
}
