//! The Membership-Query algorithm (paper §4.4) for the TMS, BMS and IMS
//! maintenance schemes.
//!
//! The query plan is uniform across schemes; only the *target level* (where
//! member lists are stored) differs:
//!
//! 1. **Ascent** — the accepting NE forwards the request parent-by-parent
//!    until it reaches the topmost ring.
//! 2. **Fan-out** — from the root ring the request descends towards the
//!    target level: the entry node of each ring *spreads* the request to its
//!    ring peers, and every node forwards it to the leaders of its child
//!    rings.
//! 3. **Responses** — each target-level ring answers exactly once (it is
//!    entered exactly once, through its leader) by sending its
//!    `ListOfRingMembers` straight back to the requesting NE, which
//!    aggregates `r^target` partial responses into the final answer.
//!
//! Under TMS the target level is 0, so the "fan-out" is just the entry node
//! answering with the global list — one request path and one response, the
//! efficiency the paper claims for TMS. Under BMS the fan-out reaches every
//! bottommost ring — the expensive variant the paper warns about.

use crate::events::{AppEvent, Output};
use crate::ids::NodeId;
use crate::member::MemberList;
use crate::message::{Msg, QueryId, QueryScope};
use crate::node::{NodeState, QueryAgg};

impl NodeState {
    /// Application entry point: ask for the membership under `scope`.
    pub(crate) fn start_query(&mut self, scope: QueryScope, outs: &mut Vec<Output>) {
        let qid = self.next_query_id();
        match scope {
            QueryScope::Ring(ring) if ring == self.ring_id() && self.is_store_level() => {
                // Local ring query answered from local state.
                outs.push(Output::Deliver(AppEvent::QueryResult {
                    qid,
                    members: self.ring_members.clone(),
                    responses: 0,
                }));
                return;
            }
            _ => {}
        }
        let target = self.query_target_level() as u8;
        if self.level == 0 {
            // Already at the root ring: begin (or answer) the fan-out.
            self.pending_queries.insert(
                qid,
                QueryAgg { scope, received: 0, expected: None, members: MemberList::new() },
            );
            self.descend_query(qid, self.id, target, false, outs);
        } else {
            self.pending_queries.insert(
                qid,
                QueryAgg { scope, received: 0, expected: None, members: MemberList::new() },
            );
            let parent = match self.parent {
                Some(p) => p,
                None => return, // orphaned: cannot serve global queries
            };
            outs.push(Output::Send {
                to: parent,
                msg: Msg::QueryRequest {
                    qid,
                    reply_to: self.id,
                    scope,
                    fanout_level: None,
                    spread: false,
                },
            });
        }
    }

    /// A query request arrived at this node.
    pub(crate) fn on_query_request(
        &mut self,
        qid: QueryId,
        reply_to: NodeId,
        scope: QueryScope,
        fanout_level: Option<u8>,
        spread: bool,
        outs: &mut Vec<Output>,
    ) {
        match fanout_level {
            None => {
                // Still ascending.
                if self.level == 0 {
                    let target = self.query_target_level() as u8;
                    self.descend_query(qid, reply_to, target, false, outs);
                } else if let Some(parent) = self.parent {
                    outs.push(Output::Send {
                        to: parent,
                        msg: Msg::QueryRequest {
                            qid,
                            reply_to,
                            scope,
                            fanout_level: None,
                            spread: false,
                        },
                    });
                }
            }
            Some(target) => self.descend_query(qid, reply_to, target, spread, outs),
        }
    }

    /// Handle the downward fan-out phase at this node.
    fn descend_query(
        &mut self,
        qid: QueryId,
        reply_to: NodeId,
        target: u8,
        spread: bool,
        outs: &mut Vec<Output>,
    ) {
        let target_level = target as usize;
        if self.level == target_level {
            // Answer for this ring.
            let expected = self.level_ring_counts.get(target_level).copied().unwrap_or(1) as u32;
            let members = self.ring_members.clone();
            if reply_to == self.id {
                self.absorb_response(qid, members, expected, outs);
            } else {
                outs.push(Output::Send {
                    to: reply_to,
                    msg: Msg::QueryResponse { qid, members, expected },
                });
            }
            return;
        }
        // Intermediate level: spread around the ring once, then forward to
        // child-ring leaders.
        if !spread {
            let peers: Vec<NodeId> =
                self.roster.nodes().iter().copied().filter(|&n| n != self.id).collect();
            for peer in peers {
                outs.push(Output::Send {
                    to: peer,
                    msg: Msg::QueryRequest {
                        qid,
                        reply_to,
                        scope: QueryScope::Global,
                        fanout_level: Some(target),
                        spread: true,
                    },
                });
            }
        }
        let child_leaders: Vec<NodeId> =
            self.children.values().filter(|l| l.ok).map(|l| l.leader).collect();
        for leader in child_leaders {
            outs.push(Output::Send {
                to: leader,
                msg: Msg::QueryRequest {
                    qid,
                    reply_to,
                    scope: QueryScope::Global,
                    fanout_level: Some(target),
                    spread: false,
                },
            });
        }
    }

    /// A partial response reached the requesting NE.
    pub(crate) fn on_query_response(
        &mut self,
        qid: QueryId,
        members: MemberList,
        expected: u32,
        outs: &mut Vec<Output>,
    ) {
        self.absorb_response(qid, members, expected, outs);
    }

    fn absorb_response(
        &mut self,
        qid: QueryId,
        members: MemberList,
        expected: u32,
        outs: &mut Vec<Output>,
    ) {
        let Some(agg) = self.pending_queries.get_mut(&qid) else { return };
        agg.members.merge_from(&members);
        agg.received += 1;
        agg.expected = Some(expected.max(1));
        if agg.received >= agg.expected.expect("just set") {
            let agg = self.pending_queries.remove(&qid).expect("present");
            outs.push(Output::Deliver(AppEvent::QueryResult {
                qid,
                members: agg.members,
                responses: agg.received,
            }));
        }
    }
}
