//! Compact binary wire format for inter-entity messages.
//!
//! The live runtime (`rgb-net`) frames every message as a length-prefixed
//! [`Envelope`] encoded with this module. The format is a simple
//! tag-and-fixed-width scheme (all integers little-endian, collections
//! prefixed with a `u32` count) — no self-description, both ends run the
//! same build.

use crate::error::{Result, RgbError};
use crate::ids::{GroupId, Guid, Luid, NodeId, RingId};
use crate::member::{MemberInfo, MemberList, MemberStatus};
use crate::message::{
    ChangeId, ChangeOp, ChangeRecord, Envelope, MhEvent, Msg, NotifyKind, QueryId, QueryScope,
    RingSnapshot, StatusSummary,
};
use crate::token::Token;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Conservative wire-size estimate for one message, so [`encode`] can
/// reserve the whole buffer up front: the encoder is on the simulator's
/// per-send hot path, where growth reallocations for token/membership
/// payloads are measurable. Over-estimation only wastes a few transient
/// bytes; under-estimation merely costs the realloc it normally would.
fn size_hint(msg: &Msg) -> usize {
    // Upper bounds per element: a ChangeRecord is a ChangeId (16) plus the
    // largest ChangeOp (~34); a MemberInfo is 25 bytes.
    const RECORD: usize = 56;
    const MEMBER: usize = 25;
    32 + match msg {
        Msg::Token(t) => RECORD * t.ops.len() + 8 * (t.pending_nodes.len() + t.visited.len()) + 32,
        Msg::MqInsert { records, .. } => RECORD * records.len(),
        Msg::HolderAck { change_ids, .. } => 16 * change_ids.len(),
        Msg::HeartbeatUp(s) | Msg::HeartbeatDown(s) => 8 * s.roster.len() + 16,
        Msg::QueryResponse { members, .. } => MEMBER * members.len() + 16,
        Msg::RingSync(s) => {
            MEMBER * s.members.len() + 8 * s.roster.len() + 4 * s.level_ring_counts.len() + 64
        }
        Msg::MergeRings { roster, members, .. } => MEMBER * members.len() + 8 * roster.len(),
        _ => 96,
    }
}

/// Encode an envelope into a fresh buffer.
pub fn encode(env: &Envelope) -> Bytes {
    let mut buf = BytesMut::with_capacity(size_hint(&env.msg));
    buf.put_u32_le(env.gid.0);
    put_msg(&mut buf, &env.msg);
    buf.freeze()
}

/// Decode an envelope from a buffer produced by [`encode`].
pub fn decode(mut buf: &[u8]) -> Result<Envelope> {
    let gid = GroupId(get_u32(&mut buf)?);
    let msg = get_msg(&mut buf)?;
    if !buf.is_empty() {
        return Err(RgbError::Decode("trailing bytes"));
    }
    Ok(Envelope { gid, msg })
}

// ---------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(RgbError::Decode("eof: u8"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(RgbError::Decode("eof: u32"));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(RgbError::Decode("eof: u64"));
    }
    Ok(buf.get_u64_le())
}

fn get_bool(buf: &mut &[u8]) -> Result<bool> {
    match get_u8(buf)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(RgbError::Decode("bad bool")),
    }
}

fn put_opt_node(buf: &mut BytesMut, v: Option<NodeId>) {
    match v {
        Some(n) => {
            buf.put_u8(1);
            buf.put_u64_le(n.0);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_node(buf: &mut &[u8]) -> Result<Option<NodeId>> {
    Ok(match get_u8(buf)? {
        0 => None,
        1 => Some(NodeId(get_u64(buf)?)),
        _ => return Err(RgbError::Decode("bad option tag")),
    })
}

fn put_opt_ring(buf: &mut BytesMut, v: Option<RingId>) {
    match v {
        Some(r) => {
            buf.put_u8(1);
            buf.put_u32_le(r.0);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_ring(buf: &mut &[u8]) -> Result<Option<RingId>> {
    Ok(match get_u8(buf)? {
        0 => None,
        1 => Some(RingId(get_u32(buf)?)),
        _ => return Err(RgbError::Decode("bad option tag")),
    })
}

fn put_nodes(buf: &mut BytesMut, v: &[NodeId]) {
    buf.put_u32_le(v.len() as u32);
    for n in v {
        buf.put_u64_le(n.0);
    }
}

fn get_nodes(buf: &mut &[u8]) -> Result<Vec<NodeId>> {
    let n = get_u32(buf)? as usize;
    if n > buf.remaining() / 8 {
        return Err(RgbError::Decode("node list too long"));
    }
    (0..n).map(|_| Ok(NodeId(get_u64(buf)?))).collect()
}

// ---------------------------------------------------------------------
// domain types
// ---------------------------------------------------------------------

fn put_member_info(buf: &mut BytesMut, m: &MemberInfo) {
    buf.put_u64_le(m.guid.0);
    buf.put_u64_le(m.luid.0);
    buf.put_u64_le(m.ap.0);
    buf.put_u8(match m.status {
        MemberStatus::Operational => 0,
        MemberStatus::Disconnected => 1,
        MemberStatus::Failed => 2,
    });
}

fn get_member_info(buf: &mut &[u8]) -> Result<MemberInfo> {
    let guid = Guid(get_u64(buf)?);
    let luid = Luid(get_u64(buf)?);
    let ap = NodeId(get_u64(buf)?);
    let status = match get_u8(buf)? {
        0 => MemberStatus::Operational,
        1 => MemberStatus::Disconnected,
        2 => MemberStatus::Failed,
        _ => return Err(RgbError::Decode("bad member status")),
    };
    Ok(MemberInfo { guid, luid, ap, status })
}

fn put_member_list(buf: &mut BytesMut, l: &MemberList) {
    buf.put_u32_le(l.len() as u32);
    for m in l.iter() {
        put_member_info(buf, m);
    }
}

fn get_member_list(buf: &mut &[u8]) -> Result<MemberList> {
    let n = get_u32(buf)? as usize;
    if n > buf.remaining() / 25 {
        return Err(RgbError::Decode("member list too long"));
    }
    let mut l = MemberList::new();
    for _ in 0..n {
        l.upsert(get_member_info(buf)?);
    }
    Ok(l)
}

fn put_change_id(buf: &mut BytesMut, id: ChangeId) {
    buf.put_u64_le(id.origin.0);
    buf.put_u64_le(id.seq);
}

fn get_change_id(buf: &mut &[u8]) -> Result<ChangeId> {
    Ok(ChangeId { origin: NodeId(get_u64(buf)?), seq: get_u64(buf)? })
}

fn put_change_op(buf: &mut BytesMut, op: &ChangeOp) {
    match op {
        ChangeOp::MemberJoin { info } => {
            buf.put_u8(0);
            put_member_info(buf, info);
        }
        ChangeOp::MemberLeave { guid } => {
            buf.put_u8(1);
            buf.put_u64_le(guid.0);
        }
        ChangeOp::MemberHandoff { guid, luid, from, to } => {
            buf.put_u8(2);
            buf.put_u64_le(guid.0);
            buf.put_u64_le(luid.0);
            put_opt_node(buf, *from);
            buf.put_u64_le(to.0);
        }
        ChangeOp::MemberFailure { guid } => {
            buf.put_u8(3);
            buf.put_u64_le(guid.0);
        }
        ChangeOp::NeJoin { node, ring } => {
            buf.put_u8(4);
            buf.put_u64_le(node.0);
            buf.put_u32_le(ring.0);
        }
        ChangeOp::NeLeave { node, ring } => {
            buf.put_u8(5);
            buf.put_u64_le(node.0);
            buf.put_u32_le(ring.0);
        }
        ChangeOp::NeFailure { node, ring } => {
            buf.put_u8(6);
            buf.put_u64_le(node.0);
            buf.put_u32_le(ring.0);
        }
        ChangeOp::MemberDisconnect { guid } => {
            buf.put_u8(8);
            buf.put_u64_le(guid.0);
        }
        ChangeOp::LeaderChange { ring, leader } => {
            buf.put_u8(7);
            buf.put_u32_le(ring.0);
            buf.put_u64_le(leader.0);
        }
    }
}

fn get_change_op(buf: &mut &[u8]) -> Result<ChangeOp> {
    Ok(match get_u8(buf)? {
        0 => ChangeOp::MemberJoin { info: get_member_info(buf)? },
        1 => ChangeOp::MemberLeave { guid: Guid(get_u64(buf)?) },
        2 => ChangeOp::MemberHandoff {
            guid: Guid(get_u64(buf)?),
            luid: Luid(get_u64(buf)?),
            from: get_opt_node(buf)?,
            to: NodeId(get_u64(buf)?),
        },
        3 => ChangeOp::MemberFailure { guid: Guid(get_u64(buf)?) },
        4 => ChangeOp::NeJoin { node: NodeId(get_u64(buf)?), ring: RingId(get_u32(buf)?) },
        5 => ChangeOp::NeLeave { node: NodeId(get_u64(buf)?), ring: RingId(get_u32(buf)?) },
        6 => ChangeOp::NeFailure { node: NodeId(get_u64(buf)?), ring: RingId(get_u32(buf)?) },
        7 => ChangeOp::LeaderChange { ring: RingId(get_u32(buf)?), leader: NodeId(get_u64(buf)?) },
        8 => ChangeOp::MemberDisconnect { guid: Guid(get_u64(buf)?) },
        _ => return Err(RgbError::Decode("bad change op tag")),
    })
}

fn put_record(buf: &mut BytesMut, r: &ChangeRecord) {
    put_change_id(buf, r.id);
    buf.put_u64_le(r.origin.0);
    buf.put_u32_le(r.origin_ring.0);
    put_opt_ring(buf, r.from_child_ring);
    buf.put_u8(r.descending as u8);
    put_change_op(buf, &r.op);
}

fn get_record(buf: &mut &[u8]) -> Result<ChangeRecord> {
    Ok(ChangeRecord {
        id: get_change_id(buf)?,
        origin: NodeId(get_u64(buf)?),
        origin_ring: RingId(get_u32(buf)?),
        from_child_ring: get_opt_ring(buf)?,
        descending: get_bool(buf)?,
        op: get_change_op(buf)?,
    })
}

fn put_records(buf: &mut BytesMut, rs: &[ChangeRecord]) {
    buf.put_u32_le(rs.len() as u32);
    for r in rs {
        put_record(buf, r);
    }
}

fn get_records(buf: &mut &[u8]) -> Result<Vec<ChangeRecord>> {
    let n = get_u32(buf)? as usize;
    if n > buf.remaining() {
        return Err(RgbError::Decode("record list too long"));
    }
    (0..n).map(|_| get_record(buf)).collect()
}

fn put_token(buf: &mut BytesMut, t: &Token) {
    buf.put_u32_le(t.gid.0);
    buf.put_u32_le(t.ring.0);
    buf.put_u64_le(t.seq);
    buf.put_u64_le(t.holder.0);
    put_records(buf, &t.ops);
    put_nodes(buf, &t.pending_nodes);
    put_nodes(buf, &t.visited);
}

fn get_token(buf: &mut &[u8]) -> Result<Token> {
    Ok(Token {
        gid: GroupId(get_u32(buf)?),
        ring: RingId(get_u32(buf)?),
        seq: get_u64(buf)?,
        holder: NodeId(get_u64(buf)?),
        ops: get_records(buf)?,
        pending_nodes: get_nodes(buf)?,
        visited: get_nodes(buf)?,
    })
}

fn put_summary(buf: &mut BytesMut, s: &StatusSummary) {
    buf.put_u32_le(s.ring.0);
    buf.put_u8(s.ring_ok as u8);
    buf.put_u64_le(s.leader.0);
    put_nodes(buf, &s.roster);
}

fn get_summary(buf: &mut &[u8]) -> Result<StatusSummary> {
    Ok(StatusSummary {
        ring: RingId(get_u32(buf)?),
        ring_ok: get_bool(buf)?,
        leader: NodeId(get_u64(buf)?),
        roster: get_nodes(buf)?,
    })
}

fn put_msg(buf: &mut BytesMut, msg: &Msg) {
    match msg {
        Msg::Token(t) => {
            buf.put_u8(0);
            put_token(buf, t);
        }
        Msg::TokenAck { ring, seq } => {
            buf.put_u8(1);
            buf.put_u32_le(ring.0);
            buf.put_u64_le(*seq);
        }
        Msg::MqInsert { kind, records } => {
            buf.put_u8(2);
            buf.put_u8(match kind {
                NotifyKind::Local => 0,
                NotifyKind::ToParent => 1,
                NotifyKind::ToChild => 2,
            });
            put_records(buf, records);
        }
        Msg::HolderAck { ring, seq, change_ids } => {
            buf.put_u8(3);
            buf.put_u32_le(ring.0);
            buf.put_u64_le(*seq);
            buf.put_u32_le(change_ids.len() as u32);
            for id in change_ids {
                put_change_id(buf, *id);
            }
        }
        Msg::HeartbeatUp(s) => {
            buf.put_u8(4);
            put_summary(buf, s);
        }
        Msg::HeartbeatDown(s) => {
            buf.put_u8(5);
            put_summary(buf, s);
        }
        Msg::AttachChild { ring, leader } => {
            buf.put_u8(6);
            buf.put_u32_le(ring.0);
            buf.put_u64_le(leader.0);
        }
        Msg::AttachAccepted { parent, parent_ring } => {
            buf.put_u8(7);
            buf.put_u64_le(parent.0);
            buf.put_u32_le(parent_ring.0);
        }
        Msg::QueryRequest { qid, reply_to, scope, fanout_level, spread } => {
            buf.put_u8(8);
            buf.put_u64_le(qid.origin.0);
            buf.put_u64_le(qid.seq);
            buf.put_u64_le(reply_to.0);
            match scope {
                QueryScope::Global => buf.put_u8(0),
                QueryScope::Ring(r) => {
                    buf.put_u8(1);
                    buf.put_u32_le(r.0);
                }
            }
            match fanout_level {
                None => buf.put_u8(255),
                Some(l) => buf.put_u8(*l),
            }
            buf.put_u8(*spread as u8);
        }
        Msg::QueryResponse { qid, members, expected } => {
            buf.put_u8(9);
            buf.put_u64_le(qid.origin.0);
            buf.put_u64_le(qid.seq);
            put_member_list(buf, members);
            buf.put_u32_le(*expected);
        }
        Msg::JoinRing { node } => {
            buf.put_u8(11);
            buf.put_u64_le(node.0);
        }
        Msg::RingSync(snapshot) => {
            buf.put_u8(12);
            buf.put_u32_le(snapshot.ring.0);
            buf.put_u8(snapshot.level);
            buf.put_u8(snapshot.height);
            put_nodes(buf, &snapshot.roster);
            put_member_list(buf, &snapshot.members);
            buf.put_u64_le(snapshot.epoch);
            buf.put_u64_le(snapshot.last_token_seq);
            put_opt_node(buf, snapshot.parent);
            put_opt_ring(buf, snapshot.parent_ring);
            buf.put_u32_le(snapshot.level_ring_counts.len() as u32);
            for &c in &snapshot.level_ring_counts {
                buf.put_u32_le(c);
            }
        }
        Msg::MergeRings { ring, roster, members } => {
            buf.put_u8(13);
            buf.put_u32_le(ring.0);
            put_nodes(buf, roster);
            put_member_list(buf, members);
        }
        Msg::FromMh { event } => {
            buf.put_u8(10);
            match event {
                MhEvent::Join { guid, luid } => {
                    buf.put_u8(0);
                    buf.put_u64_le(guid.0);
                    buf.put_u64_le(luid.0);
                }
                MhEvent::Leave { guid } => {
                    buf.put_u8(1);
                    buf.put_u64_le(guid.0);
                }
                MhEvent::HandoffIn { guid, luid, from } => {
                    buf.put_u8(2);
                    buf.put_u64_le(guid.0);
                    buf.put_u64_le(luid.0);
                    put_opt_node(buf, *from);
                }
                MhEvent::FailureDetected { guid } => {
                    buf.put_u8(3);
                    buf.put_u64_le(guid.0);
                }
                MhEvent::Disconnect { guid } => {
                    buf.put_u8(4);
                    buf.put_u64_le(guid.0);
                }
                MhEvent::Resume { guid, luid } => {
                    buf.put_u8(5);
                    buf.put_u64_le(guid.0);
                    buf.put_u64_le(luid.0);
                }
            }
        }
    }
}

fn get_msg(buf: &mut &[u8]) -> Result<Msg> {
    Ok(match get_u8(buf)? {
        0 => Msg::Token(get_token(buf)?),
        1 => Msg::TokenAck { ring: RingId(get_u32(buf)?), seq: get_u64(buf)? },
        2 => {
            let kind = match get_u8(buf)? {
                0 => NotifyKind::Local,
                1 => NotifyKind::ToParent,
                2 => NotifyKind::ToChild,
                _ => return Err(RgbError::Decode("bad notify kind")),
            };
            Msg::MqInsert { kind, records: get_records(buf)? }
        }
        3 => {
            let ring = RingId(get_u32(buf)?);
            let seq = get_u64(buf)?;
            let n = get_u32(buf)? as usize;
            if n > buf.remaining() / 16 {
                return Err(RgbError::Decode("ack list too long"));
            }
            let change_ids = (0..n).map(|_| get_change_id(buf)).collect::<Result<_>>()?;
            Msg::HolderAck { ring, seq, change_ids }
        }
        4 => Msg::HeartbeatUp(get_summary(buf)?),
        5 => Msg::HeartbeatDown(get_summary(buf)?),
        6 => Msg::AttachChild { ring: RingId(get_u32(buf)?), leader: NodeId(get_u64(buf)?) },
        7 => Msg::AttachAccepted {
            parent: NodeId(get_u64(buf)?),
            parent_ring: RingId(get_u32(buf)?),
        },
        8 => {
            let qid = QueryId { origin: NodeId(get_u64(buf)?), seq: get_u64(buf)? };
            let reply_to = NodeId(get_u64(buf)?);
            let scope = match get_u8(buf)? {
                0 => QueryScope::Global,
                1 => QueryScope::Ring(RingId(get_u32(buf)?)),
                _ => return Err(RgbError::Decode("bad query scope")),
            };
            let fanout_level = match get_u8(buf)? {
                255 => None,
                l => Some(l),
            };
            let spread = get_bool(buf)?;
            Msg::QueryRequest { qid, reply_to, scope, fanout_level, spread }
        }
        9 => {
            let qid = QueryId { origin: NodeId(get_u64(buf)?), seq: get_u64(buf)? };
            let members = get_member_list(buf)?;
            let expected = get_u32(buf)?;
            Msg::QueryResponse { qid, members, expected }
        }
        10 => {
            let event = match get_u8(buf)? {
                0 => MhEvent::Join { guid: Guid(get_u64(buf)?), luid: Luid(get_u64(buf)?) },
                1 => MhEvent::Leave { guid: Guid(get_u64(buf)?) },
                2 => MhEvent::HandoffIn {
                    guid: Guid(get_u64(buf)?),
                    luid: Luid(get_u64(buf)?),
                    from: get_opt_node(buf)?,
                },
                3 => MhEvent::FailureDetected { guid: Guid(get_u64(buf)?) },
                4 => MhEvent::Disconnect { guid: Guid(get_u64(buf)?) },
                5 => MhEvent::Resume { guid: Guid(get_u64(buf)?), luid: Luid(get_u64(buf)?) },
                _ => return Err(RgbError::Decode("bad mh event tag")),
            };
            Msg::FromMh { event }
        }
        11 => Msg::JoinRing { node: NodeId(get_u64(buf)?) },
        12 => {
            let ring = RingId(get_u32(buf)?);
            let level = get_u8(buf)?;
            let height = get_u8(buf)?;
            let roster = get_nodes(buf)?;
            let members = get_member_list(buf)?;
            let epoch = get_u64(buf)?;
            let last_token_seq = get_u64(buf)?;
            let parent = get_opt_node(buf)?;
            let parent_ring = get_opt_ring(buf)?;
            let n = get_u32(buf)? as usize;
            if n > buf.remaining() / 4 {
                return Err(RgbError::Decode("ring-count list too long"));
            }
            let level_ring_counts = (0..n).map(|_| get_u32(buf)).collect::<Result<_>>()?;
            Msg::RingSync(Box::new(RingSnapshot {
                ring,
                level,
                height,
                roster,
                members,
                epoch,
                last_token_seq,
                parent,
                parent_ring,
                level_ring_counts,
            }))
        }
        13 => Msg::MergeRings {
            ring: RingId(get_u32(buf)?),
            roster: get_nodes(buf)?,
            members: get_member_list(buf)?,
        },
        _ => return Err(RgbError::Decode("bad msg tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Msg) {
        let env = Envelope { gid: GroupId(7), msg };
        let bytes = encode(&env);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, env);
    }

    #[test]
    fn round_trip_token() {
        let mut t = Token::fresh(GroupId(7), RingId(3), 42, NodeId(5), vec![]);
        t.ops.push(ChangeRecord::new(
            ChangeId { origin: NodeId(1), seq: 9 },
            NodeId(1),
            RingId(3),
            ChangeOp::MemberJoin { info: MemberInfo::operational(Guid(11), Luid(22), NodeId(1)) },
        ));
        t.note_pending(NodeId(2));
        t.note_visit(NodeId(5));
        round_trip(Msg::Token(t));
    }

    #[test]
    fn round_trip_all_change_ops() {
        let ops = vec![
            ChangeOp::MemberJoin { info: MemberInfo::operational(Guid(1), Luid(2), NodeId(3)) },
            ChangeOp::MemberLeave { guid: Guid(4) },
            ChangeOp::MemberHandoff {
                guid: Guid(5),
                luid: Luid(6),
                from: Some(NodeId(7)),
                to: NodeId(8),
            },
            ChangeOp::MemberHandoff { guid: Guid(5), luid: Luid(6), from: None, to: NodeId(8) },
            ChangeOp::MemberFailure { guid: Guid(9) },
            ChangeOp::MemberDisconnect { guid: Guid(10) },
            ChangeOp::NeJoin { node: NodeId(10), ring: RingId(1) },
            ChangeOp::NeLeave { node: NodeId(11), ring: RingId(2) },
            ChangeOp::NeFailure { node: NodeId(12), ring: RingId(3) },
            ChangeOp::LeaderChange { ring: RingId(4), leader: NodeId(13) },
        ];
        for op in ops {
            let mut rec =
                ChangeRecord::new(ChangeId { origin: NodeId(1), seq: 0 }, NodeId(1), RingId(0), op);
            rec.descending = true;
            rec.from_child_ring = Some(RingId(9));
            round_trip(Msg::MqInsert { kind: NotifyKind::ToChild, records: vec![rec] });
        }
    }

    #[test]
    fn round_trip_acks_and_heartbeats() {
        round_trip(Msg::TokenAck { ring: RingId(1), seq: 2 });
        round_trip(Msg::HolderAck {
            ring: RingId(1),
            seq: 3,
            change_ids: vec![ChangeId { origin: NodeId(4), seq: 5 }],
        });
        let s = StatusSummary {
            ring: RingId(2),
            ring_ok: true,
            leader: NodeId(9),
            roster: vec![NodeId(9), NodeId(10)],
        };
        round_trip(Msg::HeartbeatUp(s.clone()));
        round_trip(Msg::HeartbeatDown(s));
        round_trip(Msg::AttachChild { ring: RingId(5), leader: NodeId(6) });
        round_trip(Msg::AttachAccepted { parent: NodeId(7), parent_ring: RingId(8) });
    }

    #[test]
    fn round_trip_queries() {
        round_trip(Msg::QueryRequest {
            qid: QueryId { origin: NodeId(1), seq: 2 },
            reply_to: NodeId(1),
            scope: QueryScope::Global,
            fanout_level: None,
            spread: false,
        });
        round_trip(Msg::QueryRequest {
            qid: QueryId { origin: NodeId(1), seq: 2 },
            reply_to: NodeId(3),
            scope: QueryScope::Ring(RingId(4)),
            fanout_level: Some(2),
            spread: true,
        });
        let mut members = MemberList::new();
        members.upsert(MemberInfo::operational(Guid(1), Luid(2), NodeId(3)));
        round_trip(Msg::QueryResponse {
            qid: QueryId { origin: NodeId(1), seq: 2 },
            members,
            expected: 9,
        });
    }

    #[test]
    fn round_trip_join_and_sync() {
        round_trip(Msg::JoinRing { node: NodeId(42) });
        let mut members = MemberList::new();
        members.upsert(MemberInfo::operational(Guid(1), Luid(2), NodeId(3)));
        round_trip(Msg::RingSync(Box::new(RingSnapshot {
            ring: RingId(4),
            level: 1,
            height: 3,
            roster: vec![NodeId(5), NodeId(6)],
            members,
            epoch: 17,
            last_token_seq: 23,
            parent: Some(NodeId(2)),
            parent_ring: Some(RingId(0)),
            level_ring_counts: vec![1, 3, 9],
        })));
    }

    #[test]
    fn round_trip_merge_rings() {
        let mut members = MemberList::new();
        members.upsert(MemberInfo::operational(Guid(4), Luid(5), NodeId(6)));
        round_trip(Msg::MergeRings {
            ring: RingId(9),
            roster: vec![NodeId(7), NodeId(8)],
            members,
        });
    }

    #[test]
    fn round_trip_mh_events() {
        for event in [
            MhEvent::Join { guid: Guid(1), luid: Luid(2) },
            MhEvent::Leave { guid: Guid(3) },
            MhEvent::HandoffIn { guid: Guid(4), luid: Luid(5), from: Some(NodeId(6)) },
            MhEvent::HandoffIn { guid: Guid(4), luid: Luid(5), from: None },
            MhEvent::FailureDetected { guid: Guid(7) },
            MhEvent::Disconnect { guid: Guid(8) },
            MhEvent::Resume { guid: Guid(9), luid: Luid(10) },
        ] {
            round_trip(Msg::FromMh { event });
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[1, 2, 3]).is_err());
        // valid gid, bogus tag
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(200);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let env = Envelope { gid: GroupId(1), msg: Msg::TokenAck { ring: RingId(1), seq: 2 } };
        let mut bytes = encode(&env).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_absurd_lengths() {
        // MqInsert claiming 4 billion records
        let mut buf = BytesMut::new();
        buf.put_u32_le(1); // gid
        buf.put_u8(2); // MqInsert
        buf.put_u8(0); // Local
        buf.put_u32_le(u32::MAX); // record count
        assert!(decode(&buf).is_err());
    }
}
