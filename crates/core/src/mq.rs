//! The per-NE message queue (paper §4.2: "`MQ: MessageQueue` — message
//! queue which is self-optimized for aggregating some successive messages
//! into one for further processing").
//!
//! Aggregation rules (design decision D1): successive operations on the
//! *same member* collapse pairwise —
//!
//! * `Join` followed by `Leave`/`Failure` cancels out entirely (the rest of
//!   the hierarchy never saw the member);
//! * `Join` followed by `Handoff` becomes a `Join` at the new proxy;
//! * `Handoff` followed by `Handoff` keeps only the latest location;
//! * `Handoff` followed by `Leave`/`Failure` becomes just the
//!   `Leave`/`Failure`;
//! * `Leave`/`Failure` followed by `Join` keeps both (a genuine rejoin must
//!   be observed by the application as a view change).
//!
//! NE-level operations and leader changes are never aggregated.

use crate::ids::NodeId;
use crate::member::MemberInfo;
use crate::message::{ChangeOp, ChangeRecord};
use std::collections::VecDeque;

/// The self-aggregating message queue.
#[derive(Debug, Clone, Default)]
pub struct MessageQueue {
    entries: VecDeque<ChangeRecord>,
    /// Total records ever inserted (pre-aggregation), for metrics.
    inserted: u64,
    /// Records eliminated by aggregation, for metrics.
    aggregated_away: u64,
}

impl MessageQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime count of raw insertions.
    pub fn total_inserted(&self) -> u64 {
        self.inserted
    }

    /// Lifetime count of records removed by aggregation.
    pub fn total_aggregated_away(&self) -> u64 {
        self.aggregated_away
    }

    /// Insert without aggregation (ablation mode).
    pub fn push_raw(&mut self, rec: ChangeRecord) {
        self.inserted += 1;
        self.entries.push_back(rec);
    }

    /// Insert with aggregation against queued records for the same member.
    pub fn push_aggregating(&mut self, rec: ChangeRecord) {
        self.inserted += 1;
        let Some(guid) = rec.op.member() else {
            self.entries.push_back(rec);
            return;
        };
        // Find the most recent queued op about the same member *in the
        // same propagation class*: a descending (Notification-to-Child)
        // record must never absorb an ascending one or vice versa — the
        // merged record would inherit the wrong `descending` flag and the
        // change would be silently dropped from storage and upward
        // forwarding.
        let pos = self
            .entries
            .iter()
            .rposition(|e| e.op.member() == Some(guid) && e.descending == rec.descending);
        let Some(pos) = pos else {
            self.entries.push_back(rec);
            return;
        };
        let prev = self.entries[pos].clone();
        // Causal ordering by LUID (Mobile-IPv6 binding sequence numbers):
        // relay delays can invert arrival order at the queue owner, so a
        // location op whose LUID is older than the queued one is a stale
        // straggler and is dropped outright.
        if let (Some(prev_luid), Some(next_luid)) = (locator_luid(&prev.op), locator_luid(&rec.op))
        {
            if next_luid < prev_luid {
                self.aggregated_away += 1;
                return;
            }
        }
        match Self::combine(&prev.op, &rec.op) {
            Combine::Cancel => {
                // Join + departure annihilate only when the join is the sole
                // queued record for this member; an earlier record (e.g. a
                // handoff) would otherwise resurrect the member downstream.
                let has_earlier =
                    self.entries.iter().take(pos).any(|e| e.op.member() == Some(guid));
                if has_earlier {
                    let slot = &mut self.entries[pos];
                    slot.op = rec.op.clone();
                    self.aggregated_away += 1;
                } else {
                    self.entries.remove(pos);
                    self.aggregated_away += 2;
                }
            }
            Combine::Replace(op) => {
                // Keep the earlier record's identity (its originator gets the
                // acknowledgement) but carry the combined effect.
                let slot = &mut self.entries[pos];
                slot.op = op;
                self.aggregated_away += 1;
            }
            Combine::Keep => self.entries.push_back(rec),
        }
    }

    /// Insert according to `aggregate` (true = [`Self::push_aggregating`]).
    pub fn push(&mut self, rec: ChangeRecord, aggregate: bool) {
        if aggregate {
            self.push_aggregating(rec);
        } else {
            self.push_raw(rec);
        }
    }

    /// Drain up to `max` records for loading into a fresh token.
    pub fn drain(&mut self, max: usize) -> Vec<ChangeRecord> {
        let take = max.min(self.entries.len());
        self.entries.drain(..take).collect()
    }

    /// Peek at queued records.
    pub fn iter(&self) -> impl Iterator<Item = &ChangeRecord> {
        self.entries.iter()
    }

    /// Drop every queued record that concerns `node` as an NE (used when a
    /// node is excluded and its pending NE ops are superseded).
    pub fn retain_not_about_node(&mut self, node: NodeId) {
        self.entries.retain(|e| {
            !matches!(
                &e.op,
                ChangeOp::NeJoin { node: n, .. }
                | ChangeOp::NeLeave { node: n, .. }
                | ChangeOp::NeFailure { node: n, .. } if *n == node
            )
        });
    }

    fn combine(prev: &ChangeOp, next: &ChangeOp) -> Combine {
        use ChangeOp::*;
        match (prev, next) {
            // join then gone: nobody else needs to hear anything
            (MemberJoin { .. }, MemberLeave { .. }) | (MemberJoin { .. }, MemberFailure { .. }) => {
                Combine::Cancel
            }
            // join then moved: join at the final location
            (MemberJoin { info }, MemberHandoff { luid, to, .. }) => {
                let mut info = *info;
                info.luid = *luid;
                info.ap = *to;
                Combine::Replace(MemberJoin { info })
            }
            // duplicate join (e.g. retried by the MH): keep latest record
            (MemberJoin { .. }, MemberJoin { info }) => {
                Combine::Replace(MemberJoin { info: *info })
            }
            // moved then moved again: only the last location matters, but
            // the original source proxy is preserved
            (MemberHandoff { guid, from, .. }, MemberHandoff { luid, to, .. }) => {
                Combine::Replace(MemberHandoff { guid: *guid, luid: *luid, from: *from, to: *to })
            }
            // moved then gone: just the departure
            (MemberHandoff { .. }, MemberLeave { guid }) => {
                Combine::Replace(MemberLeave { guid: *guid })
            }
            (MemberHandoff { .. }, MemberFailure { guid }) => {
                Combine::Replace(MemberFailure { guid: *guid })
            }
            // duplicate departures collapse
            (MemberLeave { .. }, MemberLeave { guid }) => {
                Combine::Replace(MemberLeave { guid: *guid })
            }
            (MemberFailure { .. }, MemberFailure { guid }) => {
                Combine::Replace(MemberFailure { guid: *guid })
            }
            (MemberLeave { .. }, MemberFailure { guid }) => {
                Combine::Replace(MemberFailure { guid: *guid })
            }
            // disconnects collapse; a departure supersedes a disconnect
            (MemberDisconnect { .. }, MemberDisconnect { guid }) => {
                Combine::Replace(MemberDisconnect { guid: *guid })
            }
            (MemberDisconnect { .. }, MemberLeave { guid }) => {
                Combine::Replace(MemberLeave { guid: *guid })
            }
            (MemberDisconnect { .. }, MemberFailure { guid }) => {
                Combine::Replace(MemberFailure { guid: *guid })
            }
            // anything else (rejoin after leave, etc.): keep both
            _ => Combine::Keep,
        }
    }
}

/// The LUID carried by a location-bearing member op (Join / Handoff).
fn locator_luid(op: &ChangeOp) -> Option<crate::ids::Luid> {
    match op {
        ChangeOp::MemberJoin { info } => Some(info.luid),
        ChangeOp::MemberHandoff { luid, .. } => Some(*luid),
        _ => None,
    }
}

enum Combine {
    /// Both records disappear.
    Cancel,
    /// The earlier record is replaced by this combined op.
    Replace(ChangeOp),
    /// No aggregation; append the new record.
    Keep,
}

/// Convenience constructor used widely in tests: a join op for `guid`.
pub fn join_op(guid: u64, luid: u64, ap: u64) -> ChangeOp {
    ChangeOp::MemberJoin {
        info: MemberInfo::operational(crate::ids::Guid(guid), crate::ids::Luid(luid), NodeId(ap)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Guid, Luid, NodeId, RingId};
    use crate::message::ChangeId;

    fn rec(seq: u64, op: ChangeOp) -> ChangeRecord {
        ChangeRecord::new(ChangeId { origin: NodeId(1), seq }, NodeId(1), RingId(0), op)
    }

    #[test]
    fn join_then_leave_cancels() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(0, join_op(7, 1, 1)));
        q.push_aggregating(rec(1, ChangeOp::MemberLeave { guid: Guid(7) }));
        assert!(q.is_empty());
        assert_eq!(q.total_inserted(), 2);
        assert_eq!(q.total_aggregated_away(), 2);
    }

    #[test]
    fn join_then_failure_cancels() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(0, join_op(7, 1, 1)));
        q.push_aggregating(rec(1, ChangeOp::MemberFailure { guid: Guid(7) }));
        assert!(q.is_empty());
    }

    #[test]
    fn join_then_handoff_joins_at_new_location() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(0, join_op(7, 1, 1)));
        q.push_aggregating(rec(
            1,
            ChangeOp::MemberHandoff {
                guid: Guid(7),
                luid: Luid(9),
                from: Some(NodeId(1)),
                to: NodeId(2),
            },
        ));
        assert_eq!(q.len(), 1);
        let op = q.iter().next().unwrap().op.clone();
        match op {
            ChangeOp::MemberJoin { info } => {
                assert_eq!(info.ap, NodeId(2));
                assert_eq!(info.luid, Luid(9));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn handoff_chain_keeps_last_location_and_first_source() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(
            0,
            ChangeOp::MemberHandoff {
                guid: Guid(7),
                luid: Luid(1),
                from: Some(NodeId(1)),
                to: NodeId(2),
            },
        ));
        q.push_aggregating(rec(
            1,
            ChangeOp::MemberHandoff {
                guid: Guid(7),
                luid: Luid(2),
                from: Some(NodeId(2)),
                to: NodeId(3),
            },
        ));
        assert_eq!(q.len(), 1);
        let op = q.iter().next().unwrap().op.clone();
        match op {
            ChangeOp::MemberHandoff { from, to, luid, .. } => {
                assert_eq!(from, Some(NodeId(1)));
                assert_eq!(to, NodeId(3));
                assert_eq!(luid, Luid(2));
            }
            other => panic!("expected handoff, got {other:?}"),
        }
    }

    #[test]
    fn leave_then_join_keeps_both() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(0, ChangeOp::MemberLeave { guid: Guid(7) }));
        q.push_aggregating(rec(1, join_op(7, 2, 1)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn leave_then_failure_upgrades() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(0, ChangeOp::MemberLeave { guid: Guid(7) }));
        q.push_aggregating(rec(1, ChangeOp::MemberFailure { guid: Guid(7) }));
        assert_eq!(q.len(), 1);
        assert!(matches!(q.iter().next().unwrap().op, ChangeOp::MemberFailure { .. }));
    }

    #[test]
    fn different_members_do_not_aggregate() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(0, join_op(1, 1, 1)));
        q.push_aggregating(rec(1, join_op(2, 1, 1)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn ne_ops_never_aggregate() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(0, ChangeOp::NeJoin { node: NodeId(5), ring: RingId(0) }));
        q.push_aggregating(rec(1, ChangeOp::NeFailure { node: NodeId(5), ring: RingId(0) }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn raw_push_never_aggregates() {
        let mut q = MessageQueue::new();
        q.push_raw(rec(0, join_op(7, 1, 1)));
        q.push_raw(rec(1, ChangeOp::MemberLeave { guid: Guid(7) }));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_aggregated_away(), 0);
    }

    #[test]
    fn drain_respects_max_and_fifo() {
        let mut q = MessageQueue::new();
        for i in 0..5 {
            q.push_raw(rec(i, join_op(i, 1, 1)));
        }
        let first = q.drain(2);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].id.seq, 0);
        assert_eq!(first[1].id.seq, 1);
        assert_eq!(q.len(), 3);
        let rest = q.drain(100);
        assert_eq!(rest.len(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn retain_not_about_node_drops_ne_ops_only() {
        let mut q = MessageQueue::new();
        q.push_raw(rec(0, ChangeOp::NeJoin { node: NodeId(5), ring: RingId(0) }));
        q.push_raw(rec(1, join_op(5, 1, 5)));
        q.retain_not_about_node(NodeId(5));
        assert_eq!(q.len(), 1);
        assert!(matches!(q.iter().next().unwrap().op, ChangeOp::MemberJoin { .. }));
    }

    #[test]
    fn stale_locator_arrivals_are_dropped() {
        // A relayed handoff with an older LUID arriving after a newer local
        // one must not clobber the queue (the mobile host already moved on).
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(
            0,
            ChangeOp::MemberHandoff {
                guid: Guid(7),
                luid: Luid(16),
                from: Some(NodeId(14)),
                to: NodeId(10),
            },
        ));
        q.push_aggregating(rec(
            1,
            ChangeOp::MemberHandoff {
                guid: Guid(7),
                luid: Luid(15),
                from: Some(NodeId(15)),
                to: NodeId(14),
            },
        ));
        assert_eq!(q.len(), 1);
        let op = q.iter().next().unwrap().op.clone();
        match op {
            ChangeOp::MemberHandoff { luid, to, .. } => {
                assert_eq!(luid, Luid(16));
                assert_eq!(to, NodeId(10));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Same for a stale join racing a newer handoff.
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(
            0,
            ChangeOp::MemberHandoff { guid: Guid(8), luid: Luid(9), from: None, to: NodeId(3) },
        ));
        q.push_aggregating(rec(1, join_op(8, 4, 2)));
        assert_eq!(q.len(), 1);
        assert_eq!(locator_luid(&q.iter().next().unwrap().op), Some(Luid(9)));
    }

    #[test]
    fn aggregation_replaces_in_place_keeping_queue_position() {
        let mut q = MessageQueue::new();
        q.push_aggregating(rec(0, join_op(1, 1, 1)));
        q.push_aggregating(rec(1, join_op(2, 1, 1)));
        // member 1 moves; its (combined) record must stay in front of member 2
        q.push_aggregating(rec(
            2,
            ChangeOp::MemberHandoff {
                guid: Guid(1),
                luid: Luid(5),
                from: Some(NodeId(1)),
                to: NodeId(9),
            },
        ));
        let order: Vec<Option<Guid>> = q.iter().map(|r| r.op.member()).collect();
        assert_eq!(order, vec![Some(Guid(1)), Some(Guid(2))]);
    }
}
