//! Mobile-host event intake at access proxies, including the fast-handoff
//! path motivated in §1 ("fast handoff is needed to decrease service
//! disruptions to mobile users").
//!
//! When an MH hands off into this proxy and the proxy already knows the
//! member — from `ListOfNeighborMembers` (a neighbouring proxy hosted it) or
//! from `ListOfRingMembers` (same ring) — it is admitted immediately, before
//! ring agreement, and the application sees an [`AppEvent::FastHandoff`].
//! Otherwise admission into the ring view waits for the one-round agreement
//! like any other change. Either way a `Member-Handoff` change record is
//! queued so the hierarchy converges on the new location.

use crate::events::{AppEvent, Output};
use crate::ids::Guid;
use crate::member::{MemberInfo, MemberStatus};
use crate::message::{ChangeOp, ChangeRecord, MhEvent};
use crate::node::NodeState;

impl NodeState {
    /// Intake of one mobile-host event at this (access-proxy) node.
    ///
    /// Non-bottom nodes ignore MH events: mobile hosts can only attach to
    /// access proxies (paper §3).
    pub(crate) fn on_mh(&mut self, event: MhEvent, outs: &mut Vec<Output>) {
        if !self.is_bottom() {
            return;
        }
        let op = match event {
            MhEvent::Join { guid, luid } => {
                let info = MemberInfo::operational(guid, luid, self.id);
                self.local_members.upsert(info);
                ChangeOp::MemberJoin { info }
            }
            MhEvent::Leave { guid } => {
                self.local_members.remove(guid);
                ChangeOp::MemberLeave { guid }
            }
            MhEvent::FailureDetected { guid } => {
                self.local_members.set_status(guid, MemberStatus::Failed);
                self.local_members.remove(guid);
                ChangeOp::MemberFailure { guid }
            }
            MhEvent::Disconnect { guid } => {
                self.local_members.set_status(guid, MemberStatus::Disconnected);
                ChangeOp::MemberDisconnect { guid }
            }
            MhEvent::Resume { guid, luid } => {
                // Resumption is a rebinding at this proxy: locally it is an
                // operational record again, ring-wide it rides as a handoff
                // (which also covers resuming at a *different* cell).
                self.local_members.upsert(MemberInfo::operational(guid, luid, self.id));
                self.ring_members.apply_handoff(guid, luid, self.id);
                ChangeOp::MemberHandoff { guid, luid, from: None, to: self.id }
            }
            MhEvent::HandoffIn { guid, luid, from } => {
                let known_from = from.or_else(|| self.lookup_previous_ap(guid));
                self.local_members.upsert(MemberInfo::operational(guid, luid, self.id));
                if known_from.is_some() {
                    // Fast path: prior location known — admit immediately
                    // into the ring view as well.
                    self.ring_members.apply_handoff(guid, luid, self.id);
                    self.neighbor_members.remove(guid);
                    outs.push(Output::Deliver(AppEvent::FastHandoff { guid }));
                }
                ChangeOp::MemberHandoff { guid, luid, from: known_from, to: self.id }
            }
        };
        let id = self.next_change_id();
        let rec = ChangeRecord::new(id, self.id, self.ring_id(), op);
        self.queue_record(rec, outs);
    }

    /// Where was `guid` last seen, according to this proxy's working sets?
    fn lookup_previous_ap(&self, guid: Guid) -> Option<crate::ids::NodeId> {
        self.neighbor_members.get(guid).or_else(|| self.ring_members.get(guid)).map(|m| m.ap)
    }
}
