//! Inputs and outputs of the sans-IO protocol engine.
//!
//! A [`crate::node::NodeState`] consumes [`Input`]s (message arrivals, timer
//! expiries, local mobile-host events, application requests) and emits
//! [`Output`]s (messages to send, timers to arm or cancel, application
//! deliveries). The substrate — discrete-event simulator or threaded
//! runtime — is responsible for transporting messages and firing timers.

use crate::ids::{NodeId, RingId};
use crate::member::MemberList;
use crate::message::{ChangeId, MhEvent, Msg, QueryId, QueryScope};
use crate::view::View;
use serde::{Deserialize, Serialize};

/// Timers a node may arm. Timers are keyed by their full value: arming the
/// same kind again re-schedules it, and cancelling removes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimerKind {
    /// Retransmission deadline for an in-flight token of round `seq`.
    TokenRetransmit {
        /// Round number awaiting acknowledgement.
        seq: u64,
    },
    /// Pacing timer between heartbeat rounds under the continuous policy.
    TokenKick,
    /// Suspicion timer: no token seen on the ring for too long.
    TokenLost,
    /// Periodic heartbeat emission (up and down).
    Heartbeat,
    /// Parent liveness deadline (`ParentOK` maintenance).
    ParentTimeout,
    /// Child liveness deadline (`ChildOK` maintenance), one per child ring.
    ChildTimeout {
        /// The child ring being watched.
        ring: RingId,
    },
}

/// Everything a node can react to.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// A message arrived from another network entity.
    Msg {
        /// Sender.
        from: NodeId,
        /// Payload.
        msg: Msg,
    },
    /// A timer armed earlier has fired.
    Timer(TimerKind),
    /// A mobile host attached to this access proxy issued an event. (The
    /// substrate may alternatively deliver this as [`Msg::FromMh`] to count
    /// the wireless hop.)
    Mh(MhEvent),
    /// The local application asks for the group membership.
    StartQuery {
        /// What to ask for.
        scope: QueryScope,
    },
    /// Substrate/operator instruction: this node should begin operating
    /// (arm initial timers, park the token if it is the leader).
    Boot,
}

/// Application-visible events delivered by the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum AppEvent {
    /// A new membership view was installed at this node.
    ViewChange {
        /// The installed view.
        view: View,
    },
    /// Changes queued at this node were agreed by the ring
    /// (Holder-Acknowledgement received, or agreement observed locally).
    Agreed {
        /// Ring in which agreement happened.
        ring: RingId,
        /// The agreed changes.
        ids: Vec<ChangeId>,
    },
    /// Result of a [`Input::StartQuery`] request.
    QueryResult {
        /// The query this answers.
        qid: QueryId,
        /// Aggregated membership.
        members: MemberList,
        /// Number of partial responses aggregated.
        responses: u32,
    },
    /// A faulty successor was excluded from the ring (local repair, §5.2).
    RingRepaired {
        /// The ring that repaired itself.
        ring: RingId,
        /// The excluded node.
        excluded: NodeId,
    },
    /// This node's ring leader changed.
    LeaderChanged {
        /// The ring.
        ring: RingId,
        /// The new leader.
        leader: NodeId,
    },
    /// `ParentOK` was cleared: the parent node went silent.
    ParentLost {
        /// The ring that lost its sponsor.
        ring: RingId,
    },
    /// The ring re-attached to a new sponsor after losing its parent.
    Reattached {
        /// The adopting node.
        parent: NodeId,
    },
    /// A mobile host was admitted through the fast handoff path (its record
    /// was already known from `ListOfNeighborMembers` / ring state).
    FastHandoff {
        /// The admitted member.
        guid: crate::ids::Guid,
    },
    /// This (previously standalone) entity was admitted into a ring and
    /// installed the transferred ring state.
    JoinedRing {
        /// The ring joined.
        ring: RingId,
    },
}

/// Everything a node can ask its substrate to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Send `msg` to node `to`.
    Send {
        /// Destination.
        to: NodeId,
        /// Payload.
        msg: Msg,
    },
    /// Arm (or re-arm) a timer `after` ticks from now.
    SetTimer {
        /// Which timer.
        kind: TimerKind,
        /// Delay in ticks.
        after: u64,
    },
    /// Cancel a previously armed timer (no-op if not armed).
    CancelTimer {
        /// Which timer.
        kind: TimerKind,
    },
    /// Deliver an event to the local application.
    Deliver(AppEvent),
}

impl Output {
    /// Convenience: is this a send to `to`?
    pub fn is_send_to(&self, to: NodeId) -> bool {
        matches!(self, Output::Send { to: t, .. } if *t == to)
    }

    /// Extract the sent message if this is a send.
    pub fn as_send(&self) -> Option<(NodeId, &Msg)> {
        match self {
            Output::Send { to, msg } => Some((*to, msg)),
            _ => None,
        }
    }

    /// Extract the delivered app event if this is a delivery.
    pub fn as_deliver(&self) -> Option<&AppEvent> {
        match self {
            Output::Deliver(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GroupId;
    use crate::token::Token;

    #[test]
    fn output_accessors() {
        let t = Token::fresh(GroupId(1), RingId(0), 1, NodeId(1), vec![]);
        let o = Output::Send { to: NodeId(2), msg: Msg::Token(t) };
        assert!(o.is_send_to(NodeId(2)));
        assert!(!o.is_send_to(NodeId(3)));
        assert!(o.as_send().is_some());
        assert!(o.as_deliver().is_none());

        let d = Output::Deliver(AppEvent::ParentLost { ring: RingId(1) });
        assert!(d.as_send().is_none());
        assert!(matches!(d.as_deliver(), Some(AppEvent::ParentLost { .. })));
    }

    #[test]
    fn timer_kinds_are_orderable_for_substrate_maps() {
        let mut v = [
            TimerKind::Heartbeat,
            TimerKind::TokenRetransmit { seq: 2 },
            TimerKind::TokenRetransmit { seq: 1 },
        ];
        v.sort();
        assert_eq!(v[0], TimerKind::TokenRetransmit { seq: 1 });
    }
}
