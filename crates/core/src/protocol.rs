//! The One-Round Token Passing Membership algorithm (paper §4.3, Figure 3)
//! and the surrounding machinery: token forwarding with retransmission-based
//! fault detection (§5.2), holder rotation, Notification-to-Parent/Child
//! propagation, Holder-Acknowledgement, heartbeats and re-attachment.
//!
//! Everything here is an `impl` block on [`NodeState`]; the entry point is
//! [`NodeState::handle`].

use crate::config::TokenPolicy;
use crate::events::{AppEvent, Input, Output, TimerKind};
use crate::ids::{NodeId, RingId};
use crate::member::MemberList;
use crate::message::{ChangeOp, ChangeRecord, Msg, NotifyKind, StatusSummary};
use crate::node::{ChildLink, Inflight, NodeState};
use crate::token::Token;
use crate::view::{View, ViewId};

impl NodeState {
    /// Process one input, producing the outputs the substrate must act on.
    ///
    /// This is the single entry point of the sans-IO engine; it never blocks
    /// and never performs IO.
    pub fn handle(&mut self, input: Input) -> Vec<Output> {
        let mut outs = Vec::new();
        self.handle_into(input, &mut outs);
        outs
    }

    /// Reusable-buffer variant of [`NodeState::handle`]: appends this
    /// input's outputs to `outs` instead of allocating a fresh vector.
    ///
    /// Hot loops keep one [`crate::substrate::OutputSink`] alive and pass it
    /// to every input, draining it through
    /// [`crate::substrate::apply_outputs`] between calls; after the buffer
    /// reaches its working size no per-input allocation remains.
    pub fn handle_into(&mut self, input: Input, outs: &mut Vec<Output>) {
        match input {
            Input::Boot => self.boot(outs),
            Input::Msg { from, msg } => self.on_msg(from, msg, outs),
            Input::Timer(kind) => self.on_timer(kind, outs),
            Input::Mh(event) => self.on_mh(event, outs),
            Input::StartQuery { scope } => self.start_query(scope, outs),
        }
    }

    fn boot(&mut self, outs: &mut Vec<Output>) {
        if self.is_leader() {
            self.has_token = true;
        }
        if self.cfg.token_policy == TokenPolicy::Continuous {
            if self.is_leader() {
                outs.push(Output::SetTimer {
                    kind: TimerKind::TokenKick,
                    after: self.cfg.token_interval,
                });
            }
            outs.push(Output::SetTimer {
                kind: TimerKind::Heartbeat,
                after: self.cfg.heartbeat_interval,
            });
            outs.push(Output::SetTimer {
                kind: TimerKind::TokenLost,
                after: self.cfg.token_lost_timeout,
            });
            if self.is_leader() && self.parent.is_some() {
                outs.push(Output::SetTimer {
                    kind: TimerKind::ParentTimeout,
                    after: self.cfg.parent_timeout,
                });
            }
            let child_rings: Vec<RingId> = self.children.keys().copied().collect();
            for ring in child_rings {
                outs.push(Output::SetTimer {
                    kind: TimerKind::ChildTimeout { ring },
                    after: self.cfg.child_timeout,
                });
            }
        }
    }

    fn on_msg(&mut self, from: NodeId, msg: Msg, outs: &mut Vec<Output>) {
        match msg {
            Msg::Token(token) => self.on_token(from, token, outs),
            Msg::TokenAck { ring, seq } => self.on_token_ack(ring, seq, outs),
            Msg::MqInsert { kind, records } => self.on_mq_insert(from, kind, records, outs),
            Msg::HolderAck { ring, seq: _, change_ids } => {
                self.on_holder_ack(ring, change_ids, outs)
            }
            Msg::HeartbeatUp(summary) => self.on_heartbeat_up(from, summary, outs),
            Msg::HeartbeatDown(summary) => self.on_heartbeat_down(from, summary, outs),
            Msg::AttachChild { ring, leader } => self.on_attach_child(ring, leader, outs),
            Msg::AttachAccepted { parent, parent_ring } => {
                self.on_attach_accepted(parent, parent_ring, outs)
            }
            Msg::QueryRequest { qid, reply_to, scope, fanout_level, spread } => {
                self.on_query_request(qid, reply_to, scope, fanout_level, spread, outs)
            }
            Msg::QueryResponse { qid, members, expected } => {
                self.on_query_response(qid, members, expected, outs)
            }
            Msg::JoinRing { node } => self.on_join_ring(node, outs),
            Msg::MergeRings { ring, roster, members } => {
                self.on_merge_rings(ring, roster, members, outs)
            }
            Msg::RingSync(snapshot) => self.on_ring_sync(*snapshot, outs),
            Msg::FromMh { event } => self.on_mh(event, outs),
        }
    }

    fn on_timer(&mut self, kind: TimerKind, outs: &mut Vec<Output>) {
        match kind {
            TimerKind::TokenRetransmit { seq } => self.on_retransmit_deadline(seq, outs),
            TimerKind::TokenKick => self.on_token_kick(outs),
            TimerKind::TokenLost => self.on_token_lost(outs),
            TimerKind::Heartbeat => self.on_heartbeat_tick(outs),
            TimerKind::ParentTimeout => self.on_parent_timeout(outs),
            TimerKind::ChildTimeout { ring } => self.on_child_timeout(ring, outs),
        }
    }

    // ------------------------------------------------------------------
    // Queuing membership changes
    // ------------------------------------------------------------------

    /// Route a freshly generated change record: queue it locally (and kick a
    /// round if we hold the parked token), or — under the on-demand policy,
    /// where rounds are leader-driven — relay it to the ring leader.
    pub(crate) fn queue_record(&mut self, rec: ChangeRecord, outs: &mut Vec<Output>) {
        if rec.origin == self.id {
            self.awaiting_ack.insert(rec.id, ());
        }
        let relay_to_leader = self.cfg.token_policy == TokenPolicy::OnDemand
            && !self.is_leader()
            && self.leader().is_some();
        if relay_to_leader {
            let leader = self.leader().expect("checked above");
            outs.push(Output::Send {
                to: leader,
                msg: Msg::MqInsert { kind: NotifyKind::Local, records: vec![rec] },
            });
        } else {
            self.mq.push(rec, self.cfg.aggregate_mq);
            self.maybe_start_round(outs);
        }
    }

    fn on_mq_insert(
        &mut self,
        _from: NodeId,
        kind: NotifyKind,
        records: Vec<ChangeRecord>,
        outs: &mut Vec<Output>,
    ) {
        // Under the on-demand policy rounds are leader-driven: a non-leader
        // receiving notifications relays them onward to the current leader.
        if self.cfg.token_policy == TokenPolicy::OnDemand && !self.is_leader() {
            if let Some(leader) = self.leader() {
                if leader != self.id {
                    outs.push(Output::Send { to: leader, msg: Msg::MqInsert { kind, records } });
                    return;
                }
            }
        }
        for rec in records {
            if rec.origin == self.id {
                self.awaiting_ack.insert(rec.id, ());
            }
            self.mq.push(rec, self.cfg.aggregate_mq);
        }
        self.maybe_start_round(outs);
    }

    fn maybe_start_round(&mut self, outs: &mut Vec<Output>) {
        if self.has_token && self.inflight.is_none() && !self.mq.is_empty() {
            match self.cfg.token_policy {
                TokenPolicy::OnDemand => self.start_round(outs),
                // Continuous rounds are paced by the TokenKick timer.
                TokenPolicy::Continuous => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Rounds
    // ------------------------------------------------------------------

    /// Prepare a fresh token from the local MQ and start a round
    /// (Figure 3 line 22: "Prepare a fresh Token at an appropriate node").
    pub(crate) fn start_round(&mut self, outs: &mut Vec<Output>) {
        loop {
            let ops = self.mq.drain(self.cfg.max_ops_per_token);
            let seq = self.last_token_seq + 1;
            self.last_token_seq = seq;
            let mut token = Token::fresh(self.gid, self.ring_id(), seq, self.id, ops);
            token.note_visit(self.id);
            self.stats.rounds_started += 1;
            let ops_snapshot = token.ops.clone();
            self.execute_records(&ops_snapshot, outs);
            if self.roster.len() <= 1 {
                // Single-node ring: the round completes immediately.
                self.finish_round(&token, outs);
                let again = self.cfg.token_policy == TokenPolicy::OnDemand && !self.mq.is_empty();
                if again {
                    continue;
                }
                break;
            }
            self.has_token = false;
            let target = self.roster.next_of(self.id).expect("self on roster");
            self.forward_token(token, target, outs);
            break;
        }
    }

    /// Send the token to `target`, arming the retransmission machinery.
    fn forward_token(&mut self, token: Token, target: NodeId, outs: &mut Vec<Output>) {
        let seq = token.seq;
        outs.push(Output::Send { to: target, msg: Msg::Token(token.clone()) });
        outs.push(Output::SetTimer {
            kind: TimerKind::TokenRetransmit { seq },
            after: self.cfg.token_retransmit_timeout,
        });
        self.inflight = Some(Inflight { token, target, attempts: 0 });
        self.stats.tokens_forwarded += 1;
    }

    fn on_token(&mut self, from: NodeId, mut token: Token, outs: &mut Vec<Output>) {
        if token.ring != self.ring_id() || token.gid != self.gid {
            return;
        }
        // Always acknowledge forward progress to the sender.
        outs.push(Output::Send {
            to: from,
            msg: Msg::TokenAck { ring: token.ring, seq: token.seq },
        });
        self.token_seen_since_lost = true;
        if self.cfg.token_policy == TokenPolicy::Continuous {
            outs.push(Output::SetTimer {
                kind: TimerKind::TokenLost,
                after: self.cfg.token_lost_timeout,
            });
        }
        if token.holder == self.id {
            if token.visited.is_empty() {
                // Holdership grant after a completed round elsewhere.
                if token.seq <= self.last_token_seq {
                    return; // duplicate grant
                }
                self.last_token_seq = token.seq;
                self.has_token = true;
                self.ring_ok = true;
                match self.cfg.token_policy {
                    TokenPolicy::Continuous => outs.push(Output::SetTimer {
                        kind: TimerKind::TokenKick,
                        after: self.cfg.token_interval,
                    }),
                    TokenPolicy::OnDemand => self.maybe_start_round(outs),
                }
            } else {
                // The round we started has come back: agreement reached.
                if token.seq < self.last_token_seq {
                    return; // stale
                }
                if let Some(inf) = &self.inflight {
                    if inf.token.seq == token.seq {
                        outs.push(Output::CancelTimer {
                            kind: TimerKind::TokenRetransmit { seq: token.seq },
                        });
                        self.inflight = None;
                    }
                }
                self.ring_ok = true;
                self.finish_round(&token, outs);
                match self.cfg.token_policy {
                    TokenPolicy::OnDemand => {
                        self.has_token = true;
                        if !self.mq.is_empty() {
                            self.start_round(outs);
                        }
                    }
                    TokenPolicy::Continuous => self.rotate_or_keep(&token, outs),
                }
            }
            return;
        }
        // A visiting token.
        if token.seq <= self.last_token_seq {
            return; // retransmitted duplicate we already processed
        }
        self.last_token_seq = token.seq;
        self.ring_ok = true;
        // "Execute Token.OP on CurNode" (Figure 3 line 08).
        let ops_snapshot = token.ops.clone();
        self.execute_records(&ops_snapshot, outs);
        token.note_visit(self.id);
        if !self.mq.is_empty() {
            token.note_pending(self.id);
        }
        let target = self.roster.next_of(self.id).unwrap_or(token.holder);
        self.forward_token(token, target, outs);
    }

    fn on_token_ack(&mut self, ring: RingId, seq: u64, outs: &mut Vec<Output>) {
        if ring != self.ring_id() {
            return;
        }
        if let Some(inf) = &self.inflight {
            if inf.token.seq == seq {
                outs.push(Output::CancelTimer { kind: TimerKind::TokenRetransmit { seq } });
                self.inflight = None;
            }
        }
    }

    /// Round completion at the holder: send Holder-Acknowledgements
    /// (Figure 3 lines 17–20) and account for the agreed round.
    fn finish_round(&mut self, token: &Token, outs: &mut Vec<Output>) {
        self.stats.rounds_completed += 1;
        if token.ops.is_empty() {
            return;
        }
        // Group agreed changes by originator.
        let mut by_origin: Vec<(NodeId, Vec<crate::message::ChangeId>)> = Vec::new();
        for rec in &token.ops {
            match by_origin.iter_mut().find(|(o, _)| *o == rec.origin) {
                Some((_, v)) => v.push(rec.id),
                None => by_origin.push((rec.origin, vec![rec.id])),
            }
        }
        for (origin, ids) in by_origin {
            if origin == self.id {
                for id in &ids {
                    self.awaiting_ack.remove(id);
                }
                outs.push(Output::Deliver(AppEvent::Agreed { ring: self.ring_id(), ids }));
            } else {
                outs.push(Output::Send {
                    to: origin,
                    msg: Msg::HolderAck { ring: self.ring_id(), seq: token.seq, change_ids: ids },
                });
            }
        }
    }

    /// Continuous-policy rotation (design decision D2): pass holdership to
    /// `Next`, or keep it when rotation is disabled.
    fn rotate_or_keep(&mut self, token: &Token, outs: &mut Vec<Output>) {
        let next = self.roster.next_of(self.id).unwrap_or(self.id);
        if !self.cfg.rotate_holder || next == self.id {
            self.has_token = true;
            outs.push(Output::SetTimer {
                kind: TimerKind::TokenKick,
                after: self.cfg.token_interval,
            });
            return;
        }
        let seq = self.last_token_seq + 1;
        self.last_token_seq = seq;
        let grant = Token::fresh(self.gid, self.ring_id(), seq, next, Vec::new());
        let _ = token;
        self.has_token = false;
        self.forward_token(grant, next, outs);
    }

    fn on_token_kick(&mut self, outs: &mut Vec<Output>) {
        if self.has_token && self.inflight.is_none() {
            self.start_round(outs);
        }
    }

    fn on_token_lost(&mut self, outs: &mut Vec<Output>) {
        if self.cfg.token_policy != TokenPolicy::Continuous {
            return;
        }
        outs.push(Output::SetTimer {
            kind: TimerKind::TokenLost,
            after: self.cfg.token_lost_timeout,
        });
        if self.token_seen_since_lost {
            // The ring made progress recently; start watching for a fresh
            // silence window.
            self.token_seen_since_lost = false;
            if self.is_leader() && !self.has_token {
                self.regenerate_token(outs);
            }
            return;
        }
        // Second consecutive silent expiry: the ring is stuck. If we are
        // the leader, regenerate. Otherwise the leader itself is the prime
        // suspect (it crashed while holding the parked token): exclude it
        // and let the deterministic re-election pick the next leader, who
        // regenerates.
        self.ring_ok = false;
        if self.is_leader() {
            if !self.has_token {
                self.regenerate_token(outs);
            } else {
                // Parked with a token but silent: kick a round ourselves.
                self.start_round(outs);
            }
            return;
        }
        if let Some(leader) = self.leader() {
            self.exclude_node(leader, outs);
        }
        if self.is_leader() {
            self.regenerate_token(outs);
        }
    }

    /// Mint a replacement token after loss. The sequence number jumps ahead
    /// so the regenerated token outranks any straggler from the old round.
    fn regenerate_token(&mut self, outs: &mut Vec<Output>) {
        if let Some(inf) = self.inflight.take() {
            outs.push(Output::CancelTimer {
                kind: TimerKind::TokenRetransmit { seq: inf.token.seq },
            });
        }
        self.last_token_seq += 16;
        self.has_token = true;
        self.start_round(outs);
    }

    // ------------------------------------------------------------------
    // Fault detection and local repair (§5.2)
    // ------------------------------------------------------------------

    fn on_retransmit_deadline(&mut self, seq: u64, outs: &mut Vec<Output>) {
        let Some(inf) = &mut self.inflight else { return };
        if inf.token.seq != seq {
            return;
        }
        if inf.attempts < self.cfg.token_retransmit_limit {
            inf.attempts += 1;
            self.stats.retransmits += 1;
            let msg = Msg::Token(inf.token.clone());
            let target = inf.target;
            outs.push(Output::Send { to: target, msg });
            outs.push(Output::SetTimer {
                kind: TimerKind::TokenRetransmit { seq },
                after: self.cfg.token_retransmit_timeout,
            });
            return;
        }
        // Retransmissions exhausted: the successor is faulty. Exclude it
        // locally and continue the round past it.
        let Inflight { mut token, target: bad, .. } = self.inflight.take().expect("inflight");
        self.exclude_node(bad, outs);
        if token.holder == bad {
            // The round's holder is the faulty node: adopt the round so the
            // remaining ops still reach agreement.
            token.holder = self.id;
        }
        if self.roster.len() <= 1 {
            // Alone now; whatever the token carried is trivially agreed.
            token.holder = self.id;
            self.has_token = true;
            self.finish_round(&token, outs);
            if self.cfg.token_policy == TokenPolicy::Continuous {
                outs.push(Output::SetTimer {
                    kind: TimerKind::TokenKick,
                    after: self.cfg.token_interval,
                });
            } else if !self.mq.is_empty() {
                self.start_round(outs);
            }
            return;
        }
        let target = self.roster.next_of(self.id).expect("non-empty roster");
        self.forward_token(token, target, outs);
    }

    /// Local repair: drop `bad` from the roster, queue an NE-Failure change
    /// so the rest of the ring (and the hierarchy) agrees on the exclusion.
    fn exclude_node(&mut self, bad: NodeId, outs: &mut Vec<Output>) {
        let old_leader = self.roster.leader();
        if !self.roster.remove(bad) {
            return;
        }
        self.stats.exclusions += 1;
        outs.push(Output::Deliver(AppEvent::RingRepaired { ring: self.ring_id(), excluded: bad }));
        self.mq.retain_not_about_node(bad);
        let id = self.next_change_id();
        let rec = ChangeRecord::new(
            id,
            self.id,
            self.ring_id(),
            ChangeOp::NeFailure { node: bad, ring: self.ring_id() },
        );
        // Queue directly: the exclusion must ride the very next round.
        self.awaiting_ack.insert(rec.id, ());
        self.mq.push(rec, self.cfg.aggregate_mq);
        self.after_roster_change(old_leader, outs);
    }

    /// Re-establish leader-dependent state after any roster change.
    fn after_roster_change(&mut self, old_leader: Option<NodeId>, outs: &mut Vec<Output>) {
        let new_leader = self.roster.leader();
        if new_leader != old_leader {
            if let Some(leader) = new_leader {
                outs.push(Output::Deliver(AppEvent::LeaderChanged {
                    ring: self.ring_id(),
                    leader,
                }));
                if leader == self.id
                    && self.cfg.token_policy == TokenPolicy::Continuous
                    && self.parent.is_some()
                {
                    outs.push(Output::SetTimer {
                        kind: TimerKind::ParentTimeout,
                        after: self.cfg.parent_timeout,
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Executing token operations
    // ------------------------------------------------------------------

    /// "Execute Token.OP on CurNode": apply every record to the local lists
    /// and emit the Notification-to-Parent / Notification-to-Child messages
    /// of Figure 3 lines 10–16.
    pub(crate) fn execute_records(&mut self, records: &[ChangeRecord], outs: &mut Vec<Output>) {
        if records.is_empty() {
            return;
        }
        let mut ups: Vec<ChangeRecord> = Vec::new();
        let mut downs: Vec<(NodeId, Vec<ChangeRecord>)> = Vec::new();
        for rec in records {
            self.stats.ops_executed += 1;
            self.apply_record(rec, outs);
            // Notification-to-Parent: only the ring leader relays upward.
            if let Some(parent) = self.parent {
                if self.is_leader() && self.parent_ok && !rec.descending && rec.op.propagates_up() {
                    ups.push(rec.for_parent_ring(parent, self.ring_id()));
                }
            }
            // Notification-to-Child: every sponsor relays downward, except
            // back into the subtree the record came from.
            if rec.op.propagates_up() {
                for (&cr, link) in &self.children {
                    if !link.ok || Some(cr) == rec.from_child_ring {
                        continue;
                    }
                    let down = rec.for_child_ring(link.leader);
                    match downs.iter_mut().find(|(l, _)| *l == link.leader) {
                        Some((_, v)) => v.push(down),
                        None => downs.push((link.leader, vec![down])),
                    }
                }
            }
        }
        if !ups.is_empty() {
            let parent = self.parent.expect("ups only collected with a parent");
            outs.push(Output::Send {
                to: parent,
                msg: Msg::MqInsert { kind: NotifyKind::ToParent, records: ups },
            });
        }
        for (leader, records) in downs {
            outs.push(Output::Send {
                to: leader,
                msg: Msg::MqInsert { kind: NotifyKind::ToChild, records },
            });
        }
        // One loaded round = one view epoch, identically at every node.
        self.epoch += 1;
        self.stats.views_installed += 1;
        if self.is_store_level() {
            let view = View::from_list(
                ViewId { ring: self.ring_id(), epoch: self.epoch },
                &self.ring_members,
            );
            outs.push(Output::Deliver(AppEvent::ViewChange { view }));
        }
    }

    fn apply_record(&mut self, rec: &ChangeRecord, outs: &mut Vec<Output>) {
        match &rec.op {
            ChangeOp::MemberJoin { .. }
            | ChangeOp::MemberLeave { .. }
            | ChangeOp::MemberHandoff { .. }
            | ChangeOp::MemberFailure { .. }
            | ChangeOp::MemberDisconnect { .. } => {
                if self.is_store_level() && !rec.descending {
                    apply_member_op(&mut self.ring_members, &rec.op);
                }
                if self.is_bottom() && !rec.descending {
                    self.update_neighbor_list(&rec.op);
                }
            }
            ChangeOp::NeJoin { node, ring } => {
                if *ring == self.ring_id() {
                    let old_leader = self.roster.leader();
                    self.roster.insert_after(*node, None);
                    self.after_roster_change(old_leader, outs);
                }
            }
            ChangeOp::NeLeave { node, ring } | ChangeOp::NeFailure { node, ring } => {
                if *ring == self.ring_id() && *node != self.id {
                    let old_leader = self.roster.leader();
                    self.roster.remove(*node);
                    self.after_roster_change(old_leader, outs);
                }
            }
            ChangeOp::LeaderChange { ring, leader } => {
                if let Some(link) = self.children.get_mut(ring) {
                    link.leader = *leader;
                }
            }
        }
    }

    /// Maintain `ListOfNeighborMembers`: records concerning the proxies that
    /// are this node's ring neighbours (fast-handoff working set).
    fn update_neighbor_list(&mut self, op: &ChangeOp) {
        let prev = self.prev();
        let next = self.next();
        let is_neighbor = |ap: NodeId| Some(ap) == prev || Some(ap) == next;
        match op {
            ChangeOp::MemberJoin { info } if is_neighbor(info.ap) => {
                self.neighbor_members.upsert(*info);
            }
            ChangeOp::MemberHandoff { guid, luid, to, .. } => {
                if is_neighbor(*to) {
                    self.neighbor_members.apply_handoff(*guid, *luid, *to);
                } else {
                    self.neighbor_members.remove(*guid);
                }
            }
            ChangeOp::MemberLeave { guid } | ChangeOp::MemberFailure { guid } => {
                self.neighbor_members.remove(*guid);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Acknowledgements
    // ------------------------------------------------------------------

    fn on_holder_ack(
        &mut self,
        ring: RingId,
        change_ids: Vec<crate::message::ChangeId>,
        outs: &mut Vec<Output>,
    ) {
        for id in &change_ids {
            self.awaiting_ack.remove(id);
        }
        outs.push(Output::Deliver(AppEvent::Agreed { ring, ids: change_ids }));
    }

    // ------------------------------------------------------------------
    // Heartbeats, ParentOK/ChildOK, re-attachment
    // ------------------------------------------------------------------

    fn status_summary(&self) -> StatusSummary {
        StatusSummary {
            ring: self.ring_id(),
            ring_ok: self.ring_ok,
            leader: self.leader().unwrap_or(self.id),
            roster: self.roster.nodes().to_vec(),
        }
    }

    fn on_heartbeat_tick(&mut self, outs: &mut Vec<Output>) {
        outs.push(Output::SetTimer {
            kind: TimerKind::Heartbeat,
            after: self.cfg.heartbeat_interval,
        });
        if self.is_leader() {
            if let Some(parent) = self.parent {
                outs.push(Output::Send {
                    to: parent,
                    msg: Msg::HeartbeatUp(self.status_summary()),
                });
            }
        }
        let summary = self.status_summary();
        for link in self.children.values() {
            outs.push(Output::Send { to: link.leader, msg: Msg::HeartbeatDown(summary.clone()) });
        }
    }

    fn on_heartbeat_up(&mut self, _from: NodeId, summary: StatusSummary, outs: &mut Vec<Output>) {
        if let Some(link) = self.children.get_mut(&summary.ring) {
            link.leader = summary.leader;
            link.ok = summary.ring_ok;
            outs.push(Output::SetTimer {
                kind: TimerKind::ChildTimeout { ring: summary.ring },
                after: self.cfg.child_timeout,
            });
        }
    }

    fn on_heartbeat_down(&mut self, from: NodeId, summary: StatusSummary, outs: &mut Vec<Output>) {
        self.parent = Some(from);
        self.parent_ring = Some(summary.ring);
        self.parent_ok = summary.ring_ok;
        self.parent_roster_cache = summary.roster;
        self.attach_attempts = 0;
        if self.is_leader() {
            outs.push(Output::SetTimer {
                kind: TimerKind::ParentTimeout,
                after: self.cfg.parent_timeout,
            });
        }
    }

    fn on_parent_timeout(&mut self, outs: &mut Vec<Output>) {
        if !self.is_leader() || self.parent.is_none() {
            return;
        }
        self.parent_ok = false;
        outs.push(Output::Deliver(AppEvent::ParentLost { ring: self.ring_id() }));
        // Try to re-attach to another node of the (cached) parent ring.
        let old_parent = self.parent;
        let candidates: Vec<NodeId> =
            self.parent_roster_cache.iter().copied().filter(|&n| Some(n) != old_parent).collect();
        if !candidates.is_empty() {
            let pick = candidates[self.attach_attempts % candidates.len()];
            self.attach_attempts += 1;
            outs.push(Output::Send {
                to: pick,
                msg: Msg::AttachChild { ring: self.ring_id(), leader: self.id },
            });
        }
        outs.push(Output::SetTimer {
            kind: TimerKind::ParentTimeout,
            after: self.cfg.parent_timeout,
        });
    }

    fn on_attach_child(&mut self, ring: RingId, leader: NodeId, outs: &mut Vec<Output>) {
        self.children.insert(ring, ChildLink { leader, ok: true });
        outs.push(Output::Send {
            to: leader,
            msg: Msg::AttachAccepted { parent: self.id, parent_ring: self.ring_id() },
        });
        outs.push(Output::SetTimer {
            kind: TimerKind::ChildTimeout { ring },
            after: self.cfg.child_timeout,
        });
    }

    fn on_attach_accepted(&mut self, parent: NodeId, parent_ring: RingId, outs: &mut Vec<Output>) {
        self.parent = Some(parent);
        self.parent_ring = Some(parent_ring);
        self.parent_ok = true;
        self.attach_attempts = 0;
        outs.push(Output::Deliver(AppEvent::Reattached { parent }));
        if self.is_leader() && self.cfg.token_policy == TokenPolicy::Continuous {
            outs.push(Output::SetTimer {
                kind: TimerKind::ParentTimeout,
                after: self.cfg.parent_timeout,
            });
        }
    }

    fn on_child_timeout(&mut self, ring: RingId, _outs: &mut Vec<Output>) {
        if let Some(link) = self.children.get_mut(&ring) {
            link.ok = false;
        }
    }
}

/// Apply one member-level op to a member list.
pub(crate) fn apply_member_op(list: &mut MemberList, op: &ChangeOp) {
    match op {
        ChangeOp::MemberJoin { info } => {
            list.apply_join(*info);
        }
        ChangeOp::MemberLeave { guid } | ChangeOp::MemberFailure { guid } => {
            list.remove(*guid);
        }
        ChangeOp::MemberDisconnect { guid } => {
            // Stays on the list (it may resume) but leaves the operational
            // view.
            list.set_status(*guid, crate::member::MemberStatus::Disconnected);
        }
        ChangeOp::MemberHandoff { guid, luid, to, .. } => {
            list.apply_handoff(*guid, *luid, *to);
        }
        _ => {}
    }
}
