//! Error type of the RGB core library.

use crate::ids::{GroupId, Guid, NodeId, RingId};
use core::fmt;

/// Errors surfaced by the sans-IO protocol core.
///
/// Because the core is a state machine, most "errors" are simply protocol
/// events (a faulty node, a partition); `RgbError` is reserved for misuse of
/// the API or violated preconditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RgbError {
    /// A node id was referenced that is not part of the ring roster.
    UnknownNode(NodeId),
    /// A ring id was referenced that is not part of the hierarchy.
    UnknownRing(RingId),
    /// A member GUID was referenced that is not in the membership list.
    UnknownMember(Guid),
    /// A message for a different group reached this node.
    GroupMismatch {
        /// The group this node serves.
        expected: GroupId,
        /// The group stamped on the message.
        got: GroupId,
    },
    /// An operation that requires a non-empty ring was attempted on an empty
    /// ring.
    EmptyRing(RingId),
    /// The hierarchy specification is invalid (e.g. zero height or branching
    /// below two).
    InvalidSpec(&'static str),
    /// A wire-format frame could not be decoded.
    Decode(&'static str),
    /// The node is partitioned from the ring and cannot serve the request.
    Partitioned(RingId),
}

impl fmt::Display for RgbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RgbError::UnknownNode(n) => write!(f, "unknown node {n}"),
            RgbError::UnknownRing(r) => write!(f, "unknown ring {r}"),
            RgbError::UnknownMember(g) => write!(f, "unknown member {g}"),
            RgbError::GroupMismatch { expected, got } => {
                write!(f, "group mismatch: expected {expected}, got {got}")
            }
            RgbError::EmptyRing(r) => write!(f, "ring {r} is empty"),
            RgbError::InvalidSpec(why) => write!(f, "invalid hierarchy spec: {why}"),
            RgbError::Decode(why) => write!(f, "wire decode error: {why}"),
            RgbError::Partitioned(r) => write!(f, "ring {r} is partitioned"),
        }
    }
}

impl std::error::Error for RgbError {}

/// Convenience result alias.
pub type Result<T, E = RgbError> = core::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(RgbError, &str)> = vec![
            (RgbError::UnknownNode(NodeId(1)), "unknown node n1"),
            (RgbError::UnknownRing(RingId(2)), "unknown ring r2"),
            (RgbError::UnknownMember(Guid(3)), "unknown member m3"),
            (
                RgbError::GroupMismatch { expected: GroupId(1), got: GroupId(2) },
                "group mismatch: expected g1, got g2",
            ),
            (RgbError::EmptyRing(RingId(0)), "ring r0 is empty"),
            (RgbError::InvalidSpec("bad"), "invalid hierarchy spec: bad"),
            (RgbError::Decode("short"), "wire decode error: short"),
            (RgbError::Partitioned(RingId(9)), "ring r9 is partitioned"),
        ];
        for (err, text) in cases {
            assert_eq!(err.to_string(), text);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RgbError::EmptyRing(RingId(1)));
    }
}
