//! Global Function-Well assessment of a ring-based hierarchy under a fault
//! set — the whole-hierarchy view of the §5.2 model, used by the simulator
//! oracle, the Monte-Carlo estimator and the reliability benches.

use crate::ids::RingId;
use crate::partition::{fault_count, hierarchy_function_well, ring_function_well, segments};
use crate::topology::HierarchyLayout;
use std::collections::BTreeSet;

/// Assessment of a hierarchy under a concrete fault set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionWellReport {
    /// Total logical rings (`tn`).
    pub rings_total: usize,
    /// Rings that do not function well (≥ 2 faults), with their fault and
    /// segment counts.
    pub bad_rings: Vec<BadRing>,
    /// Total faulty nodes across the hierarchy.
    pub total_faults: usize,
}

/// One ring that does not function well.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRing {
    /// The ring.
    pub ring: RingId,
    /// Faulty nodes on it.
    pub faults: usize,
    /// Alive segments it shattered into.
    pub segments: usize,
}

impl FunctionWellReport {
    /// Number of rings that do not function well.
    pub fn bad_count(&self) -> usize {
        self.bad_rings.len()
    }

    /// Paper rule: Function-Well for at most `k` partitions.
    pub fn function_well(&self, k: usize) -> bool {
        hierarchy_function_well(self.bad_count(), k)
    }
}

/// Assess `layout` under the fault set `faulty` according to the paper's
/// model (§5.2): single faults are locally repaired, rings with two or more
/// faults are partitioned.
pub fn assess(
    layout: &HierarchyLayout,
    faulty: &BTreeSet<crate::ids::NodeId>,
) -> FunctionWellReport {
    let mut bad_rings = Vec::new();
    let mut total_faults = 0usize;
    for ring in &layout.rings {
        let faults = fault_count(&ring.nodes, faulty);
        total_faults += faults;
        if !ring_function_well(&ring.nodes, faulty) {
            bad_rings.push(BadRing {
                ring: ring.id,
                faults,
                segments: segments(&ring.nodes, faulty).len(),
            });
        }
    }
    FunctionWellReport { rings_total: layout.rings.len(), bad_rings, total_faults }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GroupId, NodeId};
    use crate::topology::HierarchySpec;

    #[test]
    fn healthy_hierarchy_is_function_well_for_k1() {
        let layout = HierarchySpec::new(3, 3).build(GroupId(1)).unwrap();
        let report = assess(&layout, &BTreeSet::new());
        assert_eq!(report.bad_count(), 0);
        assert_eq!(report.rings_total, 13);
        assert!(report.function_well(1));
        assert_eq!(report.total_faults, 0);
    }

    #[test]
    fn single_fault_per_ring_is_repaired() {
        let layout = HierarchySpec::new(3, 3).build(GroupId(1)).unwrap();
        // one fault in the root ring, one in a bottom ring
        let mut faulty = BTreeSet::new();
        faulty.insert(layout.root_ring().nodes[0]);
        faulty.insert(*layout.rings_at(2).next().unwrap().nodes.first().unwrap());
        let report = assess(&layout, &faulty);
        assert_eq!(report.bad_count(), 0);
        assert!(report.function_well(1));
        assert_eq!(report.total_faults, 2);
    }

    #[test]
    fn two_faults_in_one_ring_partition_it() {
        let layout = HierarchySpec::new(3, 3).build(GroupId(1)).unwrap();
        let ring = layout.rings_at(2).next().unwrap();
        let faulty: BTreeSet<NodeId> = ring.nodes[..2].iter().copied().collect();
        let report = assess(&layout, &faulty);
        assert_eq!(report.bad_count(), 1);
        assert_eq!(report.bad_rings[0].ring, ring.id);
        assert_eq!(report.bad_rings[0].faults, 2);
        assert!(!report.function_well(1));
        assert!(report.function_well(2));
        assert!(report.function_well(3));
    }

    #[test]
    fn three_bad_rings_need_k4() {
        let layout = HierarchySpec::new(3, 3).build(GroupId(1)).unwrap();
        let mut faulty = BTreeSet::new();
        for ring in layout.rings_at(2).take(3) {
            faulty.insert(ring.nodes[0]);
            faulty.insert(ring.nodes[1]);
        }
        let report = assess(&layout, &faulty);
        assert_eq!(report.bad_count(), 3);
        assert!(!report.function_well(3));
        assert!(report.function_well(4));
    }
}
