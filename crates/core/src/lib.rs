//! # rgb-core — the RGB group membership protocol
//!
//! A from-scratch implementation of **RGB** ("a Ring-based hierarchy of
//! access proxies, access Gateways, and Border routers"), the scalable and
//! reliable group membership protocol for mobile Internet proposed by Wang,
//! Cao and Chan at ICPP 2004.
//!
//! The crate is **sans-IO**: every network entity is a deterministic state
//! machine ([`node::NodeState`]) consuming [`events::Input`]s and producing
//! [`events::Output`]s. The [`substrate`] module defines the uniform
//! execution boundary — a [`substrate::Substrate`] trait (clock, frame
//! transport, timers, app-event sink) plus the shared
//! [`substrate::apply_outputs`] driver that wire-encodes every send — and
//! the substrates implementing it live in sibling crates:
//!
//! * `rgb-sim` — a discrete-event mobile-Internet simulator (latency, loss,
//!   faults, mobility, metrics);
//! * `rgb-net` — a live threaded runtime (one thread per entity,
//!   crossbeam-channel transport, binary wire format from [`wire`]).
//!
//! ## Map from the paper
//!
//! | Paper concept (§)                  | Module |
//! |------------------------------------|--------|
//! | 4-tier architecture, Fig. 1–2      | [`ids`], [`topology`] |
//! | MH/NE/Token data structures (§4.2) | [`member`], [`node`], [`token`], [`mq`] |
//! | One-round token passing (§4.3)     | [`protocol`] |
//! | Membership-Query, TMS/BMS/IMS (§4.4) | [`query`] |
//! | Fast handoff (§1)                  | [`handoff`] |
//! | Fault model, local repair (§5.2)   | [`protocol`], [`partition`], [`hierarchy`] |
//! | Partition/Merge (future work, §6)  | [`partition`] |
//!
//! ## Quick start
//!
//! ```
//! use rgb_core::prelude::*;
//!
//! // A full hierarchy of height 2 with 3 nodes per ring: 9 access proxies.
//! let layout = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
//! let mut net = Loopback::from_layout(&layout, &ProtocolConfig::default());
//! net.boot_all();
//!
//! // A mobile host joins at the first access proxy.
//! let ap = layout.aps()[0];
//! net.inject(ap, Input::Mh(MhEvent::Join { guid: Guid(42), luid: Luid(1) }));
//! assert!(net.run_until_quiet(1_000_000));
//!
//! // Every node of that proxy's ring has agreed on the member.
//! let ring = layout.placement(ap).unwrap().ring;
//! for spec in &layout.rings {
//!     if spec.id == ring {
//!         for &n in &spec.nodes {
//!             assert!(net.node(n).ring_members.contains_operational(Guid(42)));
//!         }
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod events;
pub mod faults;
pub mod handoff;
pub mod hierarchy;
pub mod host;
pub mod ids;
pub mod introspect;
pub mod member;
pub mod message;
pub mod mq;
pub mod nejoin;
pub mod node;
pub mod obs;
pub mod partition;
pub mod protocol;
pub mod query;
pub mod ring;
pub mod substrate;
pub mod testing;
pub mod token;
pub mod topology;
pub mod view;
pub mod wire;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::config::{MembershipScheme, ProtocolConfig, TokenPolicy};
    pub use crate::error::RgbError;
    pub use crate::events::{AppEvent, Input, Output, TimerKind};
    pub use crate::faults::LinkPartition;
    pub use crate::host::{GroupHost, HostOutput};
    pub use crate::ids::{GroupId, Guid, Luid, NodeId, RingId, Tier};
    pub use crate::introspect::{StateDigest, SystemDigest};
    pub use crate::member::{MemberInfo, MemberList, MemberStatus};
    pub use crate::message::{
        ChangeId, ChangeOp, ChangeRecord, Envelope, MhEvent, Msg, MsgLabel, NotifyKind, OpKind,
        QueryId, QueryScope, RingSnapshot, StatusSummary,
    };
    pub use crate::mq::MessageQueue;
    pub use crate::node::{ChildLink, NodeState, NodeStats};
    pub use crate::obs::{
        FlightRecorder, Histogram, LevelHistograms, LevelLatency, NullSink, ObsKind, ObsRecord,
        TraceSink,
    };
    pub use crate::ring::RingRoster;
    pub use crate::substrate::{apply_outputs, OutputSink, Substrate};
    pub use crate::testing::Loopback;
    pub use crate::token::Token;
    pub use crate::topology::{
        HierarchyLayout, HierarchySpec, NodeIdx, NodeIndexer, NodePlacement, RingSpec,
    };
    pub use crate::view::{View, ViewId};
}
