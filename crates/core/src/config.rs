//! Protocol configuration knobs.
//!
//! Every design decision called out in `DESIGN.md` (D1–D4) is a field here so
//! that the ablation benches can toggle it.

use serde::{Deserialize, Serialize};

/// How the token is driven around a logical ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenPolicy {
    /// The token circulates continuously: as soon as a round completes the
    /// next holder starts a fresh round (possibly carrying no membership
    /// ops — an empty round doubles as the ring's failure-detection
    /// heartbeat). This is the paper's `while TRUE` loop in Figure 3.
    Continuous,
    /// The token circulates only while some node in the ring has pending
    /// membership changes; otherwise it parks at the last holder and the
    /// ring is silent. Used by the simulator to attribute a finite message
    /// count to each membership change, and by deployments that prefer
    /// silence over constant heartbeats.
    OnDemand,
}

/// Where membership lists are maintained (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipScheme {
    /// Bottommost Membership Scheme: only APT nodes keep member lists;
    /// queries fan out to every bottommost ring leader.
    Bms,
    /// Topmost Membership Scheme: the topmost ring keeps the global list;
    /// queries are answered in one hop from any topmost node.
    Tms,
    /// Intermediate scheme: every tier at level `<= level` (from the top)
    /// keeps the aggregate list of its subtree. `Ims { level: 0 }` is
    /// equivalent to TMS restricted to the root ring.
    Ims {
        /// Topmost level (0-based from the root ring) that still maintains
        /// aggregated membership.
        level: u8,
    },
}

/// Tuning parameters of the RGB protocol.
///
/// Times are expressed in abstract *ticks*; the substrate (simulator or live
/// runtime) decides how long a tick is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Token drive policy (design decision D2 context).
    pub token_policy: TokenPolicy,
    /// Membership maintenance placement (D4).
    pub scheme: MembershipScheme,
    /// Aggregate successive MQ messages into one token op (D1). Disabling
    /// this is only useful for the ablation bench.
    pub aggregate_mq: bool,
    /// Rotate token holdership to `holder.next` after each round (D2,
    /// Figure 3 lines 21–23). When disabled the same node holds the token
    /// forever (static-owner ablation).
    pub rotate_holder: bool,
    /// Ticks a token sender waits for the implicit forward-progress
    /// acknowledgement before retransmitting.
    pub token_retransmit_timeout: u64,
    /// Number of retransmissions before the successor is declared faulty and
    /// locally excluded from the ring (paper §5.2: "any single node fault in
    /// a logical ring can be detected quickly by Token retransmission
    /// schemes and be locally repaired").
    pub token_retransmit_limit: u32,
    /// Interval between heartbeat rounds under [`TokenPolicy::Continuous`].
    pub token_interval: u64,
    /// Interval between heartbeat emissions (up to the parent, down to the
    /// children). Heartbeats maintain `ParentOK`/`ChildOK` and carry ring
    /// rosters for post-fault re-attachment.
    pub heartbeat_interval: u64,
    /// Ticks without any token sighting before the ring leader regenerates
    /// a lost token (continuous policy only).
    pub token_lost_timeout: u64,
    /// Ticks without hearing from the parent before `ParentOK` is cleared.
    pub parent_timeout: u64,
    /// Ticks without hearing from the child ring before `ChildOK` is
    /// cleared.
    pub child_timeout: u64,
    /// Upper bound on the number of ops aggregated into a single token.
    pub max_ops_per_token: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            token_policy: TokenPolicy::OnDemand,
            scheme: MembershipScheme::Tms,
            aggregate_mq: true,
            rotate_holder: true,
            token_retransmit_timeout: 50,
            token_retransmit_limit: 2,
            token_interval: 100,
            heartbeat_interval: 200,
            token_lost_timeout: 1_500,
            parent_timeout: 1_000,
            child_timeout: 1_000,
            max_ops_per_token: 1_024,
        }
    }
}

impl ProtocolConfig {
    /// Configuration used by the live threaded runtime: continuous token
    /// circulation so RingOK is actively maintained.
    pub fn live() -> Self {
        ProtocolConfig { token_policy: TokenPolicy::Continuous, ..Self::default() }
    }

    /// Configuration matching the paper's analytical model as closely as
    /// possible; used when comparing simulated hop counts to formulas
    /// (1)–(6).
    pub fn paper_model() -> Self {
        ProtocolConfig {
            token_policy: TokenPolicy::OnDemand,
            scheme: MembershipScheme::Tms,
            aggregate_mq: false,
            rotate_holder: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_on_demand_tms() {
        let c = ProtocolConfig::default();
        assert_eq!(c.token_policy, TokenPolicy::OnDemand);
        assert_eq!(c.scheme, MembershipScheme::Tms);
        assert!(c.aggregate_mq);
        assert!(c.rotate_holder);
    }

    #[test]
    fn live_is_continuous() {
        assert_eq!(ProtocolConfig::live().token_policy, TokenPolicy::Continuous);
    }

    #[test]
    fn paper_model_disables_aggregation() {
        let c = ProtocolConfig::paper_model();
        assert!(!c.aggregate_mq);
        assert!(c.rotate_holder);
    }

    #[test]
    fn serde_round_trip() {
        let c = ProtocolConfig::default();
        let json = serde_json_like(&c);
        assert!(json.contains("OnDemand"));
    }

    // serde_json is not among the sanctioned crates; a smoke test through
    // the Debug representation is enough to ensure derive coverage.
    fn serde_json_like(c: &ProtocolConfig) -> String {
        format!("{c:?}")
    }
}
