//! Construction of the ring-based hierarchy (paper §4.1, Figure 2).
//!
//! A *full* hierarchy of height `h` and branching `r` — the configuration
//! analysed in §5 — has one topmost ring (BRT), `r^ℓ` rings at level `ℓ`,
//! and `r` nodes per ring; the bottommost level (APT) therefore holds
//! `n = r^h` access proxies, and the hierarchy contains
//! `tn = Σ_{i=0}^{h-1} r^i` logical rings. Each node of a non-bottom ring
//! *sponsors* exactly one child ring one level down: its `Child` pointer is
//! that ring's current leader, and that ring's leader's `Parent` pointer is
//! the sponsoring node.
//!
//! Irregular hierarchies (rings of different sizes, partially-filled
//! levels) can be described directly with [`HierarchyLayout::custom`].

use crate::error::{Result, RgbError};
use crate::ids::{GroupId, NodeId, RingId, Tier};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Specification of a full (regular) ring-based hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchySpec {
    /// Number of ring levels (`h ≥ 1`). The paper's canonical deployment is
    /// `h = 3` (BRT/AGT/APT).
    pub height: usize,
    /// Nodes per ring and children per node (`r ≥ 2` in the paper's
    /// analysis; `r = 1` is accepted for degenerate test cases).
    pub branching: usize,
}

impl HierarchySpec {
    /// A new spec (validated at [`Self::build`] time).
    pub fn new(height: usize, branching: usize) -> Self {
        HierarchySpec { height, branching }
    }

    /// Validate the spec.
    pub fn validate(&self) -> Result<()> {
        if self.height == 0 {
            return Err(RgbError::InvalidSpec("height must be >= 1"));
        }
        if self.branching == 0 {
            return Err(RgbError::InvalidSpec("branching must be >= 1"));
        }
        // Guard against absurd sizes: n = r^h must fit comfortably.
        let n = (self.branching as u128).checked_pow(self.height as u32);
        match n {
            Some(n) if n <= 16_000_000 => Ok(()),
            _ => Err(RgbError::InvalidSpec("hierarchy too large (r^h > 16M)")),
        }
    }

    /// Number of access proxies `n = r^h`.
    pub fn ap_count(&self) -> usize {
        self.branching.pow(self.height as u32)
    }

    /// Number of logical rings `tn = Σ_{i=0}^{h-1} r^i`.
    pub fn ring_count(&self) -> usize {
        (0..self.height).map(|i| self.branching.pow(i as u32)).sum()
    }

    /// Number of rings at `level` (`r^level`).
    pub fn rings_at_level(&self, level: usize) -> usize {
        debug_assert!(level < self.height);
        self.branching.pow(level as u32)
    }

    /// Total number of network entities `Σ_{i=1}^{h} r^i = r · tn`.
    pub fn node_count(&self) -> usize {
        self.branching * self.ring_count()
    }

    /// Build the concrete layout.
    pub fn build(&self, gid: GroupId) -> Result<HierarchyLayout> {
        self.validate()?;
        let h = self.height;
        let r = self.branching;

        let mut rings: Vec<RingSpec> = Vec::with_capacity(self.ring_count());
        let mut nodes: BTreeMap<NodeId, NodePlacement> = BTreeMap::new();
        let mut next_node: u64 = 0;
        // ring ids are assigned breadth-first: level 0 first
        let mut level_first_ring: Vec<u32> = Vec::with_capacity(h);
        let mut next_ring: u32 = 0;

        for level in 0..h {
            level_first_ring.push(next_ring);
            let tier = Tier::for_level(level, h);
            let count = self.rings_at_level(level);
            for j in 0..count {
                let id = RingId(next_ring);
                next_ring += 1;
                let node_ids: Vec<NodeId> = (0..r)
                    .map(|_| {
                        let nid = NodeId(next_node);
                        next_node += 1;
                        nid
                    })
                    .collect();
                // Parent: the j-th node at level-1 overall sponsors this ring.
                let (parent_ring, parent_node) = if level == 0 {
                    (None, None)
                } else {
                    let pr_index = level_first_ring[level - 1] + (j / r) as u32;
                    let parent_ring_id = RingId(pr_index);
                    let parent_node = rings[pr_index as usize].nodes[j % r];
                    (Some(parent_ring_id), Some(parent_node))
                };
                for &nid in &node_ids {
                    nodes.insert(
                        nid,
                        NodePlacement {
                            id: nid,
                            ring: id,
                            level,
                            tier,
                            parent_node,
                            parent_ring,
                            child_ring: None,
                        },
                    );
                }
                rings.push(RingSpec { id, level, tier, nodes: node_ids, parent_node, parent_ring });
            }
        }

        // Fill child_ring pointers: ring R's parent_node sponsors R.
        let child_links: Vec<(NodeId, RingId)> =
            rings.iter().filter_map(|r| r.parent_node.map(|p| (p, r.id))).collect();
        for (parent, child_ring) in child_links {
            let placement = nodes.get_mut(&parent).expect("parent node exists");
            debug_assert!(placement.child_ring.is_none(), "one child ring per node");
            placement.child_ring = Some(child_ring);
        }

        Ok(HierarchyLayout { gid, spec: Some(*self), rings, nodes })
    }
}

/// One ring in the layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingSpec {
    /// Ring identity.
    pub id: RingId,
    /// Level below the root (0 = topmost).
    pub level: usize,
    /// Tier of the ring.
    pub tier: Tier,
    /// Nodes in ring order.
    pub nodes: Vec<NodeId>,
    /// The node one level up that sponsors this ring (its `Child` pointer
    /// names this ring's leader). `None` for the topmost ring.
    pub parent_node: Option<NodeId>,
    /// The ring the sponsor belongs to.
    pub parent_ring: Option<RingId>,
}

/// Where one network entity sits in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePlacement {
    /// The entity.
    pub id: NodeId,
    /// Its ring.
    pub ring: RingId,
    /// Ring level (0 = topmost).
    pub level: usize,
    /// Tier.
    pub tier: Tier,
    /// Sponsor of the entity's ring (`Parent` pointer target).
    pub parent_node: Option<NodeId>,
    /// Ring of the sponsor.
    pub parent_ring: Option<RingId>,
    /// Ring this entity sponsors one level down, if any.
    pub child_ring: Option<RingId>,
}

/// A concrete ring-based hierarchy layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyLayout {
    /// Group this hierarchy serves.
    pub gid: GroupId,
    /// The regular spec, when built from one.
    pub spec: Option<HierarchySpec>,
    /// All rings, topmost first (breadth-first by level).
    pub rings: Vec<RingSpec>,
    /// Placement of every node.
    pub nodes: BTreeMap<NodeId, NodePlacement>,
}

impl HierarchyLayout {
    /// Build an irregular layout from explicit per-level ring rosters.
    /// `levels[ℓ]` lists the rings at level `ℓ`, each as a node-id list;
    /// ring `j` at level `ℓ` is sponsored by node `j` (counting across all
    /// level-`ℓ-1` rings in order, one sponsorship per node).
    pub fn custom(gid: GroupId, levels: Vec<Vec<Vec<NodeId>>>) -> Result<Self> {
        if levels.is_empty() || levels[0].len() != 1 {
            return Err(RgbError::InvalidSpec("need exactly one topmost ring"));
        }
        let h = levels.len();
        let mut rings: Vec<RingSpec> = Vec::new();
        let mut nodes: BTreeMap<NodeId, NodePlacement> = BTreeMap::new();
        let mut next_ring: u32 = 0;
        let mut level_first_ring: Vec<u32> = Vec::new();
        for (level, ring_lists) in levels.iter().enumerate() {
            level_first_ring.push(next_ring);
            let tier = Tier::for_level(level, h);
            // flatten the previous level's nodes for sponsor assignment
            let sponsors: Vec<NodeId> = if level == 0 {
                Vec::new()
            } else {
                levels[level - 1].iter().flatten().copied().collect()
            };
            for (j, node_ids) in ring_lists.iter().enumerate() {
                if node_ids.is_empty() {
                    return Err(RgbError::InvalidSpec("empty ring in custom layout"));
                }
                let id = RingId(next_ring);
                next_ring += 1;
                let (parent_node, parent_ring) = if level == 0 {
                    (None, None)
                } else {
                    let sponsor = *sponsors
                        .get(j)
                        .ok_or(RgbError::InvalidSpec("more rings than sponsor nodes"))?;
                    let pr = nodes
                        .get(&sponsor)
                        .ok_or(RgbError::InvalidSpec("sponsor not placed"))?
                        .ring;
                    (Some(sponsor), Some(pr))
                };
                for &nid in node_ids {
                    if nodes.contains_key(&nid) {
                        return Err(RgbError::InvalidSpec("node appears in two rings"));
                    }
                    nodes.insert(
                        nid,
                        NodePlacement {
                            id: nid,
                            ring: id,
                            level,
                            tier,
                            parent_node,
                            parent_ring,
                            child_ring: None,
                        },
                    );
                }
                rings.push(RingSpec {
                    id,
                    level,
                    tier,
                    nodes: node_ids.clone(),
                    parent_node,
                    parent_ring,
                });
            }
        }
        let child_links: Vec<(NodeId, RingId)> =
            rings.iter().filter_map(|r| r.parent_node.map(|p| (p, r.id))).collect();
        for (parent, child_ring) in child_links {
            let placement = nodes.get_mut(&parent).expect("parent placed");
            if placement.child_ring.is_some() {
                return Err(RgbError::InvalidSpec("node sponsors two rings"));
            }
            placement.child_ring = Some(child_ring);
        }
        Ok(HierarchyLayout { gid, spec: None, rings, nodes })
    }

    /// Height (number of levels).
    pub fn height(&self) -> usize {
        self.rings.iter().map(|r| r.level + 1).max().unwrap_or(0)
    }

    /// The topmost ring.
    pub fn root_ring(&self) -> &RingSpec {
        &self.rings[0]
    }

    /// Look up a ring.
    pub fn ring(&self, id: RingId) -> Result<&RingSpec> {
        self.rings.get(id.0 as usize).filter(|r| r.id == id).ok_or(RgbError::UnknownRing(id))
    }

    /// Look up a node placement.
    pub fn placement(&self, id: NodeId) -> Result<&NodePlacement> {
        self.nodes.get(&id).ok_or(RgbError::UnknownNode(id))
    }

    /// All rings at a level.
    pub fn rings_at(&self, level: usize) -> impl Iterator<Item = &RingSpec> {
        self.rings.iter().filter(move |r| r.level == level)
    }

    /// All access-proxy (bottom-level) nodes, in id order.
    pub fn aps(&self) -> Vec<NodeId> {
        let bottom = self.height() - 1;
        let mut v: Vec<NodeId> =
            self.rings_at(bottom).flat_map(|r| r.nodes.iter().copied()).collect();
        v.sort();
        v
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total ring count.
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// The chain of rings from `ring` to the root (inclusive), bottom-up:
    /// the "sequence of logical rings from bottom to top" involved in a
    /// membership change (paper §6).
    pub fn ring_chain_to_root(&self, ring: RingId) -> Result<Vec<RingId>> {
        let mut chain = Vec::new();
        let mut cur = self.ring(ring)?;
        loop {
            chain.push(cur.id);
            match cur.parent_ring {
                Some(p) => cur = self.ring(p)?,
                None => break,
            }
        }
        Ok(chain)
    }

    /// Number of hierarchy edges: ring edges (`|ring|` per ring, the logical
    /// ring links) plus one parent-child link per non-root ring. Used by the
    /// scalability experiments.
    pub fn edge_count(&self) -> usize {
        let ring_edges: usize = self.rings.iter().map(|r| r.nodes.len()).sum();
        let tree_edges = self.rings.iter().filter(|r| r.parent_ring.is_some()).count();
        ring_edges + tree_edges
    }

    /// Ring ids in sponsorship-tree depth-first preorder: the root ring
    /// first, then — per root-ring node, in ring order — that node's whole
    /// sponsored subtree before the next node's. Consecutive rings in this
    /// order are therefore close in the hierarchy, which is what makes a
    /// contiguous cut of it a good shard.
    pub fn rings_dfs(&self) -> Vec<RingId> {
        let mut order = Vec::with_capacity(self.rings.len());
        let mut stack = vec![self.root_ring().id];
        while let Some(id) = stack.pop() {
            order.push(id);
            let Ok(ring) = self.ring(id) else { continue };
            // Push child subtrees in reverse ring order so they pop (and
            // appear) in ring order.
            for &node in ring.nodes.iter().rev() {
                if let Some(child) = self.nodes.get(&node).and_then(|p| p.child_ring) {
                    stack.push(child);
                }
            }
        }
        debug_assert_eq!(order.len(), self.rings.len(), "DFS must visit every ring");
        order
    }

    /// Hierarchy-aware partition of the layout's rings into at most
    /// `shards` groups of roughly equal node count.
    ///
    /// Rings are never split (so intra-ring traffic — the bulk of the
    /// token protocol — stays group-local), and groups are contiguous cuts
    /// of the [`HierarchyLayout::rings_dfs`] order (so a sponsored subtree
    /// tends to share its sponsor's group, keeping most parent–child
    /// traffic local too). The returned vector always has exactly `shards`
    /// entries; trailing groups may be empty when the layout has fewer
    /// rings than requested shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn partition_rings(&self, shards: usize) -> Vec<Vec<RingId>> {
        assert!(shards > 0, "need at least one shard");
        let mut groups: Vec<Vec<RingId>> = vec![Vec::new(); shards];
        let total: usize = self.rings.iter().map(|r| r.nodes.len()).sum();
        let mut remaining_nodes = total;
        let mut group = 0usize;
        let mut group_nodes = 0usize;
        for id in self.rings_dfs() {
            let size = self.ring(id).map(|r| r.nodes.len()).unwrap_or(0);
            // Close the group once it reached its fair share of what is
            // left — the classic streaming balance heuristic.
            let remaining_groups = shards - group;
            let target = remaining_nodes.div_ceil(remaining_groups);
            if group_nodes > 0 && group_nodes + size > target && group + 1 < shards {
                group += 1;
                group_nodes = 0;
            }
            groups[group].push(id);
            group_nodes += size;
            remaining_nodes -= size;
        }
        groups
    }

    /// Build the dense-index arena over this layout (see [`NodeIndexer`]).
    pub fn indexer(&self) -> NodeIndexer {
        NodeIndexer::new(self)
    }

    /// Dense index of `id` (its rank in id order), without a prebuilt
    /// [`NodeIndexer`]. Convenience for cold paths; hot loops should build
    /// the indexer once and use [`NodeIndexer::index_of`].
    pub fn index_of(&self, id: NodeId) -> Option<NodeIdx> {
        self.nodes.contains_key(&id).then(|| {
            let rank = self.nodes.range(..id).count();
            NodeIdx(rank as u32)
        })
    }
}

/// Dense per-layout node handle: the rank of a [`NodeId`] in id order.
///
/// Simulation state (`nodes`, `crashed`, `delivered`, timer slots) lives in
/// plain `Vec`s indexed by `NodeIdx`, so the event dispatch loop performs
/// array loads instead of `BTreeMap` walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The index as a `usize` (array subscript).
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional `NodeId` ↔ [`NodeIdx`] map for one layout.
///
/// Spec-built layouts number their nodes densely (`0..n`), so the common
/// case is a direct-mapped O(1) translation table; irregular
/// [`HierarchyLayout::custom`] layouts with sparse ids fall back to a
/// direct map over `0..=max_id` when that is affordably small, and to
/// binary search otherwise. Either way the indexer is immutable and cheap
/// to consult from the hot path.
#[derive(Debug, Clone)]
pub struct NodeIndexer {
    /// idx → id, ascending (so `NodeIdx` order is `NodeId` order).
    ids: Vec<NodeId>,
    /// id → idx + 1 (0 = absent) when direct mapping is affordable.
    direct: Vec<u32>,
}

impl NodeIndexer {
    /// Sparse layouts get a direct map only while it stays within a small
    /// constant factor of the node count.
    const DIRECT_MAP_SLACK: usize = 4;

    /// Build the arena over `layout`.
    pub fn new(layout: &HierarchyLayout) -> Self {
        let ids: Vec<NodeId> = layout.nodes.keys().copied().collect();
        let max_id = ids.last().map(|n| n.0 as usize).unwrap_or(0);
        let direct = if ids.is_empty() || max_id < Self::DIRECT_MAP_SLACK * ids.len() + 64 {
            let mut table = vec![0u32; max_id + 2];
            for (idx, id) in ids.iter().enumerate() {
                table[id.0 as usize] = idx as u32 + 1;
            }
            table
        } else {
            Vec::new()
        };
        NodeIndexer { ids, direct }
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dense index of `id`, or `None` for nodes outside the layout.
    #[inline]
    pub fn index_of(&self, id: NodeId) -> Option<NodeIdx> {
        if self.direct.is_empty() {
            self.ids.binary_search(&id).ok().map(|i| NodeIdx(i as u32))
        } else {
            match self.direct.get(id.0 as usize) {
                Some(&slot) if slot != 0 => Some(NodeIdx(slot - 1)),
                _ => None,
            }
        }
    }

    /// The id at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for this arena.
    #[inline]
    pub fn id_of(&self, idx: NodeIdx) -> NodeId {
        self.ids[idx.as_usize()]
    }

    /// Dense iteration: every `(NodeIdx, NodeId)` pair in index order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeIdx, NodeId)> + '_ {
        self.ids.iter().enumerate().map(|(i, &id)| (NodeIdx(i as u32), id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_counts_match_paper_formulas() {
        // Table I ring-based rows: (n, h, r)
        for &(n, h, r) in &[
            (25usize, 2usize, 5usize),
            (125, 3, 5),
            (625, 4, 5),
            (100, 2, 10),
            (1000, 3, 10),
            (10000, 4, 10),
        ] {
            let s = HierarchySpec::new(h, r);
            assert_eq!(s.ap_count(), n, "n = r^h for h={h} r={r}");
            let tn: usize = (0..h).map(|i| r.pow(i as u32)).sum();
            assert_eq!(s.ring_count(), tn);
            assert_eq!(s.node_count(), r * tn);
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(HierarchySpec::new(0, 5).validate().is_err());
        assert!(HierarchySpec::new(3, 0).validate().is_err());
        assert!(HierarchySpec::new(30, 10).validate().is_err());
        assert!(HierarchySpec::new(3, 5).validate().is_ok());
    }

    #[test]
    fn build_full_h3_r3() {
        let layout = HierarchySpec::new(3, 3).build(GroupId(1)).unwrap();
        assert_eq!(layout.ring_count(), 1 + 3 + 9);
        assert_eq!(layout.node_count(), 3 * 13);
        assert_eq!(layout.aps().len(), 27);
        assert_eq!(layout.height(), 3);
        // root ring has no parent
        assert!(layout.root_ring().parent_node.is_none());
        // every non-root ring has a sponsor in the level above
        for ring in &layout.rings[1..] {
            let sponsor = ring.parent_node.unwrap();
            let sp = layout.placement(sponsor).unwrap();
            assert_eq!(sp.level + 1, ring.level);
            assert_eq!(sp.child_ring, Some(ring.id));
        }
    }

    #[test]
    fn every_non_bottom_node_sponsors_exactly_one_ring() {
        let layout = HierarchySpec::new(3, 4).build(GroupId(1)).unwrap();
        let bottom = layout.height() - 1;
        for p in layout.nodes.values() {
            if p.level < bottom {
                assert!(p.child_ring.is_some(), "node {} at level {} must sponsor", p.id, p.level);
            } else {
                assert!(p.child_ring.is_none());
            }
        }
    }

    #[test]
    fn tiers_assigned_by_level() {
        let layout = HierarchySpec::new(3, 2).build(GroupId(1)).unwrap();
        assert_eq!(layout.rings_at(0).next().unwrap().tier, Tier::BorderRouter);
        assert_eq!(layout.rings_at(1).next().unwrap().tier, Tier::AccessGateway);
        assert_eq!(layout.rings_at(2).next().unwrap().tier, Tier::AccessProxy);
    }

    #[test]
    fn ring_chain_walks_to_root() {
        let layout = HierarchySpec::new(3, 2).build(GroupId(1)).unwrap();
        let bottom_ring = layout.rings_at(2).next().unwrap().id;
        let chain = layout.ring_chain_to_root(bottom_ring).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(*chain.last().unwrap(), layout.root_ring().id);
        // chain levels strictly decrease
        for w in chain.windows(2) {
            let a = layout.ring(w[0]).unwrap().level;
            let b = layout.ring(w[1]).unwrap().level;
            assert_eq!(a, b + 1);
        }
    }

    #[test]
    fn edge_count_full() {
        // h=2, r=2: rings {root(2 nodes), 2 children(2 nodes each)} →
        // ring edges 6, tree edges 2.
        let layout = HierarchySpec::new(2, 2).build(GroupId(1)).unwrap();
        assert_eq!(layout.edge_count(), 8);
    }

    #[test]
    fn custom_layout_irregular() {
        // root ring {0,1}; node 0 sponsors {10,11,12}; node 1 sponsors {20}
        let layout = HierarchyLayout::custom(
            GroupId(1),
            vec![
                vec![vec![NodeId(0), NodeId(1)]],
                vec![vec![NodeId(10), NodeId(11), NodeId(12)], vec![NodeId(20)]],
            ],
        )
        .unwrap();
        assert_eq!(layout.ring_count(), 3);
        assert_eq!(layout.placement(NodeId(0)).unwrap().child_ring, Some(RingId(1)));
        assert_eq!(layout.placement(NodeId(1)).unwrap().child_ring, Some(RingId(2)));
        assert_eq!(layout.placement(NodeId(12)).unwrap().parent_node, Some(NodeId(0)));
        assert_eq!(layout.aps(), vec![NodeId(10), NodeId(11), NodeId(12), NodeId(20)]);
    }

    #[test]
    fn custom_layout_rejects_duplicates_and_orphans() {
        // duplicate node
        assert!(HierarchyLayout::custom(
            GroupId(1),
            vec![vec![vec![NodeId(0)]], vec![vec![NodeId(0)]],],
        )
        .is_err());
        // two topmost rings
        assert!(HierarchyLayout::custom(GroupId(1), vec![vec![vec![NodeId(0)], vec![NodeId(1)]]],)
            .is_err());
        // more rings than sponsors
        assert!(HierarchyLayout::custom(
            GroupId(1),
            vec![vec![vec![NodeId(0)]], vec![vec![NodeId(1)], vec![NodeId(2)]],],
        )
        .is_err());
    }

    #[test]
    fn rings_dfs_visits_every_ring_subtree_contiguously() {
        let layout = HierarchySpec::new(3, 3).build(GroupId(1)).unwrap();
        let order = layout.rings_dfs();
        assert_eq!(order.len(), layout.ring_count());
        let mut seen = std::collections::BTreeSet::new();
        assert!(order.iter().all(|r| seen.insert(*r)), "no ring visited twice");
        assert_eq!(order[0], layout.root_ring().id);
        // Preorder: every non-root ring appears after its parent ring.
        let pos = |id: RingId| order.iter().position(|&r| r == id).unwrap();
        for ring in &layout.rings[1..] {
            assert!(pos(ring.parent_ring.unwrap()) < pos(ring.id));
        }
    }

    #[test]
    fn partition_rings_is_whole_ring_and_balanced() {
        let layout = HierarchySpec::new(3, 4).build(GroupId(1)).unwrap();
        for shards in [1usize, 2, 3, 4, 8] {
            let groups = layout.partition_rings(shards);
            assert_eq!(groups.len(), shards);
            // Every ring appears in exactly one group.
            let mut all: Vec<RingId> = groups.iter().flatten().copied().collect();
            all.sort();
            let mut expect: Vec<RingId> = layout.rings.iter().map(|r| r.id).collect();
            expect.sort();
            assert_eq!(all, expect, "{shards} shards");
            // Balance: no group holds more than twice its fair share.
            let total = layout.node_count();
            for g in &groups {
                let nodes: usize = g.iter().map(|&r| layout.ring(r).unwrap().nodes.len()).sum();
                assert!(
                    nodes <= total.div_ceil(shards) * 2,
                    "{shards} shards: group of {nodes}/{total} nodes"
                );
            }
        }
    }

    #[test]
    fn partition_rings_with_more_shards_than_rings_leaves_empty_tails() {
        let layout = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
        let groups = layout.partition_rings(8);
        assert_eq!(groups.len(), 8);
        assert_eq!(groups[0], vec![layout.root_ring().id]);
        assert!(groups[1..].iter().all(|g| g.is_empty()));
    }

    #[test]
    fn node_ids_are_dense_and_unique() {
        let layout = HierarchySpec::new(3, 3).build(GroupId(1)).unwrap();
        let ids: Vec<u64> = layout.nodes.keys().map(|n| n.0).collect();
        let expect: Vec<u64> = (0..layout.node_count() as u64).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn indexer_round_trips_dense_layout() {
        let layout = HierarchySpec::new(3, 3).build(GroupId(1)).unwrap();
        let idx = layout.indexer();
        assert_eq!(idx.len(), layout.node_count());
        for (i, id) in idx.iter() {
            assert_eq!(idx.index_of(id), Some(i));
            assert_eq!(idx.id_of(i), id);
            assert_eq!(layout.index_of(id), Some(i));
        }
        // Dense spec layouts: idx == id.
        assert_eq!(idx.index_of(NodeId(7)), Some(NodeIdx(7)));
        assert_eq!(idx.index_of(NodeId(9_999)), None);
        assert_eq!(layout.index_of(NodeId(9_999)), None);
    }

    #[test]
    fn indexer_handles_sparse_custom_layouts() {
        // Sparse ids force either the slack-bounded direct map or binary
        // search; both must agree with rank-in-id-order semantics.
        let layout = HierarchyLayout::custom(
            GroupId(1),
            vec![
                vec![vec![NodeId(5), NodeId(900_000)]],
                vec![vec![NodeId(17)], vec![NodeId(23), NodeId(1_000_000)]],
            ],
        )
        .unwrap();
        let idx = layout.indexer();
        assert_eq!(idx.len(), 5);
        let expect = [NodeId(5), NodeId(17), NodeId(23), NodeId(900_000), NodeId(1_000_000)];
        for (rank, &id) in expect.iter().enumerate() {
            assert_eq!(idx.index_of(id), Some(NodeIdx(rank as u32)), "rank of {id}");
            assert_eq!(idx.id_of(NodeIdx(rank as u32)), id);
            assert_eq!(layout.index_of(id), Some(NodeIdx(rank as u32)));
        }
        assert_eq!(idx.index_of(NodeId(6)), None);
        assert_eq!(idx.index_of(NodeId(2_000_000)), None);
    }
}
