//! Oracle-facing introspection: compact, substrate-independent digests of
//! protocol state.
//!
//! Invariant checkers (the `rgb-sim` explorer's oracles, differential
//! tests) must observe a running system without reaching into
//! substrate-specific state. A [`StateDigest`] is the neutral answer: the
//! handful of facts about one [`NodeState`] that the paper's correctness
//! claims (§4.3 view consistency, §5.2 Function-Well semantics) are stated
//! over. Both substrates can produce one — the simulator straight from its
//! node arena, the live runtime from its snapshot channel — so the same
//! oracle code judges either world.

use crate::ids::{Guid, NodeId, RingId};
use crate::member::MemberStatus;
use crate::node::NodeState;
use std::collections::BTreeSet;

/// The oracle-visible facts about one network entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDigest {
    /// The node.
    pub node: NodeId,
    /// Its logical ring.
    pub ring: RingId,
    /// Ring view epoch (one loaded token round = one epoch, §4.3).
    pub epoch: u64,
    /// Operational GUIDs of `ListOfRingMembers` (the view this node would
    /// report).
    pub members: BTreeSet<Guid>,
    /// Current ring roster, in ring order.
    pub roster: Vec<NodeId>,
    /// Whether the token is parked here.
    pub holds_token: bool,
    /// Whether a forwarded token is awaiting acknowledgement.
    pub has_inflight: bool,
    /// Locally pending changes: queued-but-unridden records plus
    /// originated-but-unacknowledged ones. A node with pending changes is
    /// *knowingly ahead of (or behind) ring agreement* — e.g. a fast
    /// handoff admitted into the local view before its round (§1) — so
    /// strict view-equality oracles compare only nodes with none.
    pub pending_changes: usize,
    /// `RingOK` flag.
    pub ring_ok: bool,
    /// Successors excluded by local repair so far.
    pub exclusions: u64,
    /// Whether this node maintains member lists under the configured
    /// membership scheme (§4.4).
    pub stores_members: bool,
}

impl StateDigest {
    /// Whether `other` is on this node's current roster.
    pub fn rosters(&self, other: NodeId) -> bool {
        self.roster.contains(&other)
    }
}

/// A point-in-time digest of a whole running system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemDigest {
    /// Observation time (substrate ticks; live substrates report their own
    /// tick estimate).
    pub now: u64,
    /// One digest per *alive* node, in id order.
    pub nodes: Vec<StateDigest>,
    /// Nodes crashed so far.
    pub crashed: BTreeSet<NodeId>,
    /// Whether the substrate considers the system settled — no scheduled
    /// disruptions or protocol exchanges are pending that could still
    /// change membership state. Quiescence-gated invariants only fire when
    /// this is set.
    pub settled: bool,
}

impl SystemDigest {
    /// Alive digests grouped by ring, in ring-id order.
    pub fn by_ring(&self) -> Vec<(RingId, Vec<&StateDigest>)> {
        let mut rings: Vec<(RingId, Vec<&StateDigest>)> = Vec::new();
        for d in &self.nodes {
            match rings.iter_mut().find(|(r, _)| *r == d.ring) {
                Some((_, v)) => v.push(d),
                None => rings.push((d.ring, vec![d])),
            }
        }
        rings.sort_by_key(|(r, _)| *r);
        rings
    }

    /// Compare the *membership views* of two digests — each alive node's
    /// operational members plus the crashed set — ignoring every
    /// timing-dependent field (epochs, token position, pending queues,
    /// `now`). This is the parity a wall-clock substrate can actually
    /// promise against the discrete-event simulator: thread interleavings
    /// legitimately shift how many token rounds each ring ran, but the
    /// *converged membership* must be identical. Returns a human-readable
    /// description of the first divergences (at most eight lines), or
    /// `None` when the views agree.
    pub fn view_divergence(&self, other: &SystemDigest) -> Option<String> {
        const MAX_LINES: usize = 8;
        let mut lines: Vec<String> = Vec::new();
        if self.crashed != other.crashed {
            lines.push(format!("crashed sets differ: {:?} vs {:?}", self.crashed, other.crashed));
        }
        let views = |d: &SystemDigest| -> std::collections::BTreeMap<NodeId, BTreeSet<Guid>> {
            d.nodes.iter().map(|n| (n.node, n.members.clone())).collect()
        };
        let a = views(self);
        let b = views(other);
        for (node, view) in &a {
            if lines.len() >= MAX_LINES {
                break;
            }
            match b.get(node) {
                None => lines.push(format!("node {node}: present vs absent")),
                Some(v) if v != view => {
                    lines.push(format!("node {node}: members {view:?} vs {v:?}"));
                }
                Some(_) => {}
            }
        }
        for node in b.keys() {
            if lines.len() >= MAX_LINES {
                break;
            }
            if !a.contains_key(node) {
                lines.push(format!("node {node}: absent vs present"));
            }
        }
        (!lines.is_empty()).then(|| lines.join("\n"))
    }

    /// Order-independent fingerprint of every node's `(epoch, members)` —
    /// two digests with equal hashes hold identical views everywhere. Used
    /// by the explorer's stability (settle) detector.
    pub fn views_fingerprint(&self) -> u64 {
        // FNV-1a over a canonical byte walk; no dependency on std's
        // RandomState, so fingerprints are stable across runs/platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for d in &self.nodes {
            eat(d.node.0);
            eat(d.epoch);
            eat(d.members.len() as u64);
            for g in &d.members {
                eat(g.0);
            }
            eat(d.roster.len() as u64);
        }
        h
    }
}

impl NodeState {
    /// Produce the oracle-facing digest of this node's state.
    pub fn digest(&self) -> StateDigest {
        StateDigest {
            node: self.id,
            ring: self.ring_id(),
            epoch: self.epoch,
            members: self
                .ring_members
                .iter()
                .filter(|m| m.status == MemberStatus::Operational)
                .map(|m| m.guid)
                .collect(),
            roster: self.roster.nodes().to_vec(),
            holds_token: self.holds_token(),
            has_inflight: self.inflight.is_some(),
            pending_changes: self.mq.len() + self.awaiting_ack.len(),
            ring_ok: self.ring_ok,
            exclusions: self.stats.exclusions,
            stores_members: self.is_store_level(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::ids::GroupId;
    use crate::topology::HierarchySpec;

    fn digest_of(id: u64) -> StateDigest {
        let layout = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
        NodeState::from_layout(&layout, NodeId(id), ProtocolConfig::default()).unwrap().digest()
    }

    #[test]
    fn digest_reflects_fresh_state() {
        let d = digest_of(0);
        assert_eq!(d.node, NodeId(0));
        assert_eq!(d.epoch, 0);
        assert!(d.members.is_empty());
        assert_eq!(d.roster.len(), 3);
        assert!(d.rosters(NodeId(1)));
        assert!(!d.rosters(NodeId(999)));
        assert!(!d.holds_token, "token parks only at boot");
        assert!(!d.has_inflight);
        assert_eq!(d.pending_changes, 0);
        assert!(d.ring_ok);
        assert_eq!(d.exclusions, 0);
        assert!(d.stores_members, "root ring stores under TMS");
    }

    #[test]
    fn by_ring_groups_and_orders() {
        let sys = SystemDigest {
            now: 0,
            nodes: vec![digest_of(0), digest_of(1), digest_of(2)],
            crashed: BTreeSet::new(),
            settled: true,
        };
        let rings = sys.by_ring();
        assert_eq!(rings.len(), 1);
        assert_eq!(rings[0].1.len(), 3);
    }

    #[test]
    fn view_divergence_ignores_timing_but_not_membership() {
        let sys = |epoch: u64, members: &[u64]| SystemDigest {
            now: 0,
            nodes: vec![StateDigest {
                epoch,
                members: members.iter().copied().map(Guid).collect(),
                ..digest_of(0)
            }],
            crashed: BTreeSet::new(),
            settled: true,
        };
        // Different epochs (and now), same views: no divergence.
        let mut b = sys(9, &[1, 2]);
        b.now = 777;
        assert_eq!(sys(2, &[1, 2]).view_divergence(&b), None);
        // Different members at one node: named in the report.
        let report = sys(2, &[1, 2]).view_divergence(&sys(2, &[1, 3])).expect("diverges");
        assert!(report.contains("n0"), "offending node is named: {report}");
        // Different crashed sets diverge even with equal views.
        let mut crashed = sys(2, &[1]);
        crashed.crashed.insert(NodeId(5));
        assert!(sys(2, &[1]).view_divergence(&crashed).is_some());
        // A node present on one side only diverges.
        let mut missing = sys(2, &[1]);
        missing.nodes.clear();
        let report = sys(2, &[1]).view_divergence(&missing).expect("diverges");
        assert!(report.contains("present vs absent"));
    }

    #[test]
    fn fingerprint_tracks_view_changes() {
        let mut sys = SystemDigest {
            now: 0,
            nodes: vec![digest_of(0)],
            crashed: BTreeSet::new(),
            settled: false,
        };
        let before = sys.views_fingerprint();
        assert_eq!(before, sys.views_fingerprint(), "fingerprint is pure");
        sys.nodes[0].members.insert(Guid(7));
        assert_ne!(before, sys.views_fingerprint());
        sys.nodes[0].members.remove(&Guid(7));
        sys.nodes[0].epoch += 1;
        assert_ne!(before, sys.views_fingerprint());
    }
}
