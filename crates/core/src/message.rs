//! Membership-change operations and inter-entity messages.
//!
//! The paper's token carries a `TypeOfAggregatedOperations` covering
//! Member-Join/Leave/Handoff/Failure, NE-Join/Leave/Failure,
//! Notification-to-Parent/Child and Holder-Acknowledgement (§4.2). We model
//! the member/NE operations as [`ChangeOp`] values wrapped in
//! [`ChangeRecord`]s (which add provenance for acknowledgement routing and
//! measurement), and the notifications/acknowledgements as [`Msg`] variants
//! exchanged between network entities.

use crate::ids::{GroupId, Guid, Luid, NodeId, RingId};
use crate::member::{MemberInfo, MemberList};
use crate::token::Token;
use serde::{Deserialize, Serialize};

/// Unique identity of one membership change, assigned by the NE that first
/// queues it. Used for Holder-Acknowledgement routing and for attributing
/// message hops to changes in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChangeId {
    /// NE that coined the id.
    pub origin: NodeId,
    /// Sequence number local to the origin.
    pub seq: u64,
}

/// A single membership-change operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeOp {
    /// A mobile host joined the group at `info.ap` (Member-Join).
    MemberJoin {
        /// Full record of the joining member.
        info: MemberInfo,
    },
    /// A mobile host voluntarily left the group (Member-Leave).
    MemberLeave {
        /// The leaving member.
        guid: Guid,
    },
    /// A mobile host moved between access proxies (Member-Handoff).
    MemberHandoff {
        /// The moving member.
        guid: Guid,
        /// Fresh locally-unique id at the new proxy.
        luid: Luid,
        /// Old access proxy (if known to the issuer).
        from: Option<NodeId>,
        /// New access proxy.
        to: NodeId,
    },
    /// A mobile host ceased to be a member due to failure (Member-Failure).
    MemberFailure {
        /// The failed member.
        guid: Guid,
    },
    /// A mobile host disconnected temporarily or voluntarily (§1): it stays
    /// on the membership list with `Disconnected` status and may resume at
    /// any cell later.
    MemberDisconnect {
        /// The disconnected member.
        guid: Guid,
    },
    /// A network entity joined a logical ring (NE-Join).
    NeJoin {
        /// The joining entity.
        node: NodeId,
        /// The ring it joined.
        ring: RingId,
    },
    /// A network entity voluntarily left its logical ring (NE-Leave).
    NeLeave {
        /// The leaving entity.
        node: NodeId,
        /// The ring it left.
        ring: RingId,
    },
    /// A network entity was detected faulty and excluded from its ring
    /// (NE-Failure, the §5.2 local-repair action).
    NeFailure {
        /// The excluded entity.
        node: NodeId,
        /// The ring it was excluded from.
        ring: RingId,
    },
    /// The leader of a ring changed (consequence of NE events; keeps the
    /// parent's `Child` pointer and the ring's `Leader` fields coherent).
    LeaderChange {
        /// The ring whose leadership changed.
        ring: RingId,
        /// The new leader.
        leader: NodeId,
    },
}

impl ChangeOp {
    /// The member this operation concerns, if it is a member-level op.
    pub fn member(&self) -> Option<Guid> {
        match self {
            ChangeOp::MemberJoin { info } => Some(info.guid),
            ChangeOp::MemberLeave { guid }
            | ChangeOp::MemberHandoff { guid, .. }
            | ChangeOp::MemberFailure { guid }
            | ChangeOp::MemberDisconnect { guid } => Some(*guid),
            _ => None,
        }
    }

    /// Whether this op must propagate up the hierarchy (member and NE events
    /// do; LeaderChange is disseminated ring-locally and to the parent only).
    pub fn propagates_up(&self) -> bool {
        !matches!(self, ChangeOp::LeaderChange { .. })
    }

    /// Short tag for logs and metrics.
    pub fn kind(&self) -> OpKind {
        match self {
            ChangeOp::MemberJoin { .. } => OpKind::MemberJoin,
            ChangeOp::MemberLeave { .. } => OpKind::MemberLeave,
            ChangeOp::MemberHandoff { .. } => OpKind::MemberHandoff,
            ChangeOp::MemberFailure { .. } => OpKind::MemberFailure,
            ChangeOp::MemberDisconnect { .. } => OpKind::MemberDisconnect,
            ChangeOp::NeJoin { .. } => OpKind::NeJoin,
            ChangeOp::NeLeave { .. } => OpKind::NeLeave,
            ChangeOp::NeFailure { .. } => OpKind::NeFailure,
            ChangeOp::LeaderChange { .. } => OpKind::LeaderChange,
        }
    }
}

/// Discriminant-only view of [`ChangeOp`] for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpKind {
    MemberJoin,
    MemberLeave,
    MemberHandoff,
    MemberFailure,
    MemberDisconnect,
    NeJoin,
    NeLeave,
    NeFailure,
    LeaderChange,
}

impl OpKind {
    /// All kinds, for table headers.
    pub const ALL: [OpKind; 9] = [
        OpKind::MemberJoin,
        OpKind::MemberLeave,
        OpKind::MemberHandoff,
        OpKind::MemberFailure,
        OpKind::MemberDisconnect,
        OpKind::NeJoin,
        OpKind::NeLeave,
        OpKind::NeFailure,
        OpKind::LeaderChange,
    ];
}

/// A change operation plus the provenance needed to route acknowledgements
/// and prevent up/down echo loops.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeRecord {
    /// Unique id of the change.
    pub id: ChangeId,
    /// NE whose message queue first held the record in the *current* ring
    /// (receives the Holder-Acknowledgement for it).
    pub origin: NodeId,
    /// Ring in which the change was originally generated (the bottommost
    /// ring for member events).
    pub origin_ring: RingId,
    /// If the record entered the current ring from below, the ring it came
    /// from (so sponsors of that ring do not echo it back down the same
    /// subtree).
    pub from_child_ring: Option<RingId>,
    /// True once the record is travelling *down* the hierarchy
    /// (Notification-to-Child). Descending records are never forwarded up
    /// again, which (together with `from_child_of`) guarantees each ring
    /// executes a change exactly once.
    pub descending: bool,
    /// The operation itself.
    pub op: ChangeOp,
}

impl ChangeRecord {
    /// A record freshly generated at `origin` in `origin_ring`.
    pub fn new(id: ChangeId, origin: NodeId, origin_ring: RingId, op: ChangeOp) -> Self {
        ChangeRecord { id, origin, origin_ring, from_child_ring: None, descending: false, op }
    }

    /// Re-home the record for propagation into the parent ring: `parent` is
    /// the node whose MQ receives it there (Notification-to-Parent), and
    /// `via_ring` is the ring the record is leaving.
    pub fn for_parent_ring(&self, parent: NodeId, via_ring: RingId) -> ChangeRecord {
        ChangeRecord {
            id: self.id,
            origin: parent,
            origin_ring: self.origin_ring,
            from_child_ring: Some(via_ring),
            descending: false,
            op: self.op.clone(),
        }
    }

    /// Re-home the record for propagation into a child ring whose leader is
    /// `child_leader` (Notification-to-Child).
    pub fn for_child_ring(&self, child_leader: NodeId) -> ChangeRecord {
        ChangeRecord {
            id: self.id,
            origin: child_leader,
            origin_ring: self.origin_ring,
            from_child_ring: None,
            descending: true,
            op: self.op.clone(),
        }
    }
}

/// Direction tag of an MQ insertion (paper's Notification-to-Parent /
/// Notification-to-Child plus locally generated events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NotifyKind {
    /// Generated at this NE (e.g. from an attached MH, or by the failure
    /// detector).
    Local,
    /// Notification-to-Parent: sent by a ring leader to its parent node.
    ToParent,
    /// Notification-to-Child: sent by a node to the leader of its child
    /// ring.
    ToChild,
}

/// Hierarchy-status summary carried by heartbeats (maintains `ParentOK` /
/// `ChildOK` and the cached rosters used for re-attachment after faults).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusSummary {
    /// The sender's ring.
    pub ring: RingId,
    /// Whether the sender's ring currently functions well.
    pub ring_ok: bool,
    /// Current leader of the sender's ring.
    pub leader: NodeId,
    /// Current roster of the sender's ring, in ring order.
    pub roster: Vec<NodeId>,
}

/// Scope of a membership query (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryScope {
    /// Global membership of the group.
    Global,
    /// Membership under one ring (used internally by BMS fan-out).
    Ring(RingId),
}

/// Unique id of an in-flight query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId {
    /// NE that accepted the query from the application.
    pub origin: NodeId,
    /// Sequence number local to the origin.
    pub seq: u64,
}

/// Messages exchanged between network entities (and from mobile hosts to
/// their access proxies).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Msg {
    /// The ring token, forwarded along the logical ring.
    Token(Token),
    /// Explicit forward-progress acknowledgement for a token transfer;
    /// cancels the sender's retransmission timer (§5.2 token-retransmission
    /// fault detection).
    TokenAck {
        /// Ring the token belongs to.
        ring: RingId,
        /// Round number being acknowledged.
        seq: u64,
    },
    /// Insert records into the recipient's message queue (local events,
    /// Notification-to-Parent, Notification-to-Child).
    MqInsert {
        /// Direction of the notification.
        kind: NotifyKind,
        /// Records to queue.
        records: Vec<ChangeRecord>,
    },
    /// Holder-Acknowledgement: after the token completes one round, the
    /// holder confirms the agreed changes to the NEs that queued them.
    HolderAck {
        /// Ring in which agreement was reached.
        ring: RingId,
        /// Round number that carried the changes.
        seq: u64,
        /// The agreed changes.
        change_ids: Vec<ChangeId>,
    },
    /// Heartbeat from a ring leader up to its parent node.
    HeartbeatUp(StatusSummary),
    /// Heartbeat from a parent node down to the leader of its child ring.
    HeartbeatDown(StatusSummary),
    /// Request from an orphaned ring leader to a (hoped alive) node of the
    /// old parent ring asking it to adopt the sender's ring.
    AttachChild {
        /// The orphaned ring.
        ring: RingId,
        /// Its current leader (the sender).
        leader: NodeId,
    },
    /// Positive answer to [`Msg::AttachChild`].
    AttachAccepted {
        /// The adopting node.
        parent: NodeId,
        /// The adopting node's ring.
        parent_ring: RingId,
    },
    /// A membership query entering the hierarchy or being routed within it.
    QueryRequest {
        /// Query identity.
        qid: QueryId,
        /// Node the final aggregated response must reach.
        reply_to: NodeId,
        /// What is being asked.
        scope: QueryScope,
        /// Target level of the fan-out (`None` while the request is still
        /// ascending towards the root ring).
        fanout_level: Option<u8>,
        /// True once the request has been spread around the current ring
        /// (spread copies must not be re-spread, only forwarded down).
        spread: bool,
    },
    /// A (partial) response travelling back to the query origin.
    QueryResponse {
        /// Query identity.
        qid: QueryId,
        /// Members known to the responding subtree.
        members: MemberList,
        /// How many partial responses the origin should expect in total
        /// (every responder reports the same total).
        expected: u32,
    },
    /// A standalone network entity asks a contact node to admit it into the
    /// contact's logical ring (§4.3: "If any Access Proxy Ring satisfies
    /// some locality/proximity criterion, then the AP joins the APR").
    JoinRing {
        /// The joining entity.
        node: NodeId,
    },
    /// Membership-Merge (§6 future work): the leader of one ring proposes
    /// merging its entire ring into the recipient's ring, carrying its
    /// roster and stored membership.
    MergeRings {
        /// The ring being absorbed.
        ring: RingId,
        /// Its nodes, in ring order.
        roster: Vec<NodeId>,
        /// Its stored membership.
        members: MemberList,
    },
    /// Ring-state snapshot sent to an admitted joiner so it can operate:
    /// roster (with the joiner appended, matching the deterministic NE-Join
    /// application), stored membership, epoch and hierarchy position.
    RingSync(Box<RingSnapshot>),
    /// Message from a mobile host to its access proxy carrying a membership
    /// event. Mobile hosts are not NEs; this is the single message type they
    /// emit, and it exists so substrates can count the MH→AP hop.
    FromMh {
        /// The event.
        event: MhEvent,
    },
}

/// Snapshot transferred to a newly admitted ring member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingSnapshot {
    /// The ring being joined.
    pub ring: RingId,
    /// Ring level below the root.
    pub level: u8,
    /// Hierarchy height.
    pub height: u8,
    /// Post-join roster, in ring order.
    pub roster: Vec<NodeId>,
    /// The ring's stored membership.
    pub members: MemberList,
    /// Current view epoch.
    pub epoch: u64,
    /// The ring's current token round number; the joiner starts accepting
    /// from the round in flight (which carries its own NE-Join).
    pub last_token_seq: u64,
    /// The ring's sponsor, if any.
    pub parent: Option<NodeId>,
    /// The sponsor's ring.
    pub parent_ring: Option<RingId>,
    /// Rings per level (query fan-out accounting).
    pub level_ring_counts: Vec<u32>,
}

/// Dense message-class identifier: one slot per [`Msg::label`] string.
///
/// Hot counters (the simulator's per-label send metrics) index fixed
/// arrays by `MsgLabel as usize` instead of walking a string-keyed map;
/// [`MsgLabel::as_str`] recovers the human-readable view for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum MsgLabel {
    /// [`Msg::Token`].
    Token = 0,
    /// [`Msg::TokenAck`].
    TokenAck,
    /// [`Msg::MqInsert`] with [`NotifyKind::Local`].
    MqLocal,
    /// [`Msg::MqInsert`] with [`NotifyKind::ToParent`].
    NotifyParent,
    /// [`Msg::MqInsert`] with [`NotifyKind::ToChild`].
    NotifyChild,
    /// [`Msg::HolderAck`].
    HolderAck,
    /// [`Msg::HeartbeatUp`].
    HbUp,
    /// [`Msg::HeartbeatDown`].
    HbDown,
    /// [`Msg::AttachChild`].
    AttachChild,
    /// [`Msg::AttachAccepted`].
    AttachAccepted,
    /// [`Msg::QueryRequest`].
    QueryReq,
    /// [`Msg::QueryResponse`].
    QueryResp,
    /// [`Msg::JoinRing`].
    JoinRing,
    /// [`Msg::MergeRings`].
    MergeRings,
    /// [`Msg::RingSync`].
    RingSync,
    /// [`Msg::FromMh`] (the wireless hop).
    FromMh,
}

impl MsgLabel {
    /// Number of label slots (array dimension for per-label counters).
    pub const COUNT: usize = 16;

    /// Every label, in slot order.
    pub const ALL: [MsgLabel; Self::COUNT] = [
        MsgLabel::Token,
        MsgLabel::TokenAck,
        MsgLabel::MqLocal,
        MsgLabel::NotifyParent,
        MsgLabel::NotifyChild,
        MsgLabel::HolderAck,
        MsgLabel::HbUp,
        MsgLabel::HbDown,
        MsgLabel::AttachChild,
        MsgLabel::AttachAccepted,
        MsgLabel::QueryReq,
        MsgLabel::QueryResp,
        MsgLabel::JoinRing,
        MsgLabel::MergeRings,
        MsgLabel::RingSync,
        MsgLabel::FromMh,
    ];

    /// The metrics string this slot corresponds to (same strings
    /// [`Msg::label`] always produced).
    pub fn as_str(self) -> &'static str {
        match self {
            MsgLabel::Token => "token",
            MsgLabel::TokenAck => "token_ack",
            MsgLabel::MqLocal => "mq_local",
            MsgLabel::NotifyParent => "notify_parent",
            MsgLabel::NotifyChild => "notify_child",
            MsgLabel::HolderAck => "holder_ack",
            MsgLabel::HbUp => "hb_up",
            MsgLabel::HbDown => "hb_down",
            MsgLabel::AttachChild => "attach_child",
            MsgLabel::AttachAccepted => "attach_accepted",
            MsgLabel::QueryReq => "query_req",
            MsgLabel::QueryResp => "query_resp",
            MsgLabel::JoinRing => "join_ring",
            MsgLabel::MergeRings => "merge_rings",
            MsgLabel::RingSync => "ring_sync",
            MsgLabel::FromMh => "from_mh",
        }
    }

    /// Reverse lookup from the string view (reports, test assertions).
    pub fn from_name(label: &str) -> Option<MsgLabel> {
        Self::ALL.into_iter().find(|l| l.as_str() == label)
    }
}

impl std::fmt::Display for MsgLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Msg {
    /// Dense message-class identifier (hot-path metrics key).
    pub fn label_kind(&self) -> MsgLabel {
        match self {
            Msg::Token(_) => MsgLabel::Token,
            Msg::TokenAck { .. } => MsgLabel::TokenAck,
            Msg::MqInsert { kind: NotifyKind::Local, .. } => MsgLabel::MqLocal,
            Msg::MqInsert { kind: NotifyKind::ToParent, .. } => MsgLabel::NotifyParent,
            Msg::MqInsert { kind: NotifyKind::ToChild, .. } => MsgLabel::NotifyChild,
            Msg::HolderAck { .. } => MsgLabel::HolderAck,
            Msg::HeartbeatUp(_) => MsgLabel::HbUp,
            Msg::HeartbeatDown(_) => MsgLabel::HbDown,
            Msg::AttachChild { .. } => MsgLabel::AttachChild,
            Msg::AttachAccepted { .. } => MsgLabel::AttachAccepted,
            Msg::QueryRequest { .. } => MsgLabel::QueryReq,
            Msg::QueryResponse { .. } => MsgLabel::QueryResp,
            Msg::JoinRing { .. } => MsgLabel::JoinRing,
            Msg::MergeRings { .. } => MsgLabel::MergeRings,
            Msg::RingSync(_) => MsgLabel::RingSync,
            Msg::FromMh { .. } => MsgLabel::FromMh,
        }
    }

    /// Short label for metrics (string view of [`Msg::label_kind`]).
    pub fn label(&self) -> &'static str {
        self.label_kind().as_str()
    }
}

/// A membership event issued by a mobile host towards its access proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MhEvent {
    /// Join the group.
    Join {
        /// Member identity.
        guid: Guid,
        /// Care-of identity at this proxy.
        luid: Luid,
    },
    /// Leave the group voluntarily.
    Leave {
        /// Member identity.
        guid: Guid,
    },
    /// Handoff arrival: the MH attached to this proxy, coming from `from`.
    HandoffIn {
        /// Member identity.
        guid: Guid,
        /// Fresh care-of identity at this proxy.
        luid: Luid,
        /// Previous proxy if the MH knows it.
        from: Option<NodeId>,
    },
    /// The proxy detected the MH as failed (missed polls / faulty
    /// disconnection).
    FailureDetected {
        /// Member identity.
        guid: Guid,
    },
    /// The MH announced a temporary or voluntary disconnection (§1); it
    /// remains a member with `Disconnected` status.
    Disconnect {
        /// Member identity.
        guid: Guid,
    },
    /// The MH resumed operation at this proxy after a disconnection,
    /// with a fresh care-of identity (possibly at a different cell).
    Resume {
        /// Member identity.
        guid: Guid,
        /// Fresh care-of identity.
        luid: Luid,
    },
}

/// Group-stamped envelope used on the wire between NEs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// The group this message belongs to.
    pub gid: GroupId,
    /// Payload.
    pub msg: Msg,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberInfo;

    fn rec(op: ChangeOp) -> ChangeRecord {
        ChangeRecord::new(ChangeId { origin: NodeId(1), seq: 0 }, NodeId(1), RingId(0), op)
    }

    #[test]
    fn member_extraction() {
        let join =
            ChangeOp::MemberJoin { info: MemberInfo::operational(Guid(7), Luid(1), NodeId(3)) };
        assert_eq!(join.member(), Some(Guid(7)));
        let ne = ChangeOp::NeFailure { node: NodeId(1), ring: RingId(0) };
        assert_eq!(ne.member(), None);
    }

    #[test]
    fn leader_change_does_not_propagate_up() {
        assert!(!ChangeOp::LeaderChange { ring: RingId(1), leader: NodeId(1) }.propagates_up());
        assert!(ChangeOp::MemberLeave { guid: Guid(1) }.propagates_up());
        assert!(ChangeOp::NeFailure { node: NodeId(2), ring: RingId(0) }.propagates_up());
    }

    #[test]
    fn for_parent_ring_sets_provenance() {
        let r = rec(ChangeOp::MemberLeave { guid: Guid(4) });
        let up = r.for_parent_ring(NodeId(9), RingId(0));
        assert_eq!(up.origin, NodeId(9));
        assert_eq!(up.from_child_ring, Some(RingId(0)));
        assert_eq!(up.origin_ring, RingId(0));
        assert_eq!(up.id, r.id);
        assert!(!up.descending);
    }

    #[test]
    fn for_child_ring_marks_descending() {
        let r = rec(ChangeOp::MemberLeave { guid: Guid(4) });
        let down = r.for_child_ring(NodeId(12));
        assert!(down.descending);
        assert_eq!(down.origin, NodeId(12));
        assert_eq!(down.from_child_ring, None);
        assert_eq!(down.id, r.id);
    }

    #[test]
    fn msg_labels_are_distinct_where_it_matters() {
        let a = Msg::MqInsert { kind: NotifyKind::ToParent, records: vec![] };
        let b = Msg::MqInsert { kind: NotifyKind::ToChild, records: vec![] };
        assert_ne!(a.label(), b.label());
        assert_eq!(a.label(), "notify_parent");
    }

    #[test]
    fn op_kind_mapping_is_total() {
        let ops = vec![
            ChangeOp::MemberJoin { info: MemberInfo::operational(Guid(1), Luid(1), NodeId(1)) },
            ChangeOp::MemberLeave { guid: Guid(1) },
            ChangeOp::MemberHandoff { guid: Guid(1), luid: Luid(2), from: None, to: NodeId(2) },
            ChangeOp::MemberFailure { guid: Guid(1) },
            ChangeOp::MemberDisconnect { guid: Guid(1) },
            ChangeOp::NeJoin { node: NodeId(1), ring: RingId(0) },
            ChangeOp::NeLeave { node: NodeId(1), ring: RingId(0) },
            ChangeOp::NeFailure { node: NodeId(1), ring: RingId(0) },
            ChangeOp::LeaderChange { ring: RingId(0), leader: NodeId(1) },
        ];
        let kinds: Vec<OpKind> = ops.iter().map(|o| o.kind()).collect();
        assert_eq!(kinds, OpKind::ALL.to_vec());
    }

    #[test]
    fn change_ids_order_by_origin_then_seq() {
        let a = ChangeId { origin: NodeId(1), seq: 5 };
        let b = ChangeId { origin: NodeId(2), seq: 0 };
        assert!(a < b);
    }
}
