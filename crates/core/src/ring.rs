//! Logical-ring roster: the ordered list of network entities forming one
//! logical ring, with successor/predecessor arithmetic, leader election and
//! local repair (§5.2: excluding a faulty node from the ring).

use crate::error::{Result, RgbError};
use crate::ids::{NodeId, RingId, Tier};
use serde::{Deserialize, Serialize};

/// The ordered node roster of one logical ring.
///
/// Ring order is the insertion order of nodes (which the topology builder
/// makes deterministic); the *leader* is tracked separately and re-elected
/// as the minimum node id whenever the roster changes — a deterministic rule
/// every node can apply independently, which is what lets repair stay local.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingRoster {
    /// The ring's identity.
    pub id: RingId,
    /// Tier of this ring in the hierarchy.
    pub tier: Tier,
    /// Level below the root (0 = topmost ring).
    pub level: usize,
    nodes: Vec<NodeId>,
    leader: Option<NodeId>,
}

impl RingRoster {
    /// A new roster over `nodes` (must be non-empty for most operations).
    /// The initial leader is the minimum node id.
    pub fn new(id: RingId, tier: Tier, level: usize, nodes: Vec<NodeId>) -> Self {
        let mut r = RingRoster { id, tier, level, nodes, leader: None };
        r.elect_leader();
        r
    }

    /// Number of nodes currently on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes remain.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes in ring order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Current leader (deterministic: minimum id), if the ring is non-empty.
    pub fn leader(&self) -> Option<NodeId> {
        self.leader
    }

    /// Whether `node` is on the ring.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Position of `node` in ring order.
    pub fn position(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// Successor of `node` in ring order (wraps around). For a single-node
    /// ring the successor is the node itself.
    pub fn next_of(&self, node: NodeId) -> Result<NodeId> {
        let pos = self.position(node).ok_or(RgbError::UnknownNode(node))?;
        Ok(self.nodes[(pos + 1) % self.nodes.len()])
    }

    /// Predecessor of `node` in ring order (wraps around).
    pub fn prev_of(&self, node: NodeId) -> Result<NodeId> {
        let pos = self.position(node).ok_or(RgbError::UnknownNode(node))?;
        Ok(self.nodes[(pos + self.nodes.len() - 1) % self.nodes.len()])
    }

    /// Both logical neighbours of `node` (previous, next).
    pub fn neighbors_of(&self, node: NodeId) -> Result<(NodeId, NodeId)> {
        Ok((self.prev_of(node)?, self.next_of(node)?))
    }

    /// Insert `node` immediately after `after` (or at the end when `after`
    /// is `None` or absent). Returns whether the roster changed (inserting a
    /// present node is a no-op). Leader is re-elected.
    pub fn insert_after(&mut self, node: NodeId, after: Option<NodeId>) -> bool {
        if self.contains(node) {
            return false;
        }
        match after.and_then(|a| self.position(a)) {
            Some(pos) => self.nodes.insert(pos + 1, node),
            None => self.nodes.push(node),
        }
        self.elect_leader();
        true
    }

    /// Remove `node` (local repair / voluntary leave). Returns whether the
    /// roster changed. Leader is re-elected.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.position(node) {
            Some(pos) => {
                self.nodes.remove(pos);
                self.elect_leader();
                true
            }
            None => false,
        }
    }

    /// Replace the entire roster (used when re-forming a ring after a
    /// partition merge). Order of `nodes` becomes the new ring order.
    pub fn reset(&mut self, nodes: Vec<NodeId>) {
        self.nodes = nodes;
        self.elect_leader();
    }

    /// Walk clockwise from (excluding) `from`, returning nodes in ring
    /// order; used to find the first alive successor during repair.
    pub fn successors_of(&self, from: NodeId) -> Vec<NodeId> {
        let Some(pos) = self.position(from) else { return Vec::new() };
        let n = self.nodes.len();
        (1..n).map(|i| self.nodes[(pos + i) % n]).collect()
    }

    fn elect_leader(&mut self) {
        self.leader = self.nodes.iter().copied().min();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(ids: &[u64]) -> RingRoster {
        RingRoster::new(RingId(1), Tier::AccessProxy, 2, ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn leader_is_min_id() {
        let r = ring(&[5, 3, 9]);
        assert_eq!(r.leader(), Some(NodeId(3)));
    }

    #[test]
    fn empty_ring_has_no_leader() {
        let r = ring(&[]);
        assert!(r.is_empty());
        assert_eq!(r.leader(), None);
    }

    #[test]
    fn next_and_prev_wrap() {
        let r = ring(&[1, 2, 3]);
        assert_eq!(r.next_of(NodeId(3)).unwrap(), NodeId(1));
        assert_eq!(r.prev_of(NodeId(1)).unwrap(), NodeId(3));
        assert_eq!(r.next_of(NodeId(1)).unwrap(), NodeId(2));
    }

    #[test]
    fn single_node_ring_is_its_own_neighbor() {
        let r = ring(&[7]);
        assert_eq!(r.next_of(NodeId(7)).unwrap(), NodeId(7));
        assert_eq!(r.prev_of(NodeId(7)).unwrap(), NodeId(7));
    }

    #[test]
    fn unknown_node_errors() {
        let r = ring(&[1, 2]);
        assert_eq!(r.next_of(NodeId(9)), Err(RgbError::UnknownNode(NodeId(9))));
    }

    #[test]
    fn insert_after_places_correctly() {
        let mut r = ring(&[1, 2, 3]);
        assert!(r.insert_after(NodeId(10), Some(NodeId(2))));
        assert_eq!(r.nodes(), &[NodeId(1), NodeId(2), NodeId(10), NodeId(3)]);
        assert_eq!(r.next_of(NodeId(2)).unwrap(), NodeId(10));
    }

    #[test]
    fn insert_duplicate_is_noop() {
        let mut r = ring(&[1, 2]);
        assert!(!r.insert_after(NodeId(2), None));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn insert_at_end_when_no_anchor() {
        let mut r = ring(&[1, 2]);
        assert!(r.insert_after(NodeId(9), None));
        assert_eq!(r.nodes(), &[NodeId(1), NodeId(2), NodeId(9)]);
    }

    #[test]
    fn remove_relinks_neighbors() {
        let mut r = ring(&[1, 2, 3]);
        assert!(r.remove(NodeId(2)));
        assert_eq!(r.next_of(NodeId(1)).unwrap(), NodeId(3));
        assert_eq!(r.prev_of(NodeId(3)).unwrap(), NodeId(1));
        assert!(!r.remove(NodeId(2)));
    }

    #[test]
    fn removing_leader_re_elects() {
        let mut r = ring(&[1, 2, 3]);
        assert_eq!(r.leader(), Some(NodeId(1)));
        r.remove(NodeId(1));
        assert_eq!(r.leader(), Some(NodeId(2)));
    }

    #[test]
    fn successors_walk_clockwise() {
        let r = ring(&[1, 2, 3, 4]);
        assert_eq!(r.successors_of(NodeId(3)), vec![NodeId(4), NodeId(1), NodeId(2)]);
        assert!(ring(&[1]).successors_of(NodeId(1)).is_empty());
    }

    #[test]
    fn reset_replaces_roster() {
        let mut r = ring(&[1, 2, 3]);
        r.reset(vec![NodeId(9), NodeId(8)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.leader(), Some(NodeId(8)));
        assert_eq!(r.next_of(NodeId(9)).unwrap(), NodeId(8));
    }

    #[test]
    fn neighbors_of_pair() {
        let r = ring(&[1, 2, 3]);
        assert_eq!(r.neighbors_of(NodeId(2)).unwrap(), (NodeId(1), NodeId(3)));
    }
}
