//! Membership views delivered to applications.
//!
//! A *view* is the classical group-communication object: an epoch number
//! plus the list of currently operational members as known at one node.
//! RGB's one-round agreement guarantees that after a token round completes,
//! every node of the ring has applied the same ops in the same order, so
//! views with the same `(ring, epoch)` are identical across the ring — the
//! consistency property of §4.3 ("membership information maintained in the
//! Function-Well hierarchy is consistent"). The simulator's oracle asserts
//! exactly this.

use crate::ids::{Guid, RingId};
use crate::member::MemberList;
use serde::{Deserialize, Serialize};

/// Identifier of a view: the ring it pertains to plus a monotonically
/// increasing epoch (one epoch per *loaded* token round).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ViewId {
    /// Ring the view pertains to.
    pub ring: RingId,
    /// Epoch, incremented on every loaded round agreed by the ring.
    pub epoch: u64,
}

/// A membership view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// View identity.
    pub id: ViewId,
    /// Operational members, in GUID order.
    pub members: Vec<Guid>,
}

impl View {
    /// Build a view from a member list (operational members only).
    pub fn from_list(id: ViewId, list: &MemberList) -> Self {
        View { id, members: list.operational_guids() }
    }

    /// Number of members in the view.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the view has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `guid` is in the view.
    pub fn contains(&self, guid: Guid) -> bool {
        self.members.binary_search(&guid).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Luid, NodeId};
    use crate::member::MemberInfo;

    #[test]
    fn view_from_list_is_sorted_and_operational_only() {
        let mut l = MemberList::new();
        l.upsert(MemberInfo::operational(Guid(3), Luid(1), NodeId(1)));
        l.upsert(MemberInfo::operational(Guid(1), Luid(1), NodeId(1)));
        l.upsert(MemberInfo::operational(Guid(2), Luid(1), NodeId(1)));
        l.set_status(Guid(2), crate::member::MemberStatus::Failed);
        let v = View::from_list(ViewId { ring: RingId(0), epoch: 1 }, &l);
        assert_eq!(v.members, vec![Guid(1), Guid(3)]);
        assert_eq!(v.len(), 2);
        assert!(v.contains(Guid(1)));
        assert!(!v.contains(Guid(2)));
    }

    #[test]
    fn view_ids_order_by_ring_then_epoch() {
        let a = ViewId { ring: RingId(0), epoch: 9 };
        let b = ViewId { ring: RingId(1), epoch: 0 };
        assert!(a < b);
        let c = ViewId { ring: RingId(0), epoch: 10 };
        assert!(a < c);
    }

    #[test]
    fn empty_view() {
        let v = View::from_list(ViewId { ring: RingId(0), epoch: 0 }, &MemberList::new());
        assert!(v.is_empty());
    }
}
