//! Identity types used throughout the RGB protocol.
//!
//! The paper (§4.2) names four identity spaces:
//!
//! * **GID** — group identity, e.g. an IP multicast class-D address;
//! * **NodeID** — identity of a network entity (AP/AG/BR), e.g. its IP address;
//! * **GUID** — globally unique identity of a mobile host, e.g. its Mobile IP
//!   home address;
//! * **LUID** — locally unique identity of a mobile host, e.g. its Mobile IP
//!   care-of address.
//!
//! All of these are opaque to the protocol: RGB only ever compares them for
//! equality and (for deterministic leader election) order, so we represent
//! them as newtyped integers rather than real addresses.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Group identity (paper: `GID: GroupID`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identity of a network entity (paper: `NodeID`).
///
/// Node ids are totally ordered; the protocol uses the minimum id of a ring
/// roster as the deterministic leader-election rule after failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Globally unique identity of a mobile host (paper: `GUID`), e.g. a Mobile
/// IP home address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Guid(pub u64);

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Locally unique identity of a mobile host (paper: `LUID`), e.g. a Mobile IP
/// care-of address. A mobile host gets a fresh LUID every time it attaches to
/// a new access proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Luid(pub u64);

impl fmt::Display for Luid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identity of a logical ring in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RingId(pub u32);

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The tier a network entity belongs to in the 4-tier mobile-Internet
/// architecture (paper §3, Figure 1).
///
/// Mobile hosts form a fourth tier below [`Tier::AccessProxy`], but they are
/// not network entities and never sit on a logical ring, so they are not
/// represented here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Border Router Tier (BRT) — the topmost tier; BGP border routers.
    BorderRouter,
    /// Access Gateway Tier (AGT) — gateways between wireless access networks
    /// and autonomous systems.
    AccessGateway,
    /// Access Proxy Tier (APT) — access points / base stations / satellites,
    /// abstracted as access proxies; mobile hosts attach here.
    AccessProxy,
}

impl Tier {
    /// Short display name as used in the paper's Figure 2.
    pub fn abbrev(self) -> &'static str {
        match self {
            Tier::BorderRouter => "BR",
            Tier::AccessGateway => "AG",
            Tier::AccessProxy => "AP",
        }
    }

    /// Tier for a given *level* below the hierarchy root: level 0 is the
    /// topmost ring tier (BRT), the bottommost level is always the APT, and
    /// everything in between is an AGT sub-tier. The paper allows "sub-tiers
    /// in each tier" (§4.4), which is how hierarchies taller than three ring
    /// levels are modelled.
    pub fn for_level(level: usize, height: usize) -> Tier {
        debug_assert!(height >= 1 && level < height);
        if level + 1 == height {
            Tier::AccessProxy
        } else if level == 0 {
            Tier::BorderRouter
        } else {
            Tier::AccessGateway
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(GroupId(7).to_string(), "g7");
        assert_eq!(NodeId(42).to_string(), "n42");
        assert_eq!(Guid(1).to_string(), "m1");
        assert_eq!(Luid(2).to_string(), "l2");
        assert_eq!(RingId(3).to_string(), "r3");
        assert_eq!(Tier::AccessProxy.to_string(), "AP");
    }

    #[test]
    fn node_ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        let mut v = vec![NodeId(3), NodeId(1), NodeId(2)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn tier_for_level_three_tier_hierarchy() {
        // Classic paper hierarchy: BRT / AGT / APT.
        assert_eq!(Tier::for_level(0, 3), Tier::BorderRouter);
        assert_eq!(Tier::for_level(1, 3), Tier::AccessGateway);
        assert_eq!(Tier::for_level(2, 3), Tier::AccessProxy);
    }

    #[test]
    fn tier_for_level_tall_hierarchy_has_ag_subtiers() {
        assert_eq!(Tier::for_level(0, 5), Tier::BorderRouter);
        assert_eq!(Tier::for_level(1, 5), Tier::AccessGateway);
        assert_eq!(Tier::for_level(2, 5), Tier::AccessGateway);
        assert_eq!(Tier::for_level(3, 5), Tier::AccessGateway);
        assert_eq!(Tier::for_level(4, 5), Tier::AccessProxy);
    }

    #[test]
    fn tier_for_level_two_tier_hierarchy() {
        // h=2 (used in Table I ring column): top ring is BRT, bottom is APT.
        assert_eq!(Tier::for_level(0, 2), Tier::BorderRouter);
        assert_eq!(Tier::for_level(1, 2), Tier::AccessProxy);
    }

    #[test]
    fn tier_for_level_single_level() {
        // Degenerate single-ring hierarchy: the only ring hosts the APs.
        assert_eq!(Tier::for_level(0, 1), Tier::AccessProxy);
    }
}
