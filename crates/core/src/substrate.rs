//! The substrate layer: the uniform boundary between the sans-IO protocol
//! engine and whatever executes it.
//!
//! A [`crate::node::NodeState`] emits [`Output`]s; something must transport
//! the messages, fire the timers and hand application events to the local
//! app. That "something" — a discrete-event simulator, a thread-per-node
//! live runtime, a future socket deployment — is a [`Substrate`]. The
//! [`apply_outputs`] driver interprets a batch of outputs against a
//! substrate uniformly, so every execution backend applies protocol outputs
//! the *same way*, including wire-encoding each [`Output::Send`] into an
//! [`Envelope`] frame. Both shipped substrates therefore exercise
//! [`crate::wire`] end-to-end: what differs between them is only how frames
//! travel and how time passes.
//!
//! The companion [`OutputSink`] alias names the reusable output buffer used
//! with [`crate::node::NodeState::handle_into`]: hot loops keep one buffer
//! alive across inputs instead of allocating a fresh `Vec<Output>` per
//! input.

use crate::events::{AppEvent, Output, TimerKind};
use crate::ids::{GroupId, NodeId};
use crate::message::{Envelope, MsgLabel};
use crate::wire;
use bytes::Bytes;

/// A reusable buffer of protocol outputs.
///
/// [`crate::node::NodeState::handle_into`] appends into one of these;
/// [`apply_outputs`] drains it. Keeping a single sink alive across the hot
/// loop means the per-input allocation disappears once the buffer has grown
/// to its working size.
pub type OutputSink = Vec<Output>;

/// Services an execution substrate provides to the protocol engine.
///
/// Implementations decide what a tick means (simulated or real time), how a
/// frame reaches its destination (event queue, channel, socket) and where
/// application events go (recorded vector, subscriber channel).
pub trait Substrate {
    /// Current time in protocol ticks.
    fn now(&self) -> u64;

    /// Transmit an encoded [`Envelope`] frame from `from` to `to`.
    ///
    /// `label` is the payload's [`crate::message::Msg::label_kind`], passed
    /// along so substrates can attribute traffic to message classes (a
    /// dense counter index, no string handling) without decoding the frame
    /// they are merely transporting.
    fn send_frame(&mut self, from: NodeId, to: NodeId, label: MsgLabel, frame: Bytes);

    /// Arm (or re-arm) `kind` for `node`, `after` ticks from now.
    fn arm_timer(&mut self, node: NodeId, kind: TimerKind, after: u64);

    /// Cancel `kind` for `node` (no-op if not armed).
    fn cancel_timer(&mut self, node: NodeId, kind: TimerKind);

    /// Deliver an application event raised at `node`.
    fn deliver_app(&mut self, node: NodeId, event: AppEvent);
}

/// Interpret a batch of protocol outputs against a substrate.
///
/// Drains `outs` (leaving the buffer empty and reusable) and applies each
/// output: sends are wire-encoded as `Envelope { gid, msg }` frames and
/// handed to [`Substrate::send_frame`]; timer operations and application
/// deliveries are forwarded verbatim. This is the *only* place outputs are
/// interpreted — substrates cannot drift apart in how they apply them.
pub fn apply_outputs<S: Substrate + ?Sized>(
    substrate: &mut S,
    gid: GroupId,
    node: NodeId,
    outs: &mut OutputSink,
) {
    for out in outs.drain(..) {
        match out {
            Output::Send { to, msg } => {
                let label = msg.label_kind();
                let frame = wire::encode(&Envelope { gid, msg });
                substrate.send_frame(node, to, label, frame);
            }
            Output::SetTimer { kind, after } => substrate.arm_timer(node, kind, after),
            Output::CancelTimer { kind } => substrate.cancel_timer(node, kind),
            Output::Deliver(event) => substrate.deliver_app(node, event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RingId;
    use crate::message::Msg;

    #[derive(Default)]
    struct Recorder {
        frames: Vec<(NodeId, NodeId, MsgLabel, Bytes)>,
        armed: Vec<(NodeId, TimerKind, u64)>,
        cancelled: Vec<(NodeId, TimerKind)>,
        apps: Vec<(NodeId, AppEvent)>,
    }

    impl Substrate for Recorder {
        fn now(&self) -> u64 {
            0
        }
        fn send_frame(&mut self, from: NodeId, to: NodeId, label: MsgLabel, frame: Bytes) {
            self.frames.push((from, to, label, frame));
        }
        fn arm_timer(&mut self, node: NodeId, kind: TimerKind, after: u64) {
            self.armed.push((node, kind, after));
        }
        fn cancel_timer(&mut self, node: NodeId, kind: TimerKind) {
            self.cancelled.push((node, kind));
        }
        fn deliver_app(&mut self, node: NodeId, event: AppEvent) {
            self.apps.push((node, event));
        }
    }

    #[test]
    fn sends_are_wire_encoded_with_the_group_id() {
        let mut rec = Recorder::default();
        let msg = Msg::TokenAck { ring: RingId(3), seq: 17 };
        let mut outs = vec![Output::Send { to: NodeId(2), msg: msg.clone() }];
        apply_outputs(&mut rec, GroupId(9), NodeId(1), &mut outs);
        assert!(outs.is_empty(), "driver must drain the sink");
        let (from, to, label, frame) = rec.frames.pop().expect("one frame");
        assert_eq!((from, to, label), (NodeId(1), NodeId(2), MsgLabel::TokenAck));
        assert_eq!(label.as_str(), "token_ack");
        let env = wire::decode(&frame).expect("frame decodes");
        assert_eq!(env.gid, GroupId(9));
        assert_eq!(env.msg, msg);
    }

    #[test]
    fn timers_and_app_events_are_forwarded_verbatim() {
        let mut rec = Recorder::default();
        let mut outs = vec![
            Output::SetTimer { kind: TimerKind::Heartbeat, after: 25 },
            Output::CancelTimer { kind: TimerKind::TokenKick },
            Output::Deliver(AppEvent::ParentLost { ring: RingId(4) }),
        ];
        apply_outputs(&mut rec, GroupId(1), NodeId(7), &mut outs);
        assert_eq!(rec.armed, vec![(NodeId(7), TimerKind::Heartbeat, 25)]);
        assert_eq!(rec.cancelled, vec![(NodeId(7), TimerKind::TokenKick)]);
        assert_eq!(rec.apps.len(), 1);
        assert!(matches!(rec.apps[0], (NodeId(7), AppEvent::ParentLost { ring: RingId(4) })));
    }

    #[test]
    fn sink_is_reusable_across_batches() {
        let mut rec = Recorder::default();
        let mut sink: OutputSink = Vec::new();
        for seq in 0..3u64 {
            sink.push(Output::Send { to: NodeId(2), msg: Msg::TokenAck { ring: RingId(0), seq } });
            apply_outputs(&mut rec, GroupId(1), NodeId(1), &mut sink);
            assert!(sink.is_empty());
        }
        assert_eq!(rec.frames.len(), 3);
    }
}
