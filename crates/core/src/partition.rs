//! The paper's ring fault/partition model (§5.2) and the
//! Membership-Partition/Merge extension sketched as future work in §6.
//!
//! Model rules:
//!
//! * a single node fault in a logical ring is detected by token
//!   retransmission and locally repaired by excluding the faulty node — the
//!   ring still *functions well*;
//! * two or more faults partition the ring into *segments* (maximal runs of
//!   alive nodes between faulty ones), which "will merge with other
//!   partitions later";
//! * the hierarchy is **Function-Well for k** when fewer than `k` rings fail
//!   to function well (formula (8) sums `i = 0 .. k-1` bad rings).
//!
//! These pure functions are used by the simulator's oracle and by the
//! Monte-Carlo reliability estimator, so the measured Table II agrees with
//! the analytical model by construction of the *rules*, not the numbers.

use crate::ids::NodeId;
use std::collections::BTreeSet;

/// Maximal runs of alive nodes between faulty positions, in ring order.
/// A fully-alive ring is one segment; a fully-faulty ring is zero segments.
pub fn segments(nodes: &[NodeId], faulty: &BTreeSet<NodeId>) -> Vec<Vec<NodeId>> {
    let n = nodes.len();
    if n == 0 {
        return Vec::new();
    }
    let alive: Vec<bool> = nodes.iter().map(|n| !faulty.contains(n)).collect();
    if alive.iter().all(|&a| a) {
        return vec![nodes.to_vec()];
    }
    if alive.iter().all(|&a| !a) {
        return Vec::new();
    }
    // Start scanning right after a faulty node so segments never wrap.
    let start = (0..n).find(|&i| !alive[i]).expect("some faulty") + 1;
    let mut segs: Vec<Vec<NodeId>> = Vec::new();
    let mut cur: Vec<NodeId> = Vec::new();
    for off in 0..n {
        let i = (start + off) % n;
        if alive[i] {
            cur.push(nodes[i]);
        } else if !cur.is_empty() {
            segs.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        segs.push(cur);
    }
    segs
}

/// Number of faulty nodes on the ring.
pub fn fault_count(nodes: &[NodeId], faulty: &BTreeSet<NodeId>) -> usize {
    nodes.iter().filter(|n| faulty.contains(n)).count()
}

/// Paper rule: the ring functions well iff it has at most one fault
/// (formula (7) sums `i = 0..=1` faults).
pub fn ring_function_well(nodes: &[NodeId], faulty: &BTreeSet<NodeId>) -> bool {
    fault_count(nodes, faulty) <= 1
}

/// Paper rule: the hierarchy is Function-Well for `k` iff fewer than `k`
/// rings do not function well (formula (8)).
pub fn hierarchy_function_well(bad_rings: usize, k: usize) -> bool {
    bad_rings < k
}

/// Membership-Merge: re-form a partitioned ring from its alive nodes,
/// preserving ring order. The new leader is the minimum id, consistent with
/// the protocol's deterministic election.
pub fn merged_ring(nodes: &[NodeId], faulty: &BTreeSet<NodeId>) -> Vec<NodeId> {
    nodes.iter().copied().filter(|n| !faulty.contains(n)).collect()
}

/// Merge several segments (e.g. the partitions that re-discovered each
/// other) into one ring roster: concatenate in order of each segment's
/// minimum id, dropping duplicates.
pub fn merge_segments(segments: &[Vec<NodeId>]) -> Vec<NodeId> {
    let mut ordered: Vec<&Vec<NodeId>> = segments.iter().filter(|s| !s.is_empty()).collect();
    ordered.sort_by_key(|s| s.iter().min().copied());
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for seg in ordered {
        for &n in seg {
            if seen.insert(n) {
                out.push(n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn fset(v: &[u64]) -> BTreeSet<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn no_faults_single_segment() {
        let segs = segments(&ids(&[1, 2, 3, 4]), &fset(&[]));
        assert_eq!(segs, vec![ids(&[1, 2, 3, 4])]);
    }

    #[test]
    fn one_fault_single_segment() {
        let segs = segments(&ids(&[1, 2, 3, 4]), &fset(&[2]));
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0], ids(&[3, 4, 1]));
    }

    #[test]
    fn two_faults_two_segments() {
        let segs = segments(&ids(&[1, 2, 3, 4, 5, 6]), &fset(&[2, 5]));
        assert_eq!(segs.len(), 2);
        // segments never wrap across a faulty node
        assert_eq!(segs[0], ids(&[3, 4]));
        assert_eq!(segs[1], ids(&[6, 1]));
    }

    #[test]
    fn adjacent_faults_merge_gap() {
        let segs = segments(&ids(&[1, 2, 3, 4]), &fset(&[1, 2]));
        assert_eq!(segs, vec![ids(&[3, 4])]);
    }

    #[test]
    fn all_faulty_no_segments() {
        assert!(segments(&ids(&[1, 2]), &fset(&[1, 2])).is_empty());
        assert!(segments(&[], &fset(&[])).is_empty());
    }

    #[test]
    fn function_well_rules() {
        let nodes = ids(&[1, 2, 3, 4, 5]);
        assert!(ring_function_well(&nodes, &fset(&[])));
        assert!(ring_function_well(&nodes, &fset(&[3])));
        assert!(!ring_function_well(&nodes, &fset(&[3, 4])));
        assert_eq!(fault_count(&nodes, &fset(&[3, 4, 99])), 2);
    }

    #[test]
    fn hierarchy_function_well_thresholds() {
        // k=1: no bad ring tolerated
        assert!(hierarchy_function_well(0, 1));
        assert!(!hierarchy_function_well(1, 1));
        // k=3: up to two bad rings
        assert!(hierarchy_function_well(2, 3));
        assert!(!hierarchy_function_well(3, 3));
    }

    #[test]
    fn merged_ring_preserves_order() {
        assert_eq!(merged_ring(&ids(&[5, 1, 4, 2]), &fset(&[1, 2])), ids(&[5, 4]));
    }

    #[test]
    fn merge_segments_orders_by_min_and_dedups() {
        let merged = merge_segments(&[ids(&[7, 8]), ids(&[2, 3]), ids(&[3, 9])]);
        assert_eq!(merged, ids(&[2, 3, 9, 7, 8]));
        assert!(merge_segments(&[]).is_empty());
    }
}
