//! A deterministic in-memory loopback substrate for unit and integration
//! tests.
//!
//! [`Loopback`] owns one [`NodeState`] per network entity, a FIFO message
//! queue with zero-latency delivery, and a logical-time timer wheel. It is
//! deliberately minimal — the full discrete-event simulator with latency,
//! loss, faults and metrics lives in the `rgb-sim` crate — but it is enough
//! to drive every protocol path deterministically, including crashes
//! (messages to a crashed node vanish, which is exactly what the token
//! retransmission machinery must tolerate).

use crate::config::ProtocolConfig;
use crate::events::{AppEvent, Input, Output, TimerKind};
use crate::ids::NodeId;
use crate::message::Msg;
use crate::node::NodeState;
use crate::topology::HierarchyLayout;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Deterministic loopback substrate.
#[derive(Debug)]
pub struct Loopback {
    /// The protocol states, by node id.
    pub nodes: BTreeMap<NodeId, NodeState>,
    /// Crashed nodes: inputs to them are dropped.
    pub crashed: BTreeSet<NodeId>,
    /// Application events delivered at each node, in order.
    pub delivered: BTreeMap<NodeId, Vec<AppEvent>>,
    /// Messages sent, by label (see [`Msg::label`]).
    pub sent_by_label: BTreeMap<&'static str, u64>,
    /// Total messages sent.
    pub sent_total: u64,
    /// Current logical time.
    pub now: u64,
    queue: VecDeque<(NodeId, NodeId, Msg)>,
    timers: BTreeMap<(NodeId, TimerKind), u64>,
}

impl Loopback {
    /// Build a loopback over every node of `layout`, all using `cfg`.
    pub fn from_layout(layout: &HierarchyLayout, cfg: &ProtocolConfig) -> Self {
        let mut nodes = BTreeMap::new();
        for &id in layout.nodes.keys() {
            let state =
                NodeState::from_layout(layout, id, cfg.clone()).expect("layout node constructs");
            nodes.insert(id, state);
        }
        Loopback {
            nodes,
            crashed: BTreeSet::new(),
            delivered: BTreeMap::new(),
            sent_by_label: BTreeMap::new(),
            sent_total: 0,
            now: 0,
            queue: VecDeque::new(),
            timers: BTreeMap::new(),
        }
    }

    /// Boot every node.
    pub fn boot_all(&mut self) {
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in ids {
            self.inject(id, Input::Boot);
        }
    }

    /// Deliver an input to a node and process its outputs.
    pub fn inject(&mut self, node: NodeId, input: Input) {
        if self.crashed.contains(&node) {
            return;
        }
        let Some(state) = self.nodes.get_mut(&node) else { return };
        let outs = state.handle(input);
        self.process_outputs(node, outs);
    }

    fn process_outputs(&mut self, node: NodeId, outs: Vec<Output>) {
        for out in outs {
            match out {
                Output::Send { to, msg } => {
                    *self.sent_by_label.entry(msg.label()).or_insert(0) += 1;
                    self.sent_total += 1;
                    self.queue.push_back((node, to, msg));
                }
                Output::SetTimer { kind, after } => {
                    self.timers.insert((node, kind), self.now + after);
                }
                Output::CancelTimer { kind } => {
                    self.timers.remove(&(node, kind));
                }
                Output::Deliver(ev) => {
                    self.delivered.entry(node).or_default().push(ev);
                }
            }
        }
    }

    /// Process one pending message, if any. Returns whether one existed.
    pub fn step_message(&mut self) -> bool {
        let Some((from, to, msg)) = self.queue.pop_front() else { return false };
        if self.crashed.contains(&to) || !self.nodes.contains_key(&to) {
            return true; // dropped on the floor
        }
        self.inject(to, Input::Msg { from, msg });
        true
    }

    /// Drain the message queue completely (no time passes).
    pub fn drain_messages(&mut self) -> usize {
        let mut n = 0;
        while self.step_message() {
            n += 1;
            assert!(n < 10_000_000, "message storm: protocol is not quiescing");
        }
        n
    }

    /// Fire the earliest pending timer (advancing logical time to it).
    /// Returns whether a timer existed.
    pub fn fire_next_timer(&mut self) -> bool {
        let next = self
            .timers
            .iter()
            .filter(|((n, _), _)| !self.crashed.contains(n))
            .min_by_key(|(&(n, k), &at)| (at, n, k))
            .map(|(&key, &at)| (key, at));
        let Some(((node, kind), at)) = next else { return false };
        self.timers.remove(&(node, kind));
        self.now = self.now.max(at);
        self.inject(node, Input::Timer(kind));
        true
    }

    /// Run messages and timers until the system is fully quiet or `budget`
    /// steps elapse. Returns true if quiescence was reached.
    pub fn run_until_quiet(&mut self, budget: usize) -> bool {
        for _ in 0..budget {
            if self.step_message() {
                continue;
            }
            if !self.fire_next_timer() {
                return true;
            }
        }
        self.queue.is_empty() && self.timers.is_empty()
    }

    /// Run until logical time reaches `deadline`, then stop (pending work
    /// beyond the deadline is left in place). Use for continuous-policy
    /// scenarios which never quiesce.
    pub fn run_until(&mut self, deadline: u64) {
        let mut steps = 0usize;
        loop {
            if self.step_message() {
                steps += 1;
                assert!(steps < 50_000_000, "message storm");
                continue;
            }
            let next = self
                .timers
                .iter()
                .filter(|((n, _), _)| !self.crashed.contains(n))
                .map(|(_, &at)| at)
                .min();
            match next {
                Some(at) if at <= deadline => {
                    self.fire_next_timer();
                }
                _ => {
                    self.now = deadline;
                    return;
                }
            }
        }
    }

    /// Crash a node: it stops processing inputs and all its timers die.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
        self.timers.retain(|(n, _), _| *n != node);
    }

    /// Borrow a node's state.
    pub fn node(&self, id: NodeId) -> &NodeState {
        &self.nodes[&id]
    }

    /// Events delivered at `id` so far.
    pub fn events_at(&self, id: NodeId) -> &[AppEvent] {
        self.delivered.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Count of messages sent with the given label.
    pub fn sent(&self, label: &str) -> u64 {
        self.sent_by_label.get(label).copied().unwrap_or(0)
    }
}
