//! The ring token (paper §4.2, "Data structure of Tokens").
//!
//! A token carries the group id, its current holder, and the aggregated
//! membership-change operations being agreed in the current round. We extend
//! the paper's structure with a round sequence number (needed for
//! retransmission-based fault detection) and with the set of nodes observed
//! to have pending work (which lets an on-demand ring hand the fresh token
//! to "an appropriate node", Figure 3 line 22, without extra probing).

use crate::ids::{GroupId, NodeId, RingId};
use crate::message::{ChangeId, ChangeRecord};
use serde::{Deserialize, Serialize};

/// The token that circulates around one logical ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Group identity (paper: `GID`).
    pub gid: GroupId,
    /// The ring this token belongs to.
    pub ring: RingId,
    /// Monotonic round number, incremented every time a fresh token is
    /// prepared.
    pub seq: u64,
    /// Node identity of the holder of the token (paper: `Holder`).
    pub holder: NodeId,
    /// Aggregated operations for this round (paper: `OP`,
    /// `TypeOfAggregatedOperations`).
    pub ops: Vec<ChangeRecord>,
    /// Nodes seen during this round whose message queues were non-empty;
    /// the holder uses this to park or hand over the fresh token under the
    /// on-demand policy.
    pub pending_nodes: Vec<NodeId>,
    /// Nodes visited so far in this round (the holder is visited implicitly
    /// at round start). Used for round-completion accounting and by tests.
    pub visited: Vec<NodeId>,
}

impl Token {
    /// A fresh token for round `seq` held by `holder`, loaded with `ops`.
    pub fn fresh(
        gid: GroupId,
        ring: RingId,
        seq: u64,
        holder: NodeId,
        ops: Vec<ChangeRecord>,
    ) -> Self {
        Token { gid, ring, seq, holder, ops, pending_nodes: Vec::new(), visited: Vec::new() }
    }

    /// Whether this round carries any operations.
    pub fn is_loaded(&self) -> bool {
        !self.ops.is_empty()
    }

    /// Ids of all changes carried this round.
    pub fn change_ids(&self) -> Vec<ChangeId> {
        self.ops.iter().map(|r| r.id).collect()
    }

    /// Record that `node` had pending MQ entries when the token passed it.
    pub fn note_pending(&mut self, node: NodeId) {
        if !self.pending_nodes.contains(&node) {
            self.pending_nodes.push(node);
        }
    }

    /// Record a visit.
    pub fn note_visit(&mut self, node: NodeId) {
        self.visited.push(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Guid;
    use crate::message::{ChangeId, ChangeOp, ChangeRecord};

    fn tok() -> Token {
        Token::fresh(GroupId(1), RingId(0), 7, NodeId(10), vec![])
    }

    #[test]
    fn fresh_token_is_empty() {
        let t = tok();
        assert!(!t.is_loaded());
        assert!(t.change_ids().is_empty());
        assert_eq!(t.holder, NodeId(10));
        assert_eq!(t.seq, 7);
    }

    #[test]
    fn loaded_token_reports_change_ids() {
        let mut t = tok();
        t.ops.push(ChangeRecord::new(
            ChangeId { origin: NodeId(3), seq: 1 },
            NodeId(3),
            RingId(0),
            ChangeOp::MemberLeave { guid: Guid(5) },
        ));
        assert!(t.is_loaded());
        assert_eq!(t.change_ids(), vec![ChangeId { origin: NodeId(3), seq: 1 }]);
    }

    #[test]
    fn note_pending_dedups() {
        let mut t = tok();
        t.note_pending(NodeId(1));
        t.note_pending(NodeId(2));
        t.note_pending(NodeId(1));
        assert_eq!(t.pending_nodes, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn visits_accumulate_in_order() {
        let mut t = tok();
        t.note_visit(NodeId(4));
        t.note_visit(NodeId(5));
        assert_eq!(t.visited, vec![NodeId(4), NodeId(5)]);
    }
}
