//! Runtime NE-Join: a standalone network entity joining an existing
//! logical ring, with ring-state transfer.
//!
//! Paper §4.3: a new access proxy first builds "an APR … to include the
//! single AP itself and make itself the ring leader"
//! ([`NodeState::standalone`]); if it later finds a ring satisfying a
//! locality criterion, it asks a contact node to admit it
//! ([`NodeState::request_join`] → [`Msg::JoinRing`]). The contact queues an
//! `NE-Join` change (so the whole ring agrees on the new roster through the
//! normal one-round algorithm) and transfers a [`RingSnapshot`] so the
//! joiner can operate immediately.

use crate::config::{ProtocolConfig, TokenPolicy};
use crate::events::{AppEvent, Output, TimerKind};
use crate::ids::{GroupId, NodeId, RingId, Tier};
use crate::member::MemberList;
use crate::message::{ChangeOp, ChangeRecord, Msg, RingSnapshot};
use crate::mq::MessageQueue;
use crate::node::NodeState;
use crate::ring::RingRoster;
use std::collections::BTreeMap;

impl NodeState {
    /// A standalone entity: a single-node ring with itself as leader (the
    /// paper's freshly built APR). `level`/`height` describe where in a
    /// hierarchy it expects to sit once attached (bottom level for an AP).
    pub fn standalone(
        cfg: ProtocolConfig,
        gid: GroupId,
        id: NodeId,
        ring: RingId,
        level: usize,
        height: usize,
    ) -> Self {
        let tier = Tier::for_level(level.min(height - 1), height);
        NodeState {
            cfg,
            gid,
            id,
            tier,
            level,
            height,
            roster: RingRoster::new(ring, tier, level, vec![id]),
            parent: None,
            parent_ring: None,
            children: BTreeMap::new(),
            ring_ok: true,
            parent_ok: false,
            local_members: MemberList::new(),
            ring_members: MemberList::new(),
            neighbor_members: MemberList::new(),
            mq: MessageQueue::new(),
            stats: Default::default(),
            level_ring_counts: vec![1; height],
            has_token: true, // its own ring's token parks here
            last_token_seq: 0,
            inflight: None,
            epoch: 0,
            next_change_seq: 0,
            next_query_seq: 0,
            pending_queries: BTreeMap::new(),
            parent_roster_cache: Vec::new(),
            attach_attempts: 0,
            awaiting_ack: BTreeMap::new(),
            token_seen_since_lost: false,
        }
    }

    /// Ask `contact` (a member of the target ring) to admit this node.
    /// The admission and state transfer arrive asynchronously as
    /// [`Msg::RingSync`]; once installed, [`AppEvent::JoinedRing`] is
    /// delivered.
    pub fn request_join(&mut self, contact: NodeId) -> Vec<Output> {
        vec![Output::Send { to: contact, msg: Msg::JoinRing { node: self.id } }]
    }

    /// Contact side: admit `node` into this ring.
    pub(crate) fn on_join_ring(&mut self, node: NodeId, outs: &mut Vec<Output>) {
        if self.roster.contains(node) {
            // Duplicate request (e.g. retry): re-send the snapshot only.
            outs.push(Output::Send {
                to: node,
                msg: Msg::RingSync(Box::new(self.ring_snapshot())),
            });
            return;
        }
        // Queue the NE-Join for ring-wide agreement. Every node applies it
        // as "append to roster", so the optimistic snapshot below (current
        // roster + joiner) matches the agreed outcome.
        let id = self.next_change_id();
        let rec = ChangeRecord::new(
            id,
            self.id,
            self.ring_id(),
            ChangeOp::NeJoin { node, ring: self.ring_id() },
        );
        self.queue_record(rec, outs);
        let mut snapshot = self.ring_snapshot();
        if !snapshot.roster.contains(&node) {
            snapshot.roster.push(node);
        }
        outs.push(Output::Send { to: node, msg: Msg::RingSync(Box::new(snapshot)) });
    }

    /// Joiner side: install the transferred ring state.
    pub(crate) fn on_ring_sync(&mut self, snapshot: RingSnapshot, outs: &mut Vec<Output>) {
        if !snapshot.roster.contains(&self.id) {
            return; // not meant for us
        }
        if self.ring_id() == snapshot.ring && self.roster.len() > 1 {
            return; // already installed (duplicate sync)
        }
        self.level = snapshot.level as usize;
        self.height = snapshot.height as usize;
        self.tier = Tier::for_level(self.level.min(self.height - 1), self.height);
        self.roster =
            RingRoster::new(snapshot.ring, self.tier, self.level, snapshot.roster.clone());
        self.ring_members = snapshot.members;
        self.epoch = snapshot.epoch;
        // Accept the round currently in flight (it carries our NE-Join);
        // anything older is stale.
        self.last_token_seq = snapshot.last_token_seq.saturating_sub(1);
        self.parent = snapshot.parent;
        self.parent_ring = snapshot.parent_ring;
        self.parent_ok = snapshot.parent.is_some();
        self.level_ring_counts = snapshot.level_ring_counts.iter().map(|&c| c as usize).collect();
        // The joined ring's token lives elsewhere; our standalone token is
        // retired.
        self.has_token = false;
        self.inflight = None;
        self.ring_ok = true;
        outs.push(Output::Deliver(AppEvent::JoinedRing { ring: snapshot.ring }));
        if self.cfg.token_policy == TokenPolicy::Continuous {
            outs.push(Output::SetTimer {
                kind: TimerKind::Heartbeat,
                after: self.cfg.heartbeat_interval,
            });
            outs.push(Output::SetTimer {
                kind: TimerKind::TokenLost,
                after: self.cfg.token_lost_timeout,
            });
        }
    }

    /// Voluntarily leave the current ring (NE-Leave): queue the change and
    /// stop participating once it is agreed. Returns the outputs to act on.
    pub fn request_leave(&mut self) -> Vec<Output> {
        let mut outs = Vec::new();
        let id = self.next_change_id();
        let rec = ChangeRecord::new(
            id,
            self.id,
            self.ring_id(),
            ChangeOp::NeLeave { node: self.id, ring: self.ring_id() },
        );
        self.queue_record(rec, &mut outs);
        outs
    }

    /// Membership-Merge (§6): propose absorbing this node's entire ring
    /// into the ring led by `other_leader`. Typically called on the leader
    /// of the smaller partition once connectivity is restored.
    pub fn propose_merge(&mut self, other_leader: NodeId) -> Vec<Output> {
        vec![Output::Send {
            to: other_leader,
            msg: Msg::MergeRings {
                ring: self.ring_id(),
                roster: self.roster.nodes().to_vec(),
                members: self.ring_members.clone(),
            },
        }]
    }

    /// Absorbing side of Membership-Merge: queue NE-Join changes for every
    /// absorbed node (ring-wide agreement through the normal one-round
    /// algorithm), import the absorbed membership as member changes, and
    /// transfer the merged ring state to each newcomer.
    pub(crate) fn on_merge_rings(
        &mut self,
        _ring: RingId,
        roster: Vec<NodeId>,
        members: MemberList,
        outs: &mut Vec<Output>,
    ) {
        let newcomers: Vec<NodeId> =
            roster.iter().copied().filter(|n| !self.roster.contains(*n)).collect();
        for &node in &newcomers {
            let id = self.next_change_id();
            let rec = ChangeRecord::new(
                id,
                self.id,
                self.ring_id(),
                ChangeOp::NeJoin { node, ring: self.ring_id() },
            );
            self.queue_record(rec, outs);
        }
        for m in members.iter() {
            let id = self.next_change_id();
            let rec =
                ChangeRecord::new(id, self.id, self.ring_id(), ChangeOp::MemberJoin { info: *m });
            self.queue_record(rec, outs);
        }
        // Optimistic snapshot with all newcomers appended (matching the
        // deterministic NE-Join application order).
        let mut snapshot = self.ring_snapshot();
        for &node in &newcomers {
            if !snapshot.roster.contains(&node) {
                snapshot.roster.push(node);
            }
        }
        snapshot.members.merge_from(&members);
        for &node in &newcomers {
            outs.push(Output::Send { to: node, msg: Msg::RingSync(Box::new(snapshot.clone())) });
        }
    }

    fn ring_snapshot(&self) -> RingSnapshot {
        RingSnapshot {
            ring: self.ring_id(),
            level: self.level as u8,
            height: self.height as u8,
            roster: self.roster.nodes().to_vec(),
            members: self.ring_members.clone(),
            epoch: self.epoch,
            last_token_seq: self.last_token_seq,
            parent: self.parent,
            parent_ring: self.parent_ring,
            level_ring_counts: self.level_ring_counts.iter().map(|&c| c as u32).collect(),
        }
    }
}
