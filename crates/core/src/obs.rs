//! Cross-backend observability primitives: a bucketed latency
//! [`Histogram`], per-ring-level latency surfaces ([`LevelHistograms`]),
//! and the flight-recorder trace layer ([`TraceSink`], [`FlightRecorder`]).
//!
//! The paper's cost model (Tables I/II) attributes membership-repair work
//! to *levels* of the ring hierarchy; these types let every engine — the
//! sequential simulator, the sharded parallel engine, and the live reactor
//! runtime — report the same per-level latency surfaces through the same
//! merge algebra. Everything here is engine-agnostic: no clocks, no
//! threads, no I/O. Engines stamp records with their own notion of time
//! (simulator ticks or wall ticks) and the merge operations are plain
//! counter additions, so shard merges and cluster aggregation cannot
//! diverge.
//!
//! Tracing is opt-in per engine: the [`NullSink`] default reports
//! `enabled() == false`, and engines gate every emission on that flag, so
//! disabled runs keep their current throughput.

use crate::ids::{NodeId, RingId};
use std::collections::BTreeMap;

/// A latency histogram over exact integer values (ticks).
///
/// Values are bucketed in a sorted map, so quantile reads take `&self` —
/// no deferred sort, no interior mutability. Recording is `O(log n)` in
/// the number of *distinct* values, which for tick-quantised latencies is
/// small; merging adds per-value counts, making
/// `merge(a, b).quantile(q)` independent of which engine shard saw which
/// sample.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// value → number of samples with exactly that value.
    buckets: BTreeMap<u64, u64>,
    /// Total samples recorded.
    count: u64,
    /// Sum of all samples (for `mean`).
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(value).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Number of samples recorded, as a `usize` (legacy accessor shape
    /// from the pre-bucketed sim histogram).
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }

    /// Nearest-rank quantile: the smallest recorded value whose cumulative
    /// count reaches `ceil(q * len)` (clamped to `[1, len]`). `q = 0`
    /// yields the minimum, `q = 1` the maximum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&value, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(value);
            }
        }
        self.max()
    }

    /// Fold another histogram into this one. Addition of per-value counts:
    /// associative, commutative, and identical whether samples were
    /// recorded here or merged in — the property shard merges rely on.
    pub fn merge(&mut self, other: &Histogram) {
        for (&value, &n) in &other.buckets {
            *self.buckets.entry(value).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Iterate `(value, count)` buckets in increasing value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &n)| (v, n))
    }
}

/// The three latency surfaces tracked per ring level.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelLatency {
    /// First wire sighting of a change record in a ring → that ring's
    /// `Agreed` delivery (paper: agreement latency per level).
    pub join: Histogram,
    /// Fault suspicion (first `TokenLost` / `TokenRetransmit` /
    /// `ParentTimeout` timer firing, ring-progress-cleared) → the
    /// corresponding `RingRepaired` / `Reattached` delivery.
    pub repair: Histogram,
    /// `StartQuery` issue → `QueryResult` delivery at the issuing node.
    pub query: Histogram,
}

impl LevelLatency {
    /// Fold another level's surfaces into this one.
    pub fn merge(&mut self, other: &LevelLatency) {
        self.join.merge(&other.join);
        self.repair.merge(&other.repair);
        self.query.merge(&other.query);
    }

    /// Whether all three surfaces are empty.
    pub fn is_empty(&self) -> bool {
        self.join.is_empty() && self.repair.is_empty() && self.query.is_empty()
    }
}

/// Per-ring-level latency histograms, indexed by hierarchy level
/// (0 = root ring). Grows on demand so engines need not know the
/// hierarchy depth up front, and merging aligns levels positionally —
/// the same indexing every backend derives from `HierarchyLayout`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelHistograms {
    levels: Vec<LevelLatency>,
}

impl LevelHistograms {
    /// An empty set of surfaces.
    pub fn new() -> Self {
        LevelHistograms::default()
    }

    /// Mutable access to `level`'s surfaces, growing the vector as needed.
    pub fn level_mut(&mut self, level: u8) -> &mut LevelLatency {
        let idx = level as usize;
        if self.levels.len() <= idx {
            self.levels.resize_with(idx + 1, LevelLatency::default);
        }
        &mut self.levels[idx]
    }

    /// The surfaces at `level`, if any sample ever touched it.
    pub fn get(&self, level: u8) -> Option<&LevelLatency> {
        self.levels.get(level as usize)
    }

    /// Number of levels tracked (deepest touched level + 1).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Whether every level is empty (or no level was ever touched).
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(LevelLatency::is_empty)
    }

    /// Iterate `(level, surfaces)` in level order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &LevelLatency)> {
        self.levels.iter().enumerate()
    }

    /// Fold another set of surfaces into this one, aligning levels.
    pub fn merge(&mut self, other: &LevelHistograms) {
        for (idx, lvl) in other.levels.iter().enumerate() {
            self.level_mut(idx as u8).merge(lvl);
        }
    }

    /// Repair-latency quantile pooled across every level — the signal the
    /// explorer's coverage fingerprint consumes.
    pub fn repair_quantile(&self, q: f64) -> Option<u64> {
        let mut pooled = Histogram::new();
        for lvl in &self.levels {
            pooled.merge(&lvl.repair);
        }
        pooled.quantile(q)
    }
}

/// A typed protocol event captured by the flight recorder.
///
/// The variant set mirrors the protocol phases the paper costs out:
/// join agreement, handoff, token circulation and recovery, partitions,
/// and queries. Payloads are small scalars so records stay `Copy`-sized
/// and the ring buffer never allocates per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsKind {
    /// A change record was first sighted on the wire in this ring.
    JoinStart {
        /// Coining node of the change id.
        origin: NodeId,
        /// Origin-local sequence number of the change id.
        seq: u64,
    },
    /// A ring delivered `Agreed` for a batch of changes.
    JoinCommit {
        /// Number of changes agreed in the batch.
        changes: u32,
    },
    /// A handoff / reattachment phase began (`ParentTimeout` fired or
    /// `ParentLost` was delivered).
    HandoffStart,
    /// A node reattached to a new parent (`Reattached`).
    HandoffEnd,
    /// A fast handoff completed for a mobile host.
    FastHandoff,
    /// A token arrived at a node.
    TokenGrant {
        /// Round sequence number carried by the token.
        seq: u64,
    },
    /// The token-loss timer fired (`TokenLost`).
    TokenLoss,
    /// The ring regenerated its token (`RingRepaired`).
    TokenRecovery {
        /// Nodes excluded by the repair.
        excluded: u32,
    },
    /// A scheduled link partition came into effect.
    PartitionStart,
    /// A scheduled link partition healed.
    PartitionHeal,
    /// A membership query was issued.
    QueryIssue,
    /// A membership query completed at its issuer.
    QueryAnswer {
        /// Responses aggregated into the result.
        responses: u32,
    },
    /// A node was crashed by the fault plan.
    Crash,
}

/// One flight-recorder entry: a typed event stamped with the engine's
/// tick clock and the node/ring-level coordinate it happened at.
///
/// Records carry *tick* time only — identical between the sequential and
/// parallel engines by construction. Wall-clock context belongs to the
/// exporter envelope, not the record, so trace equivalence is testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObsRecord {
    /// Engine tick at which the event was observed.
    pub at: u64,
    /// Node the event happened at.
    pub node: NodeId,
    /// Ring coordinate of the event.
    pub ring: RingId,
    /// Hierarchy level of that ring (0 = root).
    pub level: u8,
    /// What happened.
    pub kind: ObsKind,
}

/// Where flight-recorder records go. Engines call [`TraceSink::record`]
/// only when [`TraceSink::enabled`] is true, so a disabled sink costs one
/// branch on already-cold paths and nothing on hot ones.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Capture one record.
    fn record(&mut self, rec: ObsRecord);

    /// Whether this sink wants records at all. Engines skip record
    /// construction entirely when false.
    fn enabled(&self) -> bool {
        true
    }

    /// The retained records, oldest first. Sinks that do not retain
    /// (e.g. [`NullSink`]) return an empty vector.
    fn snapshot(&self) -> Vec<ObsRecord> {
        Vec::new()
    }

    /// Records discarded due to capacity, if the sink bounds memory.
    fn dropped(&self) -> u64 {
        0
    }
}

/// The zero-cost default sink: disabled, drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: ObsRecord) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A bounded ring-buffer trace sink: keeps the most recent `capacity`
/// records, counts what it evicts, never reallocates after filling.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<ObsRecord>,
    /// Index of the oldest record once the buffer has wrapped.
    head: usize,
    cap: usize,
    dropped: u64,
    total: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder { buf: Vec::with_capacity(cap), head: 0, cap, dropped: 0, total: 0 }
    }

    /// Total records ever offered, retained or not.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, rec: ObsRecord) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<ObsRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_is_nearest_rank_and_reads_are_shared() {
        let mut h = Histogram::new();
        for v in [5u64, 1, 9, 3, 7] {
            h.record(v);
        }
        let r = &h; // quantile must work through a shared reference
        assert_eq!(r.quantile(0.0), Some(1));
        assert_eq!(r.quantile(0.5), Some(5));
        assert_eq!(r.quantile(0.99), Some(9));
        assert_eq!(r.quantile(1.0), Some(9));
        assert_eq!(r.min(), Some(1));
        assert_eq!(r.max(), Some(9));
        assert_eq!(r.len(), 5);
        assert_eq!(r.sum(), 25);
        assert!((r.mean().unwrap() - 5.0).abs() < f64::EPSILON);
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [4u64, 8, 15] {
            a.record(v);
            all.record(v);
        }
        for v in [16u64, 23, 42, 8] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn level_histograms_grow_merge_and_pool() {
        let mut a = LevelHistograms::new();
        a.level_mut(2).repair.record(100);
        a.level_mut(0).join.record(7);
        assert_eq!(a.depth(), 3);
        assert!(a.get(1).is_some_and(LevelLatency::is_empty));

        let mut b = LevelHistograms::new();
        b.level_mut(2).repair.record(300);
        b.level_mut(3).query.record(9);
        a.merge(&b);
        assert_eq!(a.depth(), 4);
        assert_eq!(a.get(2).unwrap().repair.len(), 2);
        assert_eq!(a.repair_quantile(1.0), Some(300));
        assert_eq!(LevelHistograms::new().repair_quantile(0.5), None);
    }

    #[test]
    fn flight_recorder_bounds_memory_under_a_storm() {
        const CAP: usize = 4096;
        const STORM: u64 = 100_000;
        let mut rec = FlightRecorder::new(CAP);
        for i in 0..STORM {
            rec.record(ObsRecord {
                at: i,
                node: NodeId(i % 97),
                ring: RingId(3),
                level: 1,
                kind: ObsKind::TokenGrant { seq: i },
            });
        }
        assert_eq!(rec.len(), CAP);
        assert!(rec.buf.capacity() < CAP * 2, "buffer must never outgrow its capacity");
        assert_eq!(rec.total(), STORM);
        assert_eq!(rec.dropped(), STORM - CAP as u64);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), CAP);
        // Oldest-first, and only the newest CAP records survive.
        assert_eq!(snap.first().unwrap().at, STORM - CAP as u64);
        assert_eq!(snap.last().unwrap().at, STORM - 1);
        assert!(snap.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn null_sink_is_disabled_and_retains_nothing() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.record(ObsRecord {
            at: 0,
            node: NodeId(1),
            ring: RingId(0),
            level: 0,
            kind: ObsKind::Crash,
        });
        assert!(sink.snapshot().is_empty());
        assert_eq!(sink.dropped(), 0);
    }
}
