//! Multi-group hosting: one physical network entity serving several
//! groups.
//!
//! Every message is stamped with a `GID` (§4.2) precisely so that one
//! AP/AG/BR can participate in many groups at once — each group has its
//! own ring-based hierarchy, membership lists and token, all sharing the
//! entity's address. [`GroupHost`] is that demultiplexer: a map from
//! [`GroupId`] to an independent [`NodeState`], with envelope routing and
//! per-group timer scoping.

use crate::config::ProtocolConfig;
use crate::error::{Result, RgbError};
use crate::events::{Input, Output, TimerKind};
use crate::ids::{GroupId, NodeId};
use crate::message::Envelope;
use crate::node::NodeState;
use crate::topology::HierarchyLayout;
use std::collections::BTreeMap;

/// An output tagged with the group it belongs to. Substrates must scope
/// timers by `(host, gid, kind)` and stamp outgoing messages with `gid`
/// (which [`GroupHost::envelope`] does).
#[derive(Debug, Clone, PartialEq)]
pub struct HostOutput {
    /// The group the output belongs to.
    pub gid: GroupId,
    /// The protocol output.
    pub output: Output,
}

/// One physical entity participating in several groups.
#[derive(Debug, Clone)]
pub struct GroupHost {
    /// The entity's address, shared by all groups.
    pub id: NodeId,
    groups: BTreeMap<GroupId, NodeState>,
}

impl GroupHost {
    /// An empty host.
    pub fn new(id: NodeId) -> Self {
        GroupHost { id, groups: BTreeMap::new() }
    }

    /// Join a group: install this entity's protocol state for it. The
    /// state's node id must be the host's address.
    pub fn add_group(&mut self, state: NodeState) -> Result<()> {
        if state.id != self.id {
            return Err(RgbError::UnknownNode(state.id));
        }
        if self.groups.contains_key(&state.gid) {
            return Err(RgbError::GroupMismatch { expected: state.gid, got: state.gid });
        }
        self.groups.insert(state.gid, state);
        Ok(())
    }

    /// Convenience: join a group from a hierarchy layout.
    pub fn add_group_from_layout(
        &mut self,
        layout: &HierarchyLayout,
        cfg: ProtocolConfig,
    ) -> Result<()> {
        self.add_group(NodeState::from_layout(layout, self.id, cfg)?)
    }

    /// Leave a group entirely.
    pub fn remove_group(&mut self, gid: GroupId) -> Option<NodeState> {
        self.groups.remove(&gid)
    }

    /// Number of groups hosted.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Borrow one group's state.
    pub fn group(&self, gid: GroupId) -> Option<&NodeState> {
        self.groups.get(&gid)
    }

    /// Groups hosted, in id order.
    pub fn group_ids(&self) -> Vec<GroupId> {
        self.groups.keys().copied().collect()
    }

    /// Drive one group with an input.
    pub fn handle(&mut self, gid: GroupId, input: Input) -> Result<Vec<HostOutput>> {
        let state = self
            .groups
            .get_mut(&gid)
            .ok_or(RgbError::GroupMismatch { expected: GroupId(0), got: gid })?;
        Ok(state.handle(input).into_iter().map(|output| HostOutput { gid, output }).collect())
    }

    /// Route an incoming envelope to the right group. Envelopes for groups
    /// this host does not serve are dropped (returns an empty vec).
    pub fn handle_envelope(&mut self, from: NodeId, env: Envelope) -> Vec<HostOutput> {
        match self.groups.get_mut(&env.gid) {
            Some(state) => state
                .handle(Input::Msg { from, msg: env.msg })
                .into_iter()
                .map(|output| HostOutput { gid: env.gid, output })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Fire a timer scoped to one group.
    pub fn handle_timer(&mut self, gid: GroupId, kind: TimerKind) -> Vec<HostOutput> {
        self.handle(gid, Input::Timer(kind)).unwrap_or_default()
    }

    /// Boot every group.
    pub fn boot_all(&mut self) -> Vec<HostOutput> {
        let gids = self.group_ids();
        let mut outs = Vec::new();
        for gid in gids {
            if let Ok(mut o) = self.handle(gid, Input::Boot) {
                outs.append(&mut o);
            }
        }
        outs
    }

    /// Stamp a send output into a wire envelope for its group.
    pub fn envelope(gid: GroupId, output: &Output) -> Option<(NodeId, Envelope)> {
        match output {
            Output::Send { to, msg } => Some((*to, Envelope { gid, msg: msg.clone() })),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::AppEvent;
    use crate::ids::{Guid, Luid};
    use crate::message::MhEvent;
    use crate::topology::HierarchySpec;
    use std::collections::VecDeque;

    /// Minimal multi-group loopback: routes envelopes between hosts and
    /// ignores timers (on-demand policy needs none for these scenarios).
    struct HostNet {
        hosts: BTreeMap<NodeId, GroupHost>,
        queue: VecDeque<(NodeId, NodeId, Envelope)>,
        delivered: Vec<(NodeId, GroupId, AppEvent)>,
    }

    impl HostNet {
        fn new(layouts: &[&HierarchyLayout]) -> Self {
            let mut hosts: BTreeMap<NodeId, GroupHost> = BTreeMap::new();
            for layout in layouts {
                for &id in layout.nodes.keys() {
                    let host = hosts.entry(id).or_insert_with(|| GroupHost::new(id));
                    host.add_group_from_layout(layout, ProtocolConfig::default()).unwrap();
                }
            }
            HostNet { hosts, queue: VecDeque::new(), delivered: Vec::new() }
        }

        fn process(&mut self, from: NodeId, outs: Vec<HostOutput>) {
            for ho in outs {
                if let Some((to, env)) = GroupHost::envelope(ho.gid, &ho.output) {
                    self.queue.push_back((from, to, env));
                } else if let Output::Deliver(ev) = ho.output {
                    self.delivered.push((from, ho.gid, ev));
                }
            }
        }

        fn boot(&mut self) {
            let ids: Vec<NodeId> = self.hosts.keys().copied().collect();
            for id in ids {
                let outs = self.hosts.get_mut(&id).unwrap().boot_all();
                self.process(id, outs);
            }
        }

        fn run(&mut self) {
            let mut steps = 0;
            while let Some((from, to, env)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 1_000_000, "storm");
                if let Some(host) = self.hosts.get_mut(&to) {
                    let outs = host.handle_envelope(from, env);
                    self.process(to, outs);
                }
            }
        }

        fn inject_mh(&mut self, gid: GroupId, ap: NodeId, event: MhEvent) {
            let outs = self.hosts.get_mut(&ap).unwrap().handle(gid, Input::Mh(event)).unwrap();
            self.process(ap, outs);
            self.run();
        }
    }

    #[test]
    fn two_groups_on_shared_entities_stay_isolated() {
        // The same 13 physical entities serve two independent groups.
        let a = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
        let b = HierarchySpec::new(2, 3).build(GroupId(2)).unwrap();
        let mut net = HostNet::new(&[&a, &b]);
        net.boot();
        let ap = a.aps()[4];
        net.inject_mh(GroupId(1), ap, MhEvent::Join { guid: Guid(7), luid: Luid(1) });
        net.inject_mh(GroupId(2), ap, MhEvent::Join { guid: Guid(9), luid: Luid(1) });
        let root = a.root_ring().nodes[0];
        let host = &net.hosts[&root];
        let g1 = host.group(GroupId(1)).unwrap();
        let g2 = host.group(GroupId(2)).unwrap();
        assert!(g1.ring_members.contains_operational(Guid(7)));
        assert!(!g1.ring_members.contains_operational(Guid(9)));
        assert!(g2.ring_members.contains_operational(Guid(9)));
        assert!(!g2.ring_members.contains_operational(Guid(7)));
    }

    #[test]
    fn envelopes_for_unknown_groups_are_dropped() {
        let a = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
        let mut host = GroupHost::new(NodeId(0));
        host.add_group_from_layout(&a, ProtocolConfig::default()).unwrap();
        let env = Envelope {
            gid: GroupId(99),
            msg: crate::message::Msg::TokenAck { ring: crate::ids::RingId(0), seq: 1 },
        };
        assert!(host.handle_envelope(NodeId(1), env).is_empty());
    }

    #[test]
    fn duplicate_group_and_wrong_node_are_rejected() {
        let a = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
        let mut host = GroupHost::new(NodeId(0));
        host.add_group_from_layout(&a, ProtocolConfig::default()).unwrap();
        assert!(host.add_group_from_layout(&a, ProtocolConfig::default()).is_err());
        let other = NodeState::from_layout(&a, NodeId(1), ProtocolConfig::default()).unwrap();
        assert!(host.add_group(other).is_err());
        assert_eq!(host.group_count(), 1);
    }

    #[test]
    fn remove_group_stops_service() {
        let a = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
        let mut host = GroupHost::new(NodeId(0));
        host.add_group_from_layout(&a, ProtocolConfig::default()).unwrap();
        assert!(host.remove_group(GroupId(1)).is_some());
        assert_eq!(host.group_count(), 0);
        assert!(host.handle(GroupId(1), Input::Boot).is_err());
    }
}
