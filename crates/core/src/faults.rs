//! Declarative fault descriptions shared by every substrate.
//!
//! The paper's §5.2 model folds link faults into node faults; the scenario
//! explorer widens the fault space beyond it with *link-level* faults that
//! real mobile-Internet deployments exhibit. The types here are pure data —
//! the simulator schedules them as discrete events, the live runtime
//! applies them to its router — so one shrunk reproducer replays
//! identically on both worlds.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// A timed bidirectional link partition between one NE pair: from `at`
/// until `heal_at`, every frame between `a` and `b` (either direction) is
/// silently dropped. Frames already in flight when the partition starts
/// still arrive, matching how a real route withdrawal behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkPartition {
    /// When the link goes down (ticks).
    pub at: u64,
    /// When the link heals (ticks, exclusive; must be greater than `at`).
    pub heal_at: u64,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
}

impl LinkPartition {
    /// Whether this partition severs the (unordered) pair `x`–`y`.
    pub fn severs(&self, x: NodeId, y: NodeId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }

    /// Whether both endpoints lie on the given ring roster (an intra-ring
    /// partition can split a logical ring into independently progressing
    /// segments — the condition under which §4.3 consistency is *not*
    /// promised).
    pub fn intra_ring(&self, ring_nodes: &[NodeId]) -> bool {
        ring_nodes.contains(&self.a) && ring_nodes.contains(&self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severs_is_symmetric_and_exact() {
        let p = LinkPartition { at: 10, heal_at: 50, a: NodeId(1), b: NodeId(2) };
        assert!(p.severs(NodeId(1), NodeId(2)));
        assert!(p.severs(NodeId(2), NodeId(1)));
        assert!(!p.severs(NodeId(1), NodeId(3)));
        assert!(!p.severs(NodeId(3), NodeId(4)));
    }

    #[test]
    fn intra_ring_requires_both_endpoints() {
        let p = LinkPartition { at: 0, heal_at: 1, a: NodeId(1), b: NodeId(2) };
        assert!(p.intra_ring(&[NodeId(0), NodeId(1), NodeId(2)]));
        assert!(!p.intra_ring(&[NodeId(1), NodeId(3)]));
    }
}
