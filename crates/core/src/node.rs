//! Per-network-entity protocol state (paper §4.2, "Data structure of NEs").
//!
//! A [`NodeState`] holds everything one AP/AG/BR needs: its position in the
//! ring-based hierarchy (`Current`, `Leader`, `Previous`, `Next`, `Parent`,
//! `Child(ren)`), the Function-Well flags (`RingOK`, `ParentOK`, `ChildOK`),
//! the three member lists, and the self-aggregating message queue `MQ`.
//! Behaviour lives in the `protocol`, `query` and `handoff` modules, all of
//! which are `impl NodeState` blocks — the struct itself is pure data plus
//! small accessors.

use crate::config::{MembershipScheme, ProtocolConfig};
use crate::ids::{GroupId, NodeId, RingId, Tier};
use crate::member::MemberList;
use crate::message::{ChangeId, QueryId, QueryScope};
use crate::mq::MessageQueue;
use crate::ring::RingRoster;
use crate::token::Token;
use crate::topology::HierarchyLayout;
use std::collections::BTreeMap;

/// A token this node forwarded and is awaiting the acknowledgement for.
#[derive(Debug, Clone)]
pub struct Inflight {
    /// The forwarded token (kept for retransmission).
    pub token: Token,
    /// Where it was sent.
    pub target: NodeId,
    /// Retransmissions performed so far.
    pub attempts: u32,
}

/// Link to one sponsored child ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildLink {
    /// Current leader of the child ring (the paper's `Child` pointer).
    pub leader: NodeId,
    /// `ChildOK`: the child ring exists and functions well.
    pub ok: bool,
}

/// Aggregation state of one in-flight membership query this node issued.
#[derive(Debug, Clone)]
pub struct QueryAgg {
    /// What was asked.
    pub scope: QueryScope,
    /// Partial responses received so far.
    pub received: u32,
    /// Total responses expected (learned from the first response).
    pub expected: Option<u32>,
    /// Members aggregated so far.
    pub members: MemberList,
}

/// Counters exposed for tests, metrics and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Rounds this node started as holder.
    pub rounds_started: u64,
    /// Rounds completed (token returned to this node as holder).
    pub rounds_completed: u64,
    /// Change records executed.
    pub ops_executed: u64,
    /// Tokens forwarded to a successor.
    pub tokens_forwarded: u64,
    /// Token retransmissions.
    pub retransmits: u64,
    /// Successors excluded by local repair.
    pub exclusions: u64,
    /// Views installed.
    pub views_installed: u64,
}

/// The full protocol state of one network entity.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Protocol configuration.
    pub cfg: ProtocolConfig,
    /// Group served (paper: `GID`).
    pub gid: GroupId,
    /// This node (paper: `Current`).
    pub id: NodeId,
    /// Tier of this node.
    pub tier: Tier,
    /// Ring level (0 = topmost).
    pub level: usize,
    /// Height of the whole hierarchy.
    pub height: usize,
    /// Roster of this node's logical ring (provides `Leader`, `Previous`,
    /// `Next`).
    pub roster: RingRoster,
    /// Sponsor of this ring, one level up (paper: `Parent`). `None` at the
    /// topmost ring.
    pub parent: Option<NodeId>,
    /// Ring of the sponsor.
    pub parent_ring: Option<RingId>,
    /// Sponsored child rings (paper: `Child`; plural to support adoption
    /// after faults).
    pub children: BTreeMap<RingId, ChildLink>,
    /// `RingOK`: the token circulates normally on this ring.
    pub ring_ok: bool,
    /// `ParentOK`: parent exists and its ring functions well.
    pub parent_ok: bool,
    /// `ListOfLocalMembers`: MHs attached to this node (APs only).
    pub local_members: MemberList,
    /// `ListOfRingMembers`: operational members under the coverage of this
    /// ring (content gated by the membership scheme).
    pub ring_members: MemberList,
    /// `ListOfNeighborMembers`: members attached to this node's ring
    /// neighbours, for fast handoff.
    pub neighbor_members: MemberList,
    /// `MQ`: the self-aggregating message queue.
    pub mq: MessageQueue,
    /// Counters.
    pub stats: NodeStats,
    /// Number of rings per level in the hierarchy (for query fan-out
    /// accounting).
    pub level_ring_counts: Vec<usize>,

    // --- token machinery (crate-visible for tests) ---
    /// The token is parked at this node.
    pub(crate) has_token: bool,
    /// Highest round number seen on this ring.
    pub(crate) last_token_seq: u64,
    /// Outstanding forwarded token awaiting ack.
    pub(crate) inflight: Option<Inflight>,
    /// Ring view epoch (bumped on every loaded round executed).
    pub epoch: u64,
    /// Next local change sequence number.
    pub(crate) next_change_seq: u64,
    /// Next local query sequence number.
    pub(crate) next_query_seq: u64,
    /// Queries this node issued and is aggregating.
    pub(crate) pending_queries: BTreeMap<QueryId, QueryAgg>,
    /// Cached roster of the parent ring (from heartbeats), used for
    /// re-attachment when the parent node fails.
    pub(crate) parent_roster_cache: Vec<NodeId>,
    /// Re-attachment attempts since the parent was lost.
    pub(crate) attach_attempts: usize,
    /// Change ids this node originated and not yet seen agreed.
    pub(crate) awaiting_ack: BTreeMap<ChangeId, ()>,
    /// Whether a token has been sighted since the last TokenLost expiry
    /// (two consecutive silent expiries escalate to leader exclusion).
    pub(crate) token_seen_since_lost: bool,
}

impl NodeState {
    /// Approximate resident bytes of this node's state: the struct itself
    /// plus its owned collections at their current lengths (roster, member
    /// lists, message queue, query aggregations, caches). B-tree entries
    /// are charged a fixed per-entry overhead instead of being measured —
    /// this is a scaling estimate for capacity planning (`bytes/node` in
    /// the scale benchmarks), not an exact accounting.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        /// Charged per B-tree map entry beyond the payload (node headers,
        /// fill slack).
        const BTREE_OVERHEAD: usize = 32;
        let member = size_of::<crate::member::MemberInfo>() + BTREE_OVERHEAD;
        let members =
            self.local_members.len() + self.ring_members.len() + self.neighbor_members.len();
        size_of::<Self>()
            + std::mem::size_of_val(self.roster.nodes())
            + self.children.len() * (size_of::<ChildLink>() + BTREE_OVERHEAD)
            + members * member
            + self.mq.len() * 96
            + self.awaiting_ack.len() * (size_of::<ChangeId>() + BTREE_OVERHEAD)
            + self.pending_queries.len() * 160
            + self.level_ring_counts.len() * size_of::<usize>()
            + self.parent_roster_cache.len() * size_of::<NodeId>()
    }

    /// Build the state of node `id` from a hierarchy layout.
    pub fn from_layout(
        layout: &HierarchyLayout,
        id: NodeId,
        cfg: ProtocolConfig,
    ) -> crate::error::Result<Self> {
        let placement = layout.placement(id)?;
        let ring_spec = layout.ring(placement.ring)?;
        let roster =
            RingRoster::new(ring_spec.id, ring_spec.tier, ring_spec.level, ring_spec.nodes.clone());
        let height = layout.height();
        let mut children = BTreeMap::new();
        if let Some(cr) = placement.child_ring {
            let child_spec = layout.ring(cr)?;
            let leader = child_spec
                .nodes
                .iter()
                .copied()
                .min()
                .ok_or(crate::error::RgbError::EmptyRing(cr))?;
            children.insert(cr, ChildLink { leader, ok: true });
        }
        let level_ring_counts = (0..height).map(|l| layout.rings_at(l).count()).collect();
        Ok(NodeState {
            cfg,
            gid: layout.gid,
            id,
            tier: placement.tier,
            level: placement.level,
            height,
            roster,
            parent: placement.parent_node,
            parent_ring: placement.parent_ring,
            children,
            ring_ok: true,
            parent_ok: placement.parent_node.is_some(),
            local_members: MemberList::new(),
            ring_members: MemberList::new(),
            neighbor_members: MemberList::new(),
            mq: MessageQueue::new(),
            stats: NodeStats::default(),
            level_ring_counts,
            has_token: false,
            last_token_seq: 0,
            inflight: None,
            epoch: 0,
            next_change_seq: 0,
            next_query_seq: 0,
            pending_queries: BTreeMap::new(),
            parent_roster_cache: Vec::new(),
            attach_attempts: 0,
            awaiting_ack: BTreeMap::new(),
            token_seen_since_lost: false,
        })
    }

    /// This node's ring id.
    pub fn ring_id(&self) -> RingId {
        self.roster.id
    }

    /// Whether this node currently leads its ring.
    pub fn is_leader(&self) -> bool {
        self.roster.leader() == Some(self.id)
    }

    /// Current leader of this ring (paper: `Leader`).
    pub fn leader(&self) -> Option<NodeId> {
        self.roster.leader()
    }

    /// Successor on the ring (paper: `Next`).
    pub fn next(&self) -> Option<NodeId> {
        self.roster.next_of(self.id).ok()
    }

    /// Predecessor on the ring (paper: `Previous`).
    pub fn prev(&self) -> Option<NodeId> {
        self.roster.prev_of(self.id).ok()
    }

    /// Whether this node is at the bottommost (access-proxy) level.
    pub fn is_bottom(&self) -> bool {
        self.level + 1 == self.height
    }

    /// `ChildOK` for a specific ring.
    pub fn child_ok(&self, ring: RingId) -> bool {
        self.children.get(&ring).map(|c| c.ok).unwrap_or(false)
    }

    /// Whether this node's ring stores member lists under the configured
    /// membership scheme (§4.4). The bottommost level always keeps its own
    /// coverage; upper levels store only where the scheme places them.
    pub fn is_store_level(&self) -> bool {
        if self.is_bottom() {
            return true;
        }
        match self.cfg.scheme {
            MembershipScheme::Tms => self.level == 0,
            MembershipScheme::Bms => false,
            MembershipScheme::Ims { level } => self.level == level as usize,
        }
    }

    /// The level queried under the configured scheme.
    pub fn query_target_level(&self) -> usize {
        match self.cfg.scheme {
            MembershipScheme::Tms => 0,
            MembershipScheme::Bms => self.height - 1,
            MembershipScheme::Ims { level } => (level as usize).min(self.height - 1),
        }
    }

    /// Whether the token is parked at this node (test/diagnostic hook).
    pub fn holds_token(&self) -> bool {
        self.has_token
    }

    /// Allocate the next change id.
    pub(crate) fn next_change_id(&mut self) -> ChangeId {
        let id = ChangeId { origin: self.id, seq: self.next_change_seq };
        self.next_change_seq += 1;
        id
    }

    /// Allocate the next query id.
    pub(crate) fn next_query_id(&mut self) -> QueryId {
        let id = QueryId { origin: self.id, seq: self.next_query_seq };
        self.next_query_seq += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::HierarchySpec;

    fn layout_h3_r3() -> HierarchyLayout {
        HierarchySpec::new(3, 3).build(GroupId(1)).unwrap()
    }

    #[test]
    fn from_layout_populates_position() {
        let layout = layout_h3_r3();
        // node 0 is the first node of the root ring
        let n0 = NodeState::from_layout(&layout, NodeId(0), ProtocolConfig::default()).unwrap();
        assert_eq!(n0.level, 0);
        assert_eq!(n0.tier, Tier::BorderRouter);
        assert!(n0.parent.is_none());
        assert!(!n0.parent_ok);
        assert_eq!(n0.children.len(), 1);
        assert!(n0.is_leader());
        assert!(!n0.is_bottom());

        // a bottom node
        let ap = *layout.aps().first().unwrap();
        let nb = NodeState::from_layout(&layout, ap, ProtocolConfig::default()).unwrap();
        assert!(nb.is_bottom());
        assert_eq!(nb.tier, Tier::AccessProxy);
        assert!(nb.parent.is_some());
        assert!(nb.children.is_empty());
    }

    #[test]
    fn child_pointer_is_child_ring_min_id() {
        let layout = layout_h3_r3();
        let n0 = NodeState::from_layout(&layout, NodeId(0), ProtocolConfig::default()).unwrap();
        let (&cr, link) = n0.children.iter().next().unwrap();
        let spec = layout.ring(cr).unwrap();
        assert_eq!(Some(link.leader), spec.nodes.iter().copied().min());
        assert!(link.ok);
    }

    #[test]
    fn store_levels_by_scheme() {
        let layout = layout_h3_r3();
        let mk = |id: u64, scheme| {
            let cfg = ProtocolConfig { scheme, ..ProtocolConfig::default() };
            NodeState::from_layout(&layout, NodeId(id), cfg).unwrap()
        };
        // TMS: root stores, middle does not, bottom stores local coverage.
        assert!(mk(0, MembershipScheme::Tms).is_store_level());
        let mid_id = layout.rings_at(1).next().unwrap().nodes[0].0;
        assert!(!mk(mid_id, MembershipScheme::Tms).is_store_level());
        let ap = layout.aps()[0].0;
        assert!(mk(ap, MembershipScheme::Tms).is_store_level());
        // BMS: only bottom.
        assert!(!mk(0, MembershipScheme::Bms).is_store_level());
        assert!(mk(ap, MembershipScheme::Bms).is_store_level());
        // IMS level 1: middle stores.
        assert!(mk(mid_id, MembershipScheme::Ims { level: 1 }).is_store_level());
        assert!(!mk(0, MembershipScheme::Ims { level: 1 }).is_store_level());
    }

    #[test]
    fn query_target_levels() {
        let layout = layout_h3_r3();
        let mk = |scheme| {
            let cfg = ProtocolConfig { scheme, ..ProtocolConfig::default() };
            NodeState::from_layout(&layout, NodeId(0), cfg).unwrap()
        };
        assert_eq!(mk(MembershipScheme::Tms).query_target_level(), 0);
        assert_eq!(mk(MembershipScheme::Bms).query_target_level(), 2);
        assert_eq!(mk(MembershipScheme::Ims { level: 1 }).query_target_level(), 1);
        assert_eq!(mk(MembershipScheme::Ims { level: 9 }).query_target_level(), 2);
    }

    #[test]
    fn next_prev_follow_roster() {
        let layout = layout_h3_r3();
        let n = NodeState::from_layout(&layout, NodeId(1), ProtocolConfig::default()).unwrap();
        assert_eq!(n.next(), Some(NodeId(2)));
        assert_eq!(n.prev(), Some(NodeId(0)));
        assert_eq!(n.leader(), Some(NodeId(0)));
    }

    #[test]
    fn change_and_query_ids_are_sequential() {
        let layout = layout_h3_r3();
        let mut n = NodeState::from_layout(&layout, NodeId(0), ProtocolConfig::default()).unwrap();
        let a = n.next_change_id();
        let b = n.next_change_id();
        assert_eq!(a.seq + 1, b.seq);
        assert_eq!(a.origin, NodeId(0));
        let q1 = n.next_query_id();
        let q2 = n.next_query_id();
        assert_eq!(q1.seq + 1, q2.seq);
    }

    #[test]
    fn level_ring_counts_match_layout() {
        let layout = layout_h3_r3();
        let n = NodeState::from_layout(&layout, NodeId(0), ProtocolConfig::default()).unwrap();
        assert_eq!(n.level_ring_counts, vec![1, 3, 9]);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let layout = layout_h3_r3();
        assert!(NodeState::from_layout(&layout, NodeId(9999), ProtocolConfig::default()).is_err());
    }
}
