//! Differential test of the substrates: one declarative [`Scenario`]
//! (2-tier hierarchy, one NE crash, one mobile-host handoff) executed on
//! the deterministic discrete-event simulator AND on the live reactor
//! runtime — through the same `Scenario::run_on` API — asserting the final
//! membership views agree node-for-node.
//!
//! This is the payoff of the substrate layer: both worlds interpret
//! protocol outputs through the same `apply_outputs` driver and the same
//! wire codec, so the only thing allowed to differ is timing — never the
//! converged state.

use rgb_core::prelude::*;
use rgb_net::LiveConfig;
use rgb_sim::{Backend, NetConfig, Scenario};
use std::time::Duration;

/// The live-cluster test configuration: continuous tokens with short
/// timeouts so crash repair and propagation finish within the scenario.
fn fast_cfg() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 5;
    cfg.token_retransmit_timeout = 20;
    cfg.token_retransmit_limit = 2;
    cfg.token_lost_timeout = 150;
    cfg.heartbeat_interval = 20;
    cfg.parent_timeout = 100;
    cfg.child_timeout = 100;
    cfg
}

#[test]
fn same_scenario_converges_to_the_same_views_on_both_substrates() {
    let sc = Scenario::new("differential: 2-tier, 1 crash, 1 handoff", 2, 3)
        .with_cfg(fast_cfg())
        .with_net(NetConfig::unit())
        .with_seed(42)
        .with_duration(2_000);
    let layout = sc.layout();
    let aps = layout.aps();
    let root = layout.root_ring().nodes.clone();
    // Three members join across the hierarchy; one hands off between two
    // proxies of the same bottom ring; a non-leader root-ring node crashes
    // after everything has propagated (its child ring must re-attach).
    let sc = sc
        .join(0, aps[0], Guid(1), Luid(1))
        .join(3, aps[4], Guid(2), Luid(1))
        .join(6, aps[8], Guid(3), Luid(1))
        .mh(500, aps[1], MhEvent::HandoffIn { guid: Guid(1), luid: Luid(2), from: Some(aps[0]) })
        .crash(1_000, root[2]);

    let (sim_out, sim_digest) = sc.run_on_digest(Backend::Sim).expect("valid scenario");
    let live = LiveConfig::default().with_settle(Duration::from_secs(15));
    let (live_out, live_digest) =
        sc.run_on_digest(Backend::Live(&live)).expect("live cluster deploys");

    assert_eq!(sim_out.crashed, live_out.crashed);

    // The alive root-ring nodes agree within each substrate and hold
    // exactly the scheduled membership...
    let alive_root: Vec<NodeId> = root.iter().copied().filter(|&n| n != root[2]).collect();
    let expected = sc.expected_guids();
    let sim_view = sim_out.agreed_view(&alive_root).expect("sim root ring agrees");
    assert_eq!(sim_view, expected, "sim root view != schedule expectation");
    let live_view = live_out.agreed_view(&alive_root).expect("live root ring agrees");

    // ...and the two substrates agree with each other, node for node.
    assert_eq!(sim_view, live_view, "root views diverge between substrates");
    let all_nodes: Vec<NodeId> = layout.nodes.keys().copied().collect();
    if let Some(diff) = sim_out.diff(&live_out, &all_nodes) {
        panic!("substrate views diverged:\n{diff}");
    }

    // Digest-level parity: per-node membership views and the crashed set
    // match (timing-dependent fields like epochs are exempt by design).
    assert!(live_digest.settled, "live run did not settle within the budget");
    if let Some(report) = sim_digest.view_divergence(&live_digest) {
        panic!("digest views diverged:\n{report}");
    }
}
