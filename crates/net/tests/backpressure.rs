//! Backpressure tests: bounded worker mailboxes must bound memory — a slow
//! (or wedged) receiver costs dropped frames, never unbounded queue growth
//! or a deadlocked reactor.

use rgb_core::prelude::*;
use rgb_net::{Cluster, LiveConfig, Router, SendOutcome, ToWorker};
use std::time::Duration;

/// A receiver that never drains caps its mailbox at exactly the configured
/// capacity; every further frame is a counted backpressure drop, and the
/// sender is never parked (the send path stays non-blocking).
#[test]
fn slow_node_bounds_mailbox_memory() {
    const CAPACITY: usize = 4;
    const FLOOD: u64 = 10_000;
    let router = Router::new();
    let (tx, rx) = crossbeam::channel::bounded(CAPACITY);
    router.register(NodeId(7), tx);
    let mut delivered = 0u64;
    let mut backpressure = 0u64;
    for seq in 0..FLOOD {
        match router.send(GroupId(1), NodeId(1), NodeId(7), Msg::TokenAck { ring: RingId(0), seq })
        {
            SendOutcome::Delivered => delivered += 1,
            SendOutcome::Backpressure => backpressure += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(delivered, CAPACITY as u64, "only the mailbox capacity is ever queued");
    assert_eq!(backpressure, FLOOD - CAPACITY as u64);
    assert_eq!(router.backpressure_dropped(), backpressure);
    assert_eq!(router.dropped(), 0, "backpressure is not an unroutable drop");
    // The queue itself holds exactly CAPACITY frames — memory is bounded by
    // configuration, not by the sender's rate.
    let mut queued = 0usize;
    while rx.try_recv().is_ok() {
        queued += 1;
    }
    assert_eq!(queued, CAPACITY);
}

/// A live cluster squeezed to one-slot mailboxes keeps running: frames are
/// dropped under pressure (and counted in [`rgb_net::ClusterStats`]) but the
/// reactor never deadlocks — the operator API still answers and shutdown
/// still joins every worker.
#[test]
fn one_slot_mailboxes_backpressure_without_deadlock() {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 5;
    cfg.token_retransmit_timeout = 20;
    cfg.token_lost_timeout = 150;
    cfg.heartbeat_interval = 20;
    let layout = HierarchySpec::new(1, 4).build(GroupId(1)).unwrap();
    let live = LiveConfig::default().with_mailbox_capacity(1);
    let cluster = Cluster::try_new(layout, &cfg, &live).expect("cluster starts");

    // Token circulation alone forces backpressure: forwarding the token and
    // acking it are two sends into the same one-slot mailbox.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while cluster.stats().backpressure_dropped == 0 {
        assert!(std::time::Instant::now() < deadline, "one-slot mailboxes never saw backpressure");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The reactor is still alive and serving: snapshots answer and per-node
    // protocol state is intact.
    let node = cluster.layout.root_ring().nodes[0];
    let snap = cluster.snapshot(node, Duration::from_secs(5)).expect("snapshot under pressure");
    assert_eq!(snap.id, node);

    let stats = cluster.stats();
    assert!(stats.backpressure_dropped > 0);
    assert!(stats.frames_sent > 0, "traffic kept flowing despite drops");
    cluster.shutdown(); // must not hang
}

/// The operator-facing app-event channel is bounded too: when nobody drains
/// it, events are dropped with a counter instead of growing without bound.
#[test]
fn app_event_channel_is_bounded_with_a_drop_counter() {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 5;
    cfg.heartbeat_interval = 20;
    let layout = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
    let live = LiveConfig::default().with_event_capacity(2);
    let cluster = Cluster::try_new(layout, &cfg, &live).expect("cluster starts");
    let nodes = cluster.layout.root_ring().nodes.clone();
    // Each agreed join raises `ViewChange`/`Agreed` events at every ring
    // node; with a two-slot events channel and no consumer, most of them
    // must be counted drops.
    for i in 0..16u64 {
        cluster.mh_event(nodes[(i % 3) as usize], MhEvent::Join { guid: Guid(i), luid: Luid(1) });
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while cluster.stats().app_events_dropped == 0 {
        assert!(std::time::Instant::now() < deadline, "event channel never overflowed");
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = cluster.stats();
    assert!(stats.app_events >= 2, "the bounded slots still delivered");
    assert!(stats.app_events_dropped > 0);
    cluster.shutdown();
}

/// `ToWorker` frames keep flowing through the same bounded path the router
/// uses — a direct mailbox send observes the identical capacity limit.
#[test]
fn worker_mailbox_capacity_is_the_router_capacity() {
    let router = Router::new();
    let (tx, _rx) = crossbeam::channel::bounded(1);
    router.register(NodeId(2), tx.clone());
    // Fill the single slot directly, as a worker-local send would.
    tx.try_send(ToWorker::Stop).unwrap();
    let out =
        router.send(GroupId(1), NodeId(1), NodeId(2), Msg::TokenAck { ring: RingId(0), seq: 0 });
    assert_eq!(out, SendOutcome::Backpressure);
}
