//! Differential replay of explorer artifacts and the named regression
//! scenario on the **live** substrate.
//!
//! Three claims are pinned here:
//!
//! 1. the committed `tests/repros/` artifact parses and replays to the
//!    same converged views on both substrates (reproducers cannot rot);
//! 2. the named leader-crash-during-handoff scenario reaches post-repair
//!    ring agreement on the live runtime too (the sim half lives in
//!    `crates/sim/tests/leader_crash_handoff.rs`);
//! 3. the acceptance pipeline end-to-end: a deliberately broken oracle
//!    (inverted epoch check) yields a shrunk reproducer at ≤ 25% of the
//!    original scheduled events whose artifact replays to the *same*
//!    violation on the simulator **and** on the live substrate.

use rgb_core::prelude::*;
use rgb_net::LiveConfig;
use rgb_sim::explore::oracle::{check_digest, Oracle, Violation};
use rgb_sim::explore::{artifact, Explorer, ScenarioGen};
use rgb_sim::{Backend, Scenario};
use std::time::Duration;

fn committed_artifact(name: &str) -> Scenario {
    let path = format!("{}/../../tests/repros/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    artifact::parse(&text).expect("committed artifact parses")
}

#[test]
fn committed_artifact_replays_identically_on_both_substrates() {
    let sc = committed_artifact("leader_crash_during_handoff.scn");
    let sim_out = sc.run_on(Backend::Sim).expect("valid scenario");
    let live = LiveConfig::default().with_settle(Duration::from_secs(15));
    let (live_out, live_digest) =
        sc.run_on_digest(Backend::Live(&live)).expect("live cluster deploys");

    assert_eq!(sim_out.crashed, live_out.crashed);
    let all_nodes: Vec<NodeId> = sc.layout().nodes.keys().copied().collect();
    if let Some(diff) = sim_out.diff(&live_out, &all_nodes) {
        panic!("substrate views diverged:\n{diff}");
    }

    // Post-repair ring agreement on the live substrate (satellite claim):
    // the surviving bottom-ring proxies and the root ring all hold the
    // schedule's expected membership.
    let layout = sc.layout();
    let aps = layout.aps();
    let crashed = sc.crashes[0].node;
    let bottom = layout.placement(aps[0]).unwrap().ring;
    let expected = sc.expected_guids();
    for &n in layout.ring(bottom).unwrap().nodes.iter().filter(|&&n| n != crashed) {
        assert_eq!(
            live_out.views.get(&n),
            Some(&expected),
            "live bottom-ring view at {n} diverged post-repair"
        );
    }
    for &n in &layout.root_ring().nodes {
        assert_eq!(live_out.views.get(&n), Some(&expected), "live root view at {n}");
    }

    // The live digest passes the same standard oracle battery that
    // watched the simulated run continuously.
    let mut oracles = rgb_sim::explore::standard_oracles(&sc);
    check_digest(&mut oracles, &live_digest).expect("live replay violates an oracle");
}

/// The acceptance criterion's deliberately broken invariant: an inverted
/// epoch check that fires when ring peers *agree* — which every healthy
/// run eventually does, on either substrate.
#[derive(Debug, Default)]
struct InvertedEpochCheck;

impl Oracle for InvertedEpochCheck {
    fn name(&self) -> &'static str {
        "inverted_epoch_check"
    }

    fn check_settled(&mut self, digest: &SystemDigest) -> Result<(), Violation> {
        for (ring, nodes) in digest.by_ring() {
            for (i, a) in nodes.iter().enumerate() {
                for b in &nodes[i + 1..] {
                    if a.epoch == b.epoch && a.members == b.members {
                        return Err(Violation {
                            oracle: self.name(),
                            at: digest.now,
                            detail: format!("ring {ring}: {} and {} agree", a.node, b.node),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

fn broken_battery(_: &Scenario) -> Vec<Box<dyn Oracle>> {
    vec![Box::new(InvertedEpochCheck)]
}

#[test]
fn broken_invariant_shrinks_and_replays_on_both_substrates() {
    // A generated scenario with a substantial schedule.
    let explorer = Explorer::default();
    let gen = ScenarioGen::smoke(11);
    let scenario = (0..32)
        .map(|i| gen.scenario(i))
        .find(|sc| sc.scheduled_events() >= 20)
        .expect("generator produces a loaded scenario");

    let mut oracles = broken_battery(&scenario);
    let report = explorer.run_scenario_with(&scenario, &mut oracles).unwrap();
    let violation = report.violation.expect("inverted check fires on a healthy run");

    // Shrink and persist the artifact like the explore bin would.
    let found = explorer.shrink_violation_with(0, &scenario, &violation, broken_battery);
    assert!(
        found.shrunk.scheduled_events() * 4 <= scenario.scheduled_events(),
        "shrunk reproducer keeps {} of {} scheduled events (> 25%)",
        found.shrunk.scheduled_events(),
        scenario.scheduled_events()
    );
    let dir = std::env::temp_dir().join("rgb_repro_replay_test");
    let path = found.write_artifact(&dir).expect("write artifact");
    let text = std::fs::read_to_string(&path).unwrap();
    let shrunk = artifact::parse(&text).expect("artifact parses");
    assert_eq!(shrunk, found.shrunk);

    // Replay on the simulator: same violation.
    let mut oracles = broken_battery(&shrunk);
    let sim_replay = explorer.run_scenario_with(&shrunk, &mut oracles).unwrap();
    assert_eq!(
        sim_replay.violation.as_ref().map(|v| v.oracle),
        Some("inverted_epoch_check"),
        "sim replay lost the violation"
    );

    // Replay on the live substrate: the final settled digest trips the
    // same oracle.
    let live = LiveConfig::default().with_settle(Duration::from_secs(10));
    let (_, digest) = shrunk.run_on_digest(Backend::Live(&live)).expect("live cluster deploys");
    let mut oracles = broken_battery(&shrunk);
    let live_verdict = check_digest(&mut oracles, &digest);
    assert_eq!(
        live_verdict.unwrap_err().oracle,
        "inverted_epoch_check",
        "live replay must reproduce the same violation"
    );
}
