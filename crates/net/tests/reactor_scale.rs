//! Scale differential tests: the reactor runtime drives thousands of
//! multiplexed nodes on a handful of worker threads and still converges to
//! the exact membership views the discrete-event simulator computes for the
//! same [`Scenario`].
//!
//! These are wall-clock tests (seconds of real time per run), so they are
//! ignored under debug builds — the release-mode `live-smoke` CI job and
//! `cargo test --release` run them.

use rgb_core::prelude::*;
use rgb_net::LiveConfig;
use rgb_sim::{Backend, NetConfig, Scenario};
use std::time::Duration;

/// Token/heartbeat cadence tuned for thousands of nodes per worker: wide
/// enough that one reactor thread keeps up with every ring it hosts, tight
/// enough that propagation and settling finish in seconds.
fn scale_cfg() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 20;
    cfg.token_retransmit_timeout = 60;
    cfg.token_lost_timeout = 400;
    cfg.heartbeat_interval = 50;
    cfg.parent_timeout = 200;
    cfg.child_timeout = 200;
    cfg
}

/// Build the scale scenario: joins spread across the leaf proxies of an
/// (h, r) hierarchy, long enough for three levels of propagation.
fn scale_scenario(name: &'static str, h: usize, r: usize) -> Scenario {
    // Unit latencies: digest parity is a membership property, and unit
    // ticks keep the simulated 3,000-tick window comfortably inside every
    // token/retransmit budget at 13–17-node ring sizes.
    let sc = Scenario::new(name, h, r)
        .with_cfg(scale_cfg())
        .with_net(NetConfig::unit())
        .with_seed(7)
        .with_duration(3_000);
    let aps = sc.layout().aps();
    let n = aps.len();
    let mut sc = sc;
    for (i, &idx) in [0, n / 4, n / 2, 3 * n / 4, n - 1].iter().enumerate() {
        sc = sc.join(i as u64 * 40, aps[idx], Guid(1_000 + i as u64), Luid(1));
    }
    sc
}

/// Run one scenario on `Backend::Sim` and `Backend::Live`, assert digest
/// parity, and return the live run's wall-clock time.
fn assert_parity(sc: &Scenario, live: &LiveConfig) -> Duration {
    let (_, sim_digest) = sc.run_on_digest(Backend::Sim).expect("valid scenario");
    let started = std::time::Instant::now();
    let (_, live_digest) = sc.run_on_digest(Backend::Live(live)).expect("live cluster deploys");
    let elapsed = started.elapsed();
    assert!(live_digest.settled, "live run did not settle within the budget");
    assert_eq!(sim_digest.nodes.len(), live_digest.nodes.len());
    if let Some(report) = sim_digest.view_divergence(&live_digest) {
        panic!("digest views diverged at {} nodes:\n{report}", sim_digest.nodes.len());
    }
    elapsed
}

/// 2,379 multiplexed nodes (h=3, r=13) on the default worker pool agree
/// with the simulator node-for-node. This is the CI `live-smoke` gate, so
/// it also enforces its own wall-clock budget.
#[test]
#[cfg_attr(debug_assertions, ignore = "wall-clock scale test: run with --release")]
fn reactor_matches_sim_at_2k_nodes() {
    let sc = scale_scenario("scale: 2.4k nodes, 5 joins", 3, 13);
    assert_eq!(sc.layout().node_count(), 2_379);
    let live = LiveConfig::default()
        .with_tick(Duration::from_millis(2))
        .with_settle(Duration::from_secs(120));
    let elapsed = assert_parity(&sc, &live);
    assert!(
        elapsed < Duration::from_secs(300),
        "live-smoke budget blown: {elapsed:?} for 2,379 nodes"
    );
}

/// The ISSUE acceptance bar: a 5,219-node scenario (h=3, r=17) completes on
/// at most 8 reactor workers with `SystemDigest` parity against the
/// simulator.
#[test]
#[cfg_attr(debug_assertions, ignore = "wall-clock scale test: run with --release")]
fn reactor_matches_sim_at_5k_nodes_on_8_workers() {
    let sc = scale_scenario("scale: 5.2k nodes, 5 joins, 8 workers", 3, 17);
    assert_eq!(sc.layout().node_count(), 5_219);
    let live = LiveConfig::default()
        .with_workers(8)
        .with_tick(Duration::from_millis(2))
        .with_settle(Duration::from_secs(180));
    assert_parity(&sc, &live);
}
