//! End-to-end tests of the live reactor runtime: a real concurrent RGB
//! deployment (a small worker pool multiplexing every NE, wire-encoded
//! frames) doing joins, queries, handoffs and crash recovery.

use rgb_core::prelude::*;
use rgb_net::{Cluster, LiveConfig};
use std::time::Duration;

fn fast_cfg() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::live();
    cfg.token_interval = 5;
    cfg.token_retransmit_timeout = 20;
    cfg.token_retransmit_limit = 2;
    cfg.token_lost_timeout = 150;
    cfg.heartbeat_interval = 20;
    cfg.parent_timeout = 100;
    cfg.child_timeout = 100;
    cfg
}

fn start(h: usize, r: usize) -> Cluster {
    let layout = HierarchySpec::new(h, r).build(GroupId(1)).unwrap();
    // 1 tick = 1 ms of real time (the LiveConfig default).
    Cluster::try_new(layout, &fast_cfg(), &LiveConfig::default()).expect("cluster starts")
}

#[test]
fn live_join_reaches_the_root_ring() {
    let cluster = start(2, 3);
    let ap = cluster.layout.aps()[4];
    cluster.mh_event(ap, MhEvent::Join { guid: Guid(42), luid: Luid(1) });
    let root = cluster.layout.root_ring().nodes[0];
    assert!(
        cluster.wait_member_at(root, Guid(42), Duration::from_secs(10)),
        "join never reached the root ring"
    );
    cluster.shutdown();
}

#[test]
fn live_concurrent_joins_from_every_proxy() {
    let cluster = start(2, 3);
    let aps = cluster.layout.aps();
    for (i, &ap) in aps.iter().enumerate() {
        cluster.mh_event(ap, MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) });
    }
    let root = cluster.layout.root_ring().nodes[0];
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut done = false;
    while std::time::Instant::now() < deadline {
        if let Some(snap) = cluster.snapshot(root, Duration::from_secs(1)) {
            if snap.ring_members.operational_count() == aps.len() {
                done = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(done, "root never saw all {} members", aps.len());
    cluster.shutdown();
}

#[test]
fn live_query_returns_global_membership() {
    let cluster = start(2, 3);
    let aps = cluster.layout.aps();
    for (i, &ap) in aps.iter().enumerate() {
        cluster.mh_event(ap, MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) });
    }
    let root = cluster.layout.root_ring().nodes[0];
    assert!(cluster.wait_member_at(root, Guid(8), Duration::from_secs(10)));
    // wait until all 9 reached the root, then query from an AP
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        let snap = cluster.snapshot(root, Duration::from_secs(1)).unwrap();
        if snap.ring_members.operational_count() == 9 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.query(aps[0], QueryScope::Global);
    let members = cluster.wait_event(Duration::from_secs(10), |node, ev| match ev {
        AppEvent::QueryResult { members, .. } if node == aps[0] => Some(members.clone()),
        _ => None,
    });
    let members = members.expect("query answered");
    assert_eq!(members.operational_count(), 9);
    cluster.shutdown();
}

#[test]
fn live_leave_is_removed_at_the_root() {
    let cluster = start(2, 3);
    let ap = cluster.layout.aps()[0];
    let root = cluster.layout.root_ring().nodes[0];
    cluster.mh_event(ap, MhEvent::Join { guid: Guid(7), luid: Luid(1) });
    assert!(cluster.wait_member_at(root, Guid(7), Duration::from_secs(10)));
    cluster.mh_event(ap, MhEvent::Leave { guid: Guid(7) });
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut gone = false;
    while std::time::Instant::now() < deadline {
        let snap = cluster.snapshot(root, Duration::from_secs(1)).unwrap();
        if !snap.ring_members.contains_operational(Guid(7)) {
            gone = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(gone, "leave never propagated");
    cluster.shutdown();
}

#[test]
fn live_crash_is_repaired_and_protocol_continues() {
    let cluster = start(1, 4); // a single ring of four proxies
    let nodes = cluster.layout.root_ring().nodes.clone();
    // Let the ring circulate, then kill a non-leader node.
    std::thread::sleep(Duration::from_millis(100));
    let victim = nodes[2];
    cluster.crash(victim);
    // Survivors must exclude the victim from their rosters.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut repaired = false;
    while std::time::Instant::now() < deadline {
        let ok = nodes.iter().filter(|&&n| n != victim).all(|&n| {
            cluster.snapshot(n, Duration::from_secs(1)).map(|s| s.roster_len == 3).unwrap_or(false)
        });
        if ok {
            repaired = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(repaired, "ring never repaired after crash");
    // The repaired ring still agrees on new members.
    cluster.mh_event(nodes[0], MhEvent::Join { guid: Guid(5), luid: Luid(1) });
    assert!(
        cluster.wait_member_at(nodes[1], Guid(5), Duration::from_secs(10)),
        "post-repair join failed"
    );
    let stats = cluster.stats();
    assert!(stats.dropped_frames > 0, "crash produced no drops");
    assert!(stats.frames_sent > 0);
    // `NodeSnapshot::dropped_frames` is genuinely per-node: the victim's
    // ring predecessor kept retransmitting the token into the void, so ITS
    // counter moved; and no node can have dropped more alone than the
    // whole cluster did in total.
    let predecessor = cluster.snapshot(nodes[1], Duration::from_secs(1)).unwrap();
    assert!(predecessor.dropped_frames > 0, "token predecessor recorded no drops");
    let total = cluster.stats();
    for &n in nodes.iter().filter(|&&n| n != victim) {
        let snap = cluster.snapshot(n, Duration::from_secs(1)).unwrap();
        assert!(
            snap.dropped_frames <= total.dropped_frames + total.backpressure_dropped,
            "per-node drops at {n} exceed the cluster-wide total"
        );
    }
    cluster.shutdown();
}

#[test]
fn live_handoff_moves_member_between_proxies() {
    let cluster = start(1, 4);
    let nodes = cluster.layout.root_ring().nodes.clone();
    let (a, b) = (nodes[1], nodes[2]);
    cluster.mh_event(a, MhEvent::Join { guid: Guid(3), luid: Luid(1) });
    assert!(cluster.wait_member_at(b, Guid(3), Duration::from_secs(10)));
    cluster.mh_event(b, MhEvent::HandoffIn { guid: Guid(3), luid: Luid(2), from: Some(a) });
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut moved = false;
    while std::time::Instant::now() < deadline {
        let snap = cluster.snapshot(nodes[0], Duration::from_secs(1)).unwrap();
        if snap.ring_members.get(Guid(3)).map(|m| m.ap) == Some(b) {
            moved = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(moved, "handoff never updated the member location");
    cluster.shutdown();
}

#[test]
fn shutdown_joins_all_workers() {
    let cluster = start(2, 2);
    cluster.shutdown(); // must not hang
}

#[test]
fn explicit_worker_counts_deploy_and_converge() {
    // One worker (fully multiplexed) and more workers than rings (clamped)
    // must both behave identically to the default pool.
    for workers in [1usize, 64] {
        let layout = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
        let cluster =
            Cluster::try_new(layout, &fast_cfg(), &LiveConfig::default().with_workers(workers))
                .expect("cluster starts");
        assert!(cluster.worker_count() >= 1);
        assert!(cluster.worker_count() <= cluster.layout.ring_count());
        let ap = cluster.layout.aps()[0];
        cluster.mh_event(ap, MhEvent::Join { guid: Guid(9), luid: Luid(1) });
        let root = cluster.layout.root_ring().nodes[0];
        assert!(
            cluster.wait_member_at(root, Guid(9), Duration::from_secs(10)),
            "join never converged with {workers} requested workers"
        );
        cluster.shutdown();
    }
}

#[test]
fn invalid_config_is_a_typed_error_not_a_panic() {
    let layout = HierarchySpec::new(1, 3).build(GroupId(1)).unwrap();
    let err = match Cluster::try_new(
        layout,
        &fast_cfg(),
        &LiveConfig::default().with_tick(Duration::ZERO),
    ) {
        Err(err) => err,
        Ok(cluster) => {
            cluster.shutdown();
            panic!("zero tick must be rejected");
        }
    };
    assert!(err.to_string().contains("tick"), "error names the field: {err}");
}
