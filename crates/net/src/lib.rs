//! # rgb-net — live threaded runtime for RGB
//!
//! Deploys a ring-based hierarchy as real concurrency: one thread per
//! network entity ([`runtime`]), crossbeam-channel transport carrying the
//! binary wire format of `rgb-core::wire` ([`transport`]), and an operator
//! API over the running deployment ([`cluster`]). This is the §4.3 claim —
//! "the proposed protocol runs in a parallel and distributed way" —
//! executed literally, with the same sans-IO state machines the simulator
//! drives.
//!
//! The runtime is the second implementation of `rgb_core`'s substrate
//! layer: protocol outputs flow through the shared
//! `rgb_core::substrate::apply_outputs` driver (wire-encoding every send),
//! and declarative `rgb_sim::Scenario` experiments replay here unchanged
//! via [`scenario::run_scenario`] — the differential tests compare the two
//! substrates' final views.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod runtime;
pub mod scenario;
pub mod transport;

pub use cluster::LiveCluster;
pub use runtime::NodeSnapshot;
pub use scenario::{run_scenario, run_scenario_digest};
pub use transport::{Router, ToNode};
