//! # rgb-net — reactor-multiplexed live runtime for RGB
//!
//! Deploys a ring-based hierarchy as real concurrency: a small pool of
//! reactor workers ([`reactor`]) multiplexes thousands of sans-IO
//! `NodeState`s per thread off per-worker timer wheels, crossbeam-channel
//! transport carrying the binary wire format of `rgb-core::wire` with
//! bounded mailboxes and explicit backpressure ([`transport`]), and an
//! operator API over the running deployment ([`cluster`]). This is the
//! §4.3 claim — "the proposed protocol runs in a parallel and distributed
//! way" — at live-experiment scale: worker count, not node count, bounds
//! the thread budget.
//!
//! The runtime is the third implementation of `rgb_core`'s substrate layer
//! (after the sequential and the sharded simulator): protocol outputs flow
//! through the shared `rgb_core::substrate::apply_outputs` driver
//! (wire-encoding every send), and declarative `rgb_sim::Scenario`
//! experiments replay here unchanged through the unified run API —
//! `sc.run_on(Backend::Live(&live_config))`, with [`LiveConfig`]
//! implementing `rgb_sim::LiveRuntime` ([`scenario`]). The differential
//! tests compare the substrates' final views.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod error;
pub mod reactor;
pub mod scenario;
pub mod transport;

pub use cluster::Cluster;
pub use error::NetError;
pub use reactor::{ClusterStats, LiveConfig, NodeSnapshot};
pub use scenario::LiveEngine;
pub use transport::{Router, SendOutcome, ToWorker};

#[allow(deprecated)]
pub use cluster::LiveCluster;
#[allow(deprecated)]
pub use scenario::{run_scenario, run_scenario_digest};
