//! Transport abstraction for the live reactor runtime.
//!
//! Messages between reactor workers travel as length-delimited binary
//! frames produced by `rgb_core::wire`, so the wire format is exercised
//! end-to-end exactly as a socket deployment would — the in-process channel
//! stands in for TCP only at the byte layer.
//!
//! Every worker mailbox is **bounded**: a sender that finds it full gets
//! [`SendOutcome::Backpressure`] and the frame is dropped with a counter
//! bump — never queued without bound. That is the UDP-buffer-full analogy
//! the protocol is already built to survive (token retransmission, §5.2),
//! and it is what keeps one slow worker from growing another worker's
//! memory: the data plane never parks a reactor thread on a peer's mailbox,
//! so no worker-to-worker send cycle can deadlock.

use bytes::Bytes;
use crossbeam::channel::{Sender, TrySendError};
use parking_lot::RwLock;
use rgb_core::prelude::{Envelope, GroupId, MhEvent, Msg, NodeId, QueryScope};
use rgb_core::wire;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Input messages a reactor worker can receive. Node-addressed variants
/// carry the destination explicitly, because one mailbox multiplexes every
/// node the worker hosts.
#[derive(Debug)]
pub enum ToWorker {
    /// An encoded envelope from another node.
    Net {
        /// Sender node.
        from: NodeId,
        /// Destination node (hosted by the receiving worker).
        to: NodeId,
        /// Encoded [`Envelope`].
        frame: Bytes,
    },
    /// A mobile-host event from the operator API.
    Mh {
        /// The access proxy it lands at.
        ap: NodeId,
        /// The event.
        event: MhEvent,
    },
    /// Start a membership query at a node.
    Query {
        /// The node the application asks at.
        node: NodeId,
        /// What is asked.
        scope: QueryScope,
    },
    /// Request a state snapshot of one node (reply through the provided
    /// channel; a crashed or unknown node simply never replies).
    Snapshot {
        /// The node to snapshot.
        node: NodeId,
        /// Where the snapshot goes.
        reply: Sender<crate::reactor::NodeSnapshot>,
    },
    /// Crash one node: the worker drops its state and timers.
    Crash {
        /// The node to crash.
        node: NodeId,
    },
    /// Stop the worker (after draining everything queued before this).
    Stop,
}

/// What became of one [`Router::send_frame`] call. The reactor substrate
/// uses this to attribute failed sends to the *sending* node's
/// [`crate::reactor::NodeSnapshot::dropped_frames`] counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The frame entered the destination worker's mailbox.
    Delivered,
    /// An active link partition swallowed the frame.
    PartitionDropped,
    /// The destination is unknown or stopped (a crashed host).
    Unroutable,
    /// The destination worker's bounded mailbox was full; the frame was
    /// dropped and counted, exactly like a UDP socket buffer overflowing.
    Backpressure,
}

/// Shared routing table: node id → the mailbox of the worker hosting it.
#[derive(Clone, Default)]
pub struct Router {
    inner: Arc<RwLock<HashMap<NodeId, Sender<ToWorker>>>>,
    /// Currently severed NE pairs (normalised `(min, max)`) with an
    /// active-window refcount: frames between them are dropped, in both
    /// directions — the live-world counterpart of the simulator's
    /// [`rgb_core::faults::LinkPartition`] windows. Scenario replay drives
    /// this from the timeline; overlapping windows on one pair heal only
    /// when the last of them ends.
    severed: Arc<RwLock<HashMap<(NodeId, NodeId), u32>>>,
    /// Frames delivered into a worker mailbox.
    sent: Arc<AtomicU64>,
    /// Frames dropped because the destination was unknown or stopped.
    drops: Arc<AtomicU64>,
    /// Frames swallowed by an active link partition.
    partition_drops: Arc<AtomicU64>,
    /// Frames dropped because the destination worker's mailbox was full.
    backpressure_drops: Arc<AtomicU64>,
}

impl Router {
    /// Fresh empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the mailbox hosting `node`.
    pub fn register(&self, node: NodeId, tx: Sender<ToWorker>) {
        self.inner.write().insert(node, tx);
    }

    /// Remove a node (its future messages are dropped — a crash).
    pub fn deregister(&self, node: NodeId) {
        self.inner.write().remove(&node);
    }

    /// Encode and deliver `msg` from `from` to `to`. Messages to unknown
    /// nodes are dropped (and counted), exactly like packets to a dead
    /// host.
    pub fn send(&self, gid: GroupId, from: NodeId, to: NodeId, msg: Msg) -> SendOutcome {
        self.send_frame(from, to, wire::encode(&Envelope { gid, msg }))
    }

    /// Deliver an already-encoded [`Envelope`] frame from `from` to `to` —
    /// the transport half of the substrate layer's
    /// [`rgb_core::substrate::Substrate::send_frame`]. Frames to unknown or
    /// stopped nodes are dropped and counted; frames to a full mailbox are
    /// dropped with the backpressure counter (never queued unboundedly).
    pub fn send_frame(&self, from: NodeId, to: NodeId, frame: Bytes) -> SendOutcome {
        if self.is_partitioned(from, to) {
            self.partition_drops.fetch_add(1, Ordering::Relaxed);
            return SendOutcome::PartitionDropped;
        }
        let guard = self.inner.read();
        let Some(tx) = guard.get(&to) else {
            self.note_drop();
            return SendOutcome::Unroutable;
        };
        match tx.try_send(ToWorker::Net { from, to, frame }) {
            Ok(()) => {
                self.sent.fetch_add(1, Ordering::Relaxed);
                SendOutcome::Delivered
            }
            Err(TrySendError::Full(_)) => {
                self.backpressure_drops.fetch_add(1, Ordering::Relaxed);
                SendOutcome::Backpressure
            }
            Err(TrySendError::Disconnected(_)) => {
                self.note_drop();
                SendOutcome::Unroutable
            }
        }
    }

    fn note_drop(&self) {
        // The first drop of a router's lifetime gets a visible warning;
        // after that the counter (surfaced in `ClusterStats`) is the
        // record, so a crashing cluster does not spam the log.
        if self.drops.fetch_add(1, Ordering::Relaxed) == 0 {
            eprintln!(
                "rgb-net: warning: router dropped a frame (destination unknown or stopped); \
                 further drops are only counted"
            );
        }
    }

    /// Frames delivered into a worker mailbox so far.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Frames dropped so far because the destination was unknown/stopped.
    pub fn dropped(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Frames dropped so far because a destination mailbox was full.
    pub fn backpressure_dropped(&self) -> u64 {
        self.backpressure_drops.load(Ordering::Relaxed)
    }

    /// Sever or heal the (unordered) link between `a` and `b`. Calls
    /// refcount: each sever opens one window, each heal closes one, and
    /// the link passes frames again only when no window remains open.
    pub fn set_partition(&self, a: NodeId, b: NodeId, severed: bool) {
        let pair = if a <= b { (a, b) } else { (b, a) };
        let mut guard = self.severed.write();
        if severed {
            *guard.entry(pair).or_insert(0) += 1;
        } else if let Some(count) = guard.get_mut(&pair) {
            *count -= 1;
            if *count == 0 {
                guard.remove(&pair);
            }
        }
    }

    /// Whether the (unordered) pair `a`–`b` is currently severed.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        let pair = if a <= b { (a, b) } else { (b, a) };
        let guard = self.severed.read();
        !guard.is_empty() && guard.contains_key(&pair)
    }

    /// Frames swallowed by link partitions so far.
    pub fn partition_dropped(&self) -> u64 {
        self.partition_drops.load(Ordering::Relaxed)
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Look up the mailbox hosting `node` (for the cluster operator API).
    pub fn inbox(&self, node: NodeId) -> Option<Sender<ToWorker>> {
        self.inner.read().get(&node).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{bounded, unbounded};
    use rgb_core::prelude::RingId;

    #[test]
    fn routes_and_decodes() {
        let router = Router::new();
        let (tx, rx) = unbounded();
        router.register(NodeId(2), tx);
        let out = router.send(
            GroupId(1),
            NodeId(1),
            NodeId(2),
            Msg::TokenAck { ring: RingId(0), seq: 9 },
        );
        assert_eq!(out, SendOutcome::Delivered);
        assert_eq!(router.sent(), 1);
        match rx.recv().unwrap() {
            ToWorker::Net { from, to, frame } => {
                assert_eq!(from, NodeId(1));
                assert_eq!(to, NodeId(2));
                let env = wire::decode(&frame).unwrap();
                assert_eq!(env.gid, GroupId(1));
                assert_eq!(env.msg, Msg::TokenAck { ring: RingId(0), seq: 9 });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_destination_is_counted_as_drop() {
        let router = Router::new();
        let out = router.send(
            GroupId(1),
            NodeId(1),
            NodeId(9),
            Msg::TokenAck { ring: RingId(0), seq: 1 },
        );
        assert_eq!(out, SendOutcome::Unroutable);
        assert_eq!(router.dropped(), 1);
    }

    #[test]
    fn full_mailbox_is_backpressure_not_growth() {
        let router = Router::new();
        let (tx, rx) = bounded(2);
        router.register(NodeId(5), tx);
        let mut outcomes = Vec::new();
        for seq in 0..10 {
            outcomes.push(router.send(
                GroupId(1),
                NodeId(1),
                NodeId(5),
                Msg::TokenAck { ring: RingId(0), seq },
            ));
        }
        assert_eq!(outcomes.iter().filter(|&&o| o == SendOutcome::Delivered).count(), 2);
        assert_eq!(outcomes.iter().filter(|&&o| o == SendOutcome::Backpressure).count(), 8);
        assert_eq!(router.backpressure_dropped(), 8);
        assert_eq!(router.sent(), 2);
        assert_eq!(router.dropped(), 0, "backpressure is not an unroutable drop");
        // The mailbox held exactly its capacity.
        let mut queued = 0;
        while rx.try_recv().is_ok() {
            queued += 1;
        }
        assert_eq!(queued, 2);
    }

    #[test]
    fn partition_severs_and_heals_both_directions() {
        let router = Router::new();
        let (tx_a, rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        router.register(NodeId(1), tx_a);
        router.register(NodeId(2), tx_b);
        router.set_partition(NodeId(2), NodeId(1), true);
        assert!(router.is_partitioned(NodeId(1), NodeId(2)));
        let out = router.send(
            GroupId(1),
            NodeId(1),
            NodeId(2),
            Msg::TokenAck { ring: RingId(0), seq: 1 },
        );
        assert_eq!(out, SendOutcome::PartitionDropped);
        router.send(GroupId(1), NodeId(2), NodeId(1), Msg::TokenAck { ring: RingId(0), seq: 2 });
        assert_eq!(router.partition_dropped(), 2);
        assert_eq!(router.dropped(), 0, "partition drops are counted separately");
        assert!(rx_a.try_recv().is_err() && rx_b.try_recv().is_err());
        router.set_partition(NodeId(1), NodeId(2), false);
        assert!(!router.is_partitioned(NodeId(2), NodeId(1)));
        router.send(GroupId(1), NodeId(1), NodeId(2), Msg::TokenAck { ring: RingId(0), seq: 3 });
        assert!(rx_b.try_recv().is_ok(), "healed link delivers again");
    }

    #[test]
    fn overlapping_partition_windows_refcount() {
        let router = Router::new();
        router.set_partition(NodeId(1), NodeId(2), true);
        router.set_partition(NodeId(2), NodeId(1), true); // second window
        router.set_partition(NodeId(1), NodeId(2), false); // first heals
        assert!(
            router.is_partitioned(NodeId(1), NodeId(2)),
            "pair must stay severed until the last window ends"
        );
        router.set_partition(NodeId(1), NodeId(2), false);
        assert!(!router.is_partitioned(NodeId(1), NodeId(2)));
        // A heal with no open window is a no-op, not an underflow.
        router.set_partition(NodeId(1), NodeId(2), false);
        assert!(!router.is_partitioned(NodeId(1), NodeId(2)));
    }

    #[test]
    fn deregister_turns_node_into_black_hole() {
        let router = Router::new();
        let (tx, _rx) = unbounded();
        router.register(NodeId(3), tx);
        assert_eq!(router.len(), 1);
        router.deregister(NodeId(3));
        assert!(router.is_empty());
        router.send(GroupId(1), NodeId(1), NodeId(3), Msg::TokenAck { ring: RingId(0), seq: 1 });
        assert_eq!(router.dropped(), 1);
    }
}
