//! Transport abstraction for the live runtime.
//!
//! Messages between node threads travel as length-delimited binary frames
//! produced by `rgb_core::wire`, so the wire format is exercised end-to-end
//! exactly as a socket deployment would — the in-process channel stands in
//! for TCP only at the byte layer.

use bytes::Bytes;
use crossbeam::channel::{Sender, TrySendError};
use parking_lot::RwLock;
use rgb_core::prelude::{Envelope, GroupId, Msg, NodeId};
use rgb_core::wire;
use std::collections::HashMap;
use std::sync::Arc;

/// Input messages a node thread can receive.
#[derive(Debug)]
pub enum ToNode {
    /// An encoded envelope from another node.
    Net {
        /// Sender node.
        from: NodeId,
        /// Encoded [`Envelope`].
        frame: Bytes,
    },
    /// A mobile-host event from the operator API.
    Mh(rgb_core::prelude::MhEvent),
    /// Start a membership query.
    Query(rgb_core::prelude::QueryScope),
    /// Request a state snapshot (reply through the provided channel).
    Snapshot(Sender<crate::runtime::NodeSnapshot>),
    /// Stop the node thread.
    Stop,
}

/// Shared routing table: node id → that node's inbox.
#[derive(Clone, Default)]
pub struct Router {
    inner: Arc<RwLock<HashMap<NodeId, Sender<ToNode>>>>,
    /// Currently severed NE pairs (normalised `(min, max)`) with an
    /// active-window refcount: frames between them are dropped, in both
    /// directions — the live-world counterpart of the simulator's
    /// [`rgb_core::faults::LinkPartition`] windows. Scenario replay drives
    /// this from the timeline; overlapping windows on one pair heal only
    /// when the last of them ends.
    severed: Arc<RwLock<HashMap<(NodeId, NodeId), u32>>>,
    /// Messages dropped because the destination was unknown or stopped.
    drops: Arc<std::sync::atomic::AtomicU64>,
    /// Frames swallowed by an active link partition.
    partition_drops: Arc<std::sync::atomic::AtomicU64>,
}

impl Router {
    /// Fresh empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a node's inbox.
    pub fn register(&self, node: NodeId, tx: Sender<ToNode>) {
        self.inner.write().insert(node, tx);
    }

    /// Remove a node (its future messages are dropped — a crash).
    pub fn deregister(&self, node: NodeId) {
        self.inner.write().remove(&node);
    }

    /// Encode and deliver `msg` from `from` to `to`. Messages to unknown
    /// nodes are dropped (and counted), exactly like packets to a dead
    /// host.
    pub fn send(&self, gid: GroupId, from: NodeId, to: NodeId, msg: Msg) {
        self.send_frame(from, to, wire::encode(&Envelope { gid, msg }));
    }

    /// Deliver an already-encoded [`Envelope`] frame from `from` to `to` —
    /// the transport half of the substrate layer's
    /// [`rgb_core::substrate::Substrate::send_frame`]. Frames to unknown or
    /// stopped nodes are dropped and counted.
    pub fn send_frame(&self, from: NodeId, to: NodeId, frame: Bytes) {
        if self.is_partitioned(from, to) {
            self.partition_drops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return;
        }
        let guard = self.inner.read();
        let Some(tx) = guard.get(&to) else {
            self.note_drop();
            return;
        };
        match tx.try_send(ToNode::Net { from, frame }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => self.note_drop(),
        }
    }

    fn note_drop(&self) {
        // The first drop of a router's lifetime gets a visible warning;
        // after that the counter (surfaced in `NodeSnapshot`) is the
        // record, so a crashing cluster does not spam the log.
        if self.drops.fetch_add(1, std::sync::atomic::Ordering::Relaxed) == 0 {
            eprintln!(
                "rgb-net: warning: router dropped a frame (destination unknown or stopped); \
                 further drops are only counted"
            );
        }
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.drops.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Sever or heal the (unordered) link between `a` and `b`. Calls
    /// refcount: each sever opens one window, each heal closes one, and
    /// the link passes frames again only when no window remains open.
    pub fn set_partition(&self, a: NodeId, b: NodeId, severed: bool) {
        let pair = if a <= b { (a, b) } else { (b, a) };
        let mut guard = self.severed.write();
        if severed {
            *guard.entry(pair).or_insert(0) += 1;
        } else if let Some(count) = guard.get_mut(&pair) {
            *count -= 1;
            if *count == 0 {
                guard.remove(&pair);
            }
        }
    }

    /// Whether the (unordered) pair `a`–`b` is currently severed.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        let pair = if a <= b { (a, b) } else { (b, a) };
        let guard = self.severed.read();
        !guard.is_empty() && guard.contains_key(&pair)
    }

    /// Frames swallowed by link partitions so far.
    pub fn partition_dropped(&self) -> u64 {
        self.partition_drops.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Look up an inbox (for the cluster API).
    pub fn inbox(&self, node: NodeId) -> Option<Sender<ToNode>> {
        self.inner.read().get(&node).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use rgb_core::prelude::RingId;

    #[test]
    fn routes_and_decodes() {
        let router = Router::new();
        let (tx, rx) = unbounded();
        router.register(NodeId(2), tx);
        router.send(GroupId(1), NodeId(1), NodeId(2), Msg::TokenAck { ring: RingId(0), seq: 9 });
        match rx.recv().unwrap() {
            ToNode::Net { from, frame } => {
                assert_eq!(from, NodeId(1));
                let env = wire::decode(&frame).unwrap();
                assert_eq!(env.gid, GroupId(1));
                assert_eq!(env.msg, Msg::TokenAck { ring: RingId(0), seq: 9 });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_destination_is_counted_as_drop() {
        let router = Router::new();
        router.send(GroupId(1), NodeId(1), NodeId(9), Msg::TokenAck { ring: RingId(0), seq: 1 });
        assert_eq!(router.dropped(), 1);
    }

    #[test]
    fn partition_severs_and_heals_both_directions() {
        let router = Router::new();
        let (tx_a, rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        router.register(NodeId(1), tx_a);
        router.register(NodeId(2), tx_b);
        router.set_partition(NodeId(2), NodeId(1), true);
        assert!(router.is_partitioned(NodeId(1), NodeId(2)));
        router.send(GroupId(1), NodeId(1), NodeId(2), Msg::TokenAck { ring: RingId(0), seq: 1 });
        router.send(GroupId(1), NodeId(2), NodeId(1), Msg::TokenAck { ring: RingId(0), seq: 2 });
        assert_eq!(router.partition_dropped(), 2);
        assert_eq!(router.dropped(), 0, "partition drops are counted separately");
        assert!(rx_a.try_recv().is_err() && rx_b.try_recv().is_err());
        router.set_partition(NodeId(1), NodeId(2), false);
        assert!(!router.is_partitioned(NodeId(2), NodeId(1)));
        router.send(GroupId(1), NodeId(1), NodeId(2), Msg::TokenAck { ring: RingId(0), seq: 3 });
        assert!(rx_b.try_recv().is_ok(), "healed link delivers again");
    }

    #[test]
    fn overlapping_partition_windows_refcount() {
        let router = Router::new();
        router.set_partition(NodeId(1), NodeId(2), true);
        router.set_partition(NodeId(2), NodeId(1), true); // second window
        router.set_partition(NodeId(1), NodeId(2), false); // first heals
        assert!(
            router.is_partitioned(NodeId(1), NodeId(2)),
            "pair must stay severed until the last window ends"
        );
        router.set_partition(NodeId(1), NodeId(2), false);
        assert!(!router.is_partitioned(NodeId(1), NodeId(2)));
        // A heal with no open window is a no-op, not an underflow.
        router.set_partition(NodeId(1), NodeId(2), false);
        assert!(!router.is_partitioned(NodeId(1), NodeId(2)));
    }

    #[test]
    fn deregister_turns_node_into_black_hole() {
        let router = Router::new();
        let (tx, _rx) = unbounded();
        router.register(NodeId(3), tx);
        assert_eq!(router.len(), 1);
        router.deregister(NodeId(3));
        assert!(router.is_empty());
        router.send(GroupId(1), NodeId(1), NodeId(3), Msg::TokenAck { ring: RingId(0), seq: 1 });
        assert_eq!(router.dropped(), 1);
    }
}
