//! Per-node runtime thread: owns one sans-IO [`NodeState`], drives its
//! timers with real wall-clock deadlines, and exchanges wire frames through
//! the [`Router`] — the "parallel and distributed way" of §4.3 made
//! literal: every network entity runs concurrently on its own thread.

use crate::transport::{Router, ToNode};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use rgb_core::events::{AppEvent, Input, Output, TimerKind};
use rgb_core::member::MemberList;
use rgb_core::node::NodeState;
use rgb_core::prelude::NodeId;
use rgb_core::wire;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A point-in-time copy of the interesting parts of a node's state.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The node.
    pub id: NodeId,
    /// Its current view epoch.
    pub epoch: u64,
    /// Its ring membership list.
    pub ring_members: MemberList,
    /// Locally attached members (APs).
    pub local_members: MemberList,
    /// Current ring roster size.
    pub roster_len: usize,
    /// Current leader, if any.
    pub leader: Option<NodeId>,
    /// RingOK flag.
    pub ring_ok: bool,
}

/// Run one node until a `Stop` message arrives. `tick` is the real-time
/// duration of one protocol tick.
pub fn run_node(
    mut state: NodeState,
    rx: Receiver<ToNode>,
    router: Router,
    events: Sender<(NodeId, AppEvent)>,
    tick: Duration,
) {
    let id = state.id;
    let gid = state.gid;
    let start = Instant::now();
    let mut timers: BTreeMap<TimerKind, Instant> = BTreeMap::new();

    let process =
        |state: &mut NodeState, outs: Vec<Output>, timers: &mut BTreeMap<TimerKind, Instant>| {
            let _ = state;
            for out in outs {
                match out {
                    Output::Send { to, msg } => router.send(gid, id, to, msg),
                    Output::SetTimer { kind, after } => {
                        timers.insert(kind, Instant::now() + tick * after as u32);
                    }
                    Output::CancelTimer { kind } => {
                        timers.remove(&kind);
                    }
                    Output::Deliver(ev) => {
                        let _ = events.send((id, ev));
                    }
                }
            }
        };

    let outs = state.handle(Input::Boot);
    process(&mut state, outs, &mut timers);

    loop {
        // Fire any due timers first.
        let now = Instant::now();
        let due: Vec<TimerKind> =
            timers.iter().filter(|(_, &at)| at <= now).map(|(&k, _)| k).collect();
        for kind in due {
            timers.remove(&kind);
            let outs = state.handle(Input::Timer(kind));
            process(&mut state, outs, &mut timers);
        }
        // Wait for the next message or the next timer deadline.
        let timeout = timers
            .values()
            .min()
            .map(|&at| at.saturating_duration_since(Instant::now()))
            .unwrap_or_else(|| Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(ToNode::Net { from, frame }) => match wire::decode(&frame) {
                Ok(env) if env.gid == gid => {
                    let outs = state.handle(Input::Msg { from, msg: env.msg });
                    process(&mut state, outs, &mut timers);
                }
                _ => {} // foreign group or corrupt frame: drop
            },
            Ok(ToNode::Mh(event)) => {
                let outs = state.handle(Input::Mh(event));
                process(&mut state, outs, &mut timers);
            }
            Ok(ToNode::Query(scope)) => {
                let outs = state.handle(Input::StartQuery { scope });
                process(&mut state, outs, &mut timers);
            }
            Ok(ToNode::Snapshot(reply)) => {
                let _ = reply.send(NodeSnapshot {
                    id,
                    epoch: state.epoch,
                    ring_members: state.ring_members.clone(),
                    local_members: state.local_members.clone(),
                    roster_len: state.roster.len(),
                    leader: state.leader(),
                    ring_ok: state.ring_ok,
                });
            }
            Ok(ToNode::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {} // loop fires due timers
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Defensive bound for runaway tests: stop after an hour of wall time.
        if start.elapsed() > Duration::from_secs(3600) {
            break;
        }
    }
}
