//! Per-node runtime thread: owns one sans-IO [`NodeState`], drives its
//! timers with real wall-clock deadlines, and exchanges wire frames through
//! the [`Router`] — the "parallel and distributed way" of §4.3 made
//! literal: every network entity runs concurrently on its own thread.
//!
//! The thread's environment is a `LiveSubstrate`, the live-world
//! implementation of [`rgb_core::substrate::Substrate`]; all protocol
//! outputs flow through the shared [`apply_outputs`] driver, exactly as in
//! the simulator, and the hot loop reuses one [`OutputSink`] buffer so no
//! `Vec<Output>` is allocated per input.

use crate::transport::{Router, ToNode};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use rgb_core::events::{AppEvent, Input, TimerKind};
use rgb_core::introspect::StateDigest;
use rgb_core::member::MemberList;
use rgb_core::message::MsgLabel;
use rgb_core::node::NodeState;
use rgb_core::prelude::NodeId;
use rgb_core::substrate::{apply_outputs, OutputSink, Substrate};
use rgb_core::wire;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A point-in-time copy of the interesting parts of a node's state.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The node.
    pub id: NodeId,
    /// Its current view epoch.
    pub epoch: u64,
    /// Its ring membership list.
    pub ring_members: MemberList,
    /// Locally attached members (APs).
    pub local_members: MemberList,
    /// Current ring roster size.
    pub roster_len: usize,
    /// Current leader, if any.
    pub leader: Option<NodeId>,
    /// RingOK flag.
    pub ring_ok: bool,
    /// Frames the cluster's router has dropped so far (destination unknown
    /// or stopped). Cluster-wide counter, not per-node.
    pub dropped_frames: u64,
    /// Oracle-facing digest of the node's state — the same shape the
    /// simulator produces, so invariant oracles judge both substrates with
    /// identical code.
    pub digest: StateDigest,
}

/// The live-runtime implementation of the substrate layer: real wall-clock
/// timers, frames routed over crossbeam channels, application events pushed
/// to the cluster's subscriber channel.
struct LiveSubstrate<'a> {
    router: &'a Router,
    events: &'a Sender<(NodeId, AppEvent)>,
    timers: &'a mut BTreeMap<TimerKind, Instant>,
    tick: Duration,
    start: Instant,
}

impl Substrate for LiveSubstrate<'_> {
    fn now(&self) -> u64 {
        let tick_ns = self.tick.as_nanos().max(1);
        (self.start.elapsed().as_nanos() / tick_ns) as u64
    }

    fn send_frame(&mut self, from: NodeId, to: NodeId, _label: MsgLabel, frame: bytes::Bytes) {
        self.router.send_frame(from, to, frame);
    }

    fn arm_timer(&mut self, _node: NodeId, kind: TimerKind, after: u64) {
        let ticks = u32::try_from(after).unwrap_or(u32::MAX);
        self.timers.insert(kind, Instant::now() + self.tick * ticks);
    }

    fn cancel_timer(&mut self, _node: NodeId, kind: TimerKind) {
        self.timers.remove(&kind);
    }

    fn deliver_app(&mut self, node: NodeId, event: AppEvent) {
        let _ = self.events.send((node, event));
    }
}

/// Run one node until a `Stop` message arrives. `tick` is the real-time
/// duration of one protocol tick.
pub fn run_node(
    mut state: NodeState,
    rx: Receiver<ToNode>,
    router: Router,
    events: Sender<(NodeId, AppEvent)>,
    tick: Duration,
) {
    let id = state.id;
    let gid = state.gid;
    let start = Instant::now();
    let mut timers: BTreeMap<TimerKind, Instant> = BTreeMap::new();
    // One reusable output buffer for the whole thread lifetime.
    let mut outs = OutputSink::new();

    macro_rules! drive {
        ($input:expr) => {{
            state.handle_into($input, &mut outs);
            let mut sub = LiveSubstrate {
                router: &router,
                events: &events,
                timers: &mut timers,
                tick,
                start,
            };
            apply_outputs(&mut sub, gid, id, &mut outs);
        }};
    }

    drive!(Input::Boot);

    loop {
        // Fire any due timers first.
        let now = Instant::now();
        let due: Vec<TimerKind> =
            timers.iter().filter(|(_, &at)| at <= now).map(|(&k, _)| k).collect();
        for kind in due {
            timers.remove(&kind);
            drive!(Input::Timer(kind));
        }
        // Wait for the next message or the next timer deadline.
        let timeout = timers
            .values()
            .min()
            .map(|&at| at.saturating_duration_since(Instant::now()))
            .unwrap_or_else(|| Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(ToNode::Net { from, frame }) => match wire::decode(&frame) {
                Ok(env) if env.gid == gid => drive!(Input::Msg { from, msg: env.msg }),
                _ => {} // foreign group or corrupt frame: drop
            },
            Ok(ToNode::Mh(event)) => drive!(Input::Mh(event)),
            Ok(ToNode::Query(scope)) => drive!(Input::StartQuery { scope }),
            Ok(ToNode::Snapshot(reply)) => {
                let _ = reply.send(NodeSnapshot {
                    id,
                    epoch: state.epoch,
                    ring_members: state.ring_members.clone(),
                    local_members: state.local_members.clone(),
                    roster_len: state.roster.len(),
                    leader: state.leader(),
                    ring_ok: state.ring_ok,
                    dropped_frames: router.dropped(),
                    digest: state.digest(),
                });
            }
            Ok(ToNode::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {} // loop fires due timers
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Defensive bound for runaway tests: stop after an hour of wall time.
        if start.elapsed() > Duration::from_secs(3600) {
            break;
        }
    }
}
