//! The live cluster: spawn the whole ring-based hierarchy as concurrent
//! node threads and drive it through an operator API.

use crate::runtime::{run_node, NodeSnapshot};
use crate::transport::{Router, ToNode};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use rgb_core::config::ProtocolConfig;
use rgb_core::events::AppEvent;
use rgb_core::node::NodeState;
use rgb_core::prelude::*;
use rgb_core::topology::HierarchyLayout;
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running RGB deployment (one thread per network entity).
pub struct LiveCluster {
    /// The deployed hierarchy.
    pub layout: HierarchyLayout,
    router: Router,
    events_rx: Receiver<(NodeId, AppEvent)>,
    events_tx: Sender<(NodeId, AppEvent)>,
    handles: HashMap<NodeId, JoinHandle<()>>,
    tick: Duration,
}

impl LiveCluster {
    /// Spawn every node of `layout` with configuration `cfg`; one protocol
    /// tick lasts `tick` of real time.
    pub fn start(layout: HierarchyLayout, cfg: &ProtocolConfig, tick: Duration) -> Self {
        let router = Router::new();
        let (events_tx, events_rx) = unbounded();
        let mut handles = HashMap::new();
        // Register all inboxes before starting any thread so early messages
        // are never dropped.
        let mut inboxes: Vec<(NodeId, Receiver<ToNode>)> = Vec::new();
        for &id in layout.nodes.keys() {
            let (tx, rx) = unbounded();
            router.register(id, tx);
            inboxes.push((id, rx));
        }
        for (id, rx) in inboxes {
            let state = NodeState::from_layout(&layout, id, cfg.clone()).expect("valid layout");
            let router2 = router.clone();
            let events2 = events_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("rgb-{id}"))
                .spawn(move || run_node(state, rx, router2, events2, tick))
                .expect("spawn node thread");
            handles.insert(id, handle);
        }
        LiveCluster { layout, router, events_rx, events_tx, handles, tick }
    }

    /// One protocol tick's real-time duration.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Deliver a mobile-host event to an access proxy.
    pub fn mh_event(&self, ap: NodeId, event: MhEvent) {
        if let Some(tx) = self.router.inbox(ap) {
            let _ = tx.send(ToNode::Mh(event));
        }
    }

    /// Start a membership query at `node`; the result arrives on the event
    /// stream.
    pub fn query(&self, node: NodeId, scope: QueryScope) {
        if let Some(tx) = self.router.inbox(node) {
            let _ = tx.send(ToNode::Query(scope));
        }
    }

    /// Snapshot a node's state (blocks up to `timeout`).
    pub fn snapshot(&self, node: NodeId, timeout: Duration) -> Option<NodeSnapshot> {
        let tx = self.router.inbox(node)?;
        let (reply_tx, reply_rx) = bounded(1);
        tx.send(ToNode::Snapshot(reply_tx)).ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    /// Crash a node: its thread stops and its address routes to nowhere.
    pub fn crash(&mut self, node: NodeId) {
        if let Some(tx) = self.router.inbox(node) {
            let _ = tx.send(ToNode::Stop);
        }
        self.router.deregister(node);
        if let Some(handle) = self.handles.remove(&node) {
            let _ = handle.join();
        }
    }

    /// Drain application events until `pred` returns `Some`, up to
    /// `timeout`.
    pub fn wait_event<T, F: FnMut(NodeId, &AppEvent) -> Option<T>>(
        &self,
        timeout: Duration,
        mut pred: F,
    ) -> Option<T> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.events_rx.recv_timeout(remaining) {
                Ok((node, ev)) => {
                    if let Some(t) = pred(node, &ev) {
                        return Some(t);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Poll until `guid` is operational in `node`'s ring membership.
    pub fn wait_member_at(&self, node: NodeId, guid: Guid, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(snap) = self.snapshot(node, Duration::from_millis(500)) {
                if snap.ring_members.contains_operational(guid) {
                    return true;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    /// Messages dropped by the router (to crashed/unknown nodes).
    pub fn dropped_messages(&self) -> u64 {
        self.router.dropped()
    }

    /// Sever or heal the link between two NEs (both directions) — the
    /// operator-API face of scheduled [`rgb_core::faults::LinkPartition`]
    /// windows during scenario replay.
    pub fn set_partition(&self, a: NodeId, b: NodeId, severed: bool) {
        self.router.set_partition(a, b, severed);
    }

    /// Frames swallowed by link partitions so far.
    pub fn partition_dropped(&self) -> u64 {
        self.router.partition_dropped()
    }

    /// A clone of the event sender (lets tests inject synthetic events).
    pub fn event_sender(&self) -> Sender<(NodeId, AppEvent)> {
        self.events_tx.clone()
    }

    /// Stop every node and join the threads.
    pub fn shutdown(mut self) {
        let ids: Vec<NodeId> = self.handles.keys().copied().collect();
        for id in ids {
            if let Some(tx) = self.router.inbox(id) {
                let _ = tx.send(ToNode::Stop);
            }
            self.router.deregister(id);
        }
        for (_, handle) in self.handles.drain() {
            let _ = handle.join();
        }
    }
}
