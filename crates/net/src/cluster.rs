//! The live cluster: deploy the whole ring-based hierarchy onto a small
//! reactor worker pool and drive it through an operator API.
//!
//! Nodes are assigned to workers ring-whole and DFS-contiguous
//! ([`HierarchyLayout::partition_rings`]), so the token that circulates a
//! ring usually stays inside one worker's mailbox. The operator API talks
//! to workers with **blocking** sends: an operator thread parking on a full
//! mailbox is safe (it is outside the worker-to-worker graph, so no cycle),
//! whereas the data plane inside workers never parks — see
//! [`crate::transport`].

use crate::error::NetError;
use crate::reactor::{ClusterStats, LiveConfig, NodeSnapshot, ReactorShared, Worker, WorkerSpec};
use crate::transport::{Router, ToWorker};
use crossbeam::channel::{bounded, Receiver, Sender};
use rgb_core::config::ProtocolConfig;
use rgb_core::events::AppEvent;
use rgb_core::node::NodeState;
use rgb_core::prelude::*;
use rgb_core::topology::HierarchyLayout;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running RGB deployment: the hierarchy multiplexed onto a reactor
/// worker pool.
pub struct Cluster {
    /// The deployed hierarchy.
    pub layout: HierarchyLayout,
    router: Router,
    events_rx: Receiver<(NodeId, AppEvent)>,
    events_tx: Sender<(NodeId, AppEvent)>,
    worker_txs: Vec<Sender<ToWorker>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<ReactorShared>,
    tick: Duration,
}

impl Cluster {
    /// Deploy every node of `layout` with protocol configuration `cfg`
    /// onto the worker pool described by `live`. All inboxes are
    /// registered before any worker starts, so early frames are never
    /// dropped.
    pub fn try_new(
        layout: HierarchyLayout,
        cfg: &ProtocolConfig,
        live: &LiveConfig,
    ) -> Result<Cluster, NetError> {
        live.validate()?;
        let router = Router::new();
        let (events_tx, events_rx) = bounded(live.event_capacity);
        let shared = Arc::new(ReactorShared::default());
        let workers = live.resolved_workers().min(layout.ring_count()).max(1);
        let start = Instant::now();

        // Build every worker's node set up front: layout errors surface
        // before a single thread exists.
        let mut specs: Vec<(Vec<NodeState>, Receiver<ToWorker>)> = Vec::new();
        let mut worker_txs = Vec::new();
        for rings in layout.partition_rings(workers) {
            let (tx, rx) = bounded(live.mailbox_capacity);
            let mut states = Vec::new();
            for ring in rings {
                let members = layout
                    .ring(ring)
                    .map_err(|e| NetError::InvalidLayout {
                        node: NodeId(u64::from(ring.0)),
                        reason: e.to_string(),
                    })?
                    .nodes
                    .clone();
                for id in members {
                    let state = NodeState::from_layout(&layout, id, cfg.clone())
                        .map_err(|e| NetError::InvalidLayout { node: id, reason: e.to_string() })?;
                    router.register(id, tx.clone());
                    states.push(state);
                }
            }
            if states.is_empty() {
                continue; // more workers than the layout can use
            }
            worker_txs.push(tx);
            specs.push((states, rx));
        }

        let mut handles = Vec::new();
        for (i, (states, rx)) in specs.into_iter().enumerate() {
            let spec = WorkerSpec {
                gid: layout.gid,
                tick: live.tick,
                start,
                rx,
                router: router.clone(),
                events: events_tx.clone(),
                shared: Arc::clone(&shared),
                states,
            };
            let spawned = std::thread::Builder::new()
                .name(format!("rgb-worker-{i}"))
                .spawn(move || Worker::new(spec).run());
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the part of the pool that did start.
                    for tx in &worker_txs {
                        let _ = tx.send(ToWorker::Stop);
                    }
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(NetError::Spawn { reason: e.to_string() });
                }
            }
        }

        Ok(Cluster {
            layout,
            router,
            events_rx,
            events_tx,
            worker_txs,
            handles,
            shared,
            tick: live.tick,
        })
    }

    /// One protocol tick's real-time duration.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Number of reactor workers actually running.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Deliver a mobile-host event to an access proxy.
    pub fn mh_event(&self, ap: NodeId, event: MhEvent) {
        if let Some(tx) = self.router.inbox(ap) {
            let _ = tx.send(ToWorker::Mh { ap, event });
        }
    }

    /// Start a membership query at `node`; the result arrives on the event
    /// stream.
    pub fn query(&self, node: NodeId, scope: QueryScope) {
        if let Some(tx) = self.router.inbox(node) {
            let _ = tx.send(ToWorker::Query { node, scope });
        }
    }

    /// Snapshot a node's state (blocks up to `timeout`; `None` for a
    /// crashed or unknown node).
    pub fn snapshot(&self, node: NodeId, timeout: Duration) -> Option<NodeSnapshot> {
        let tx = self.router.inbox(node)?;
        let (reply_tx, reply_rx) = bounded(1);
        tx.send(ToWorker::Snapshot { node, reply: reply_tx }).ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    /// Crash a node: its hosting worker drops the state and its address
    /// routes to nowhere. The worker itself keeps serving its other nodes.
    pub fn crash(&self, node: NodeId) {
        if let Some(tx) = self.router.inbox(node) {
            let _ = tx.send(ToWorker::Crash { node });
        }
        self.router.deregister(node);
    }

    /// Drain application events until `pred` returns `Some`, up to
    /// `timeout`.
    pub fn wait_event<T, F: FnMut(NodeId, &AppEvent) -> Option<T>>(
        &self,
        timeout: Duration,
        mut pred: F,
    ) -> Option<T> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.events_rx.recv_timeout(remaining) {
                Ok((node, ev)) => {
                    if let Some(t) = pred(node, &ev) {
                        return Some(t);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Poll until `guid` is operational in `node`'s ring membership.
    pub fn wait_member_at(&self, node: NodeId, guid: Guid, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(snap) = self.snapshot(node, Duration::from_millis(500)) {
                if snap.ring_members.contains_operational(guid) {
                    return true;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    /// Cluster-wide transport and delivery counters.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            frames_sent: self.router.sent(),
            dropped_frames: self.router.dropped(),
            backpressure_dropped: self.router.backpressure_dropped(),
            partition_dropped: self.router.partition_dropped(),
            app_events: self.shared.app_events.load(std::sync::atomic::Ordering::Relaxed),
            app_events_dropped: self
                .shared
                .app_events_dropped
                .load(std::sync::atomic::Ordering::Relaxed),
            codec_rejected: self.shared.codec_rejected.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Per-ring-level latency surfaces observed so far (repair duration
    /// and query RTT in wall ticks; join anchoring is simulator-only).
    /// The same [`rgb_core::obs::LevelHistograms`] shape the simulators
    /// merge, so live and simulated runs export through one path.
    pub fn level_latency(&self) -> rgb_core::obs::LevelHistograms {
        self.shared.latency.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Messages dropped by the router (to crashed/unknown nodes).
    #[deprecated(since = "0.6.0", note = "use `Cluster::stats().dropped_frames`")]
    pub fn dropped_messages(&self) -> u64 {
        self.router.dropped()
    }

    /// Sever or heal the link between two NEs (both directions) — the
    /// operator-API face of scheduled [`rgb_core::faults::LinkPartition`]
    /// windows during scenario replay.
    pub fn set_partition(&self, a: NodeId, b: NodeId, severed: bool) {
        self.router.set_partition(a, b, severed);
    }

    /// Frames swallowed by link partitions so far.
    #[deprecated(since = "0.6.0", note = "use `Cluster::stats().partition_dropped`")]
    pub fn partition_dropped(&self) -> u64 {
        self.router.partition_dropped()
    }

    /// A clone of the event sender (lets tests inject synthetic events).
    pub fn event_sender(&self) -> Sender<(NodeId, AppEvent)> {
        self.events_tx.clone()
    }

    /// Stop every worker and join the pool.
    pub fn shutdown(mut self) {
        for tx in &self.worker_txs {
            let _ = tx.send(ToWorker::Stop);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The pre-reactor name of [`Cluster`].
#[deprecated(since = "0.6.0", note = "renamed to `Cluster` (reactor runtime)")]
pub type LiveCluster = Cluster;

impl Cluster {
    /// Spawn every node of `layout` with configuration `cfg`; one protocol
    /// tick lasts `tick` of real time.
    ///
    /// # Panics
    ///
    /// Panics on any configuration or spawn failure, as the pre-reactor
    /// API did.
    #[deprecated(since = "0.6.0", note = "use `Cluster::try_new` with a `LiveConfig`")]
    pub fn start(layout: HierarchyLayout, cfg: &ProtocolConfig, tick: Duration) -> Self {
        let live = LiveConfig::default().with_tick(tick);
        match Cluster::try_new(layout, cfg, &live) {
            Ok(cluster) => cluster,
            Err(e) => panic!("failed to start live cluster: {e}"),
        }
    }
}
