//! Replay a [`Scenario`] on the live reactor substrate.
//!
//! The same declarative scenario value the simulator executes
//! deterministically (`Scenario::run_on(Backend::Sim)`) is replayed here
//! against real concurrency: the timeline is walked in wall-clock time
//! (one protocol tick = [`LiveConfig::tick`] of real time), partition
//! transitions / mobile-host events / crashes / queries are applied
//! through the [`Cluster`] operator API, and the final membership views
//! are collected into the same `ScenarioOutcome` shape — which is how the
//! differential tests compare the worlds view-for-view.
//!
//! Two layers are exposed:
//!
//! * [`LiveEngine`] — the third implementation of [`rgb_sim::Engine`]
//!   (after the sequential and the sharded simulator): a deployed cluster
//!   plus the scenario timeline, advanced with `run_until` and observed
//!   with `system_digest`/`counters` like any other engine.
//! * [`LiveRuntime`] for [`LiveConfig`] — what makes
//!   `sc.run_on(Backend::Live(&live_config))` work: deploy, replay,
//!   settle, collect, shut down.
//!
//! The live transport has real (near-zero) channel latency, so the
//! scenario's latency bands — and the duplication/reordering fault
//! dimensions, which are properties of the modelled network — are not
//! modelled here; loss is always zero. Link partitions *are* applied (the
//! router severs the pair for the scheduled window). What must agree
//! across substrates is the *converged membership*, not the timing — see
//! `SystemDigest::view_divergence`.

use crate::cluster::Cluster;
use crate::reactor::LiveConfig;
use rgb_core::prelude::*;
use rgb_sim::backend::LiveRuntime;
use rgb_sim::engine::{Engine, EngineCounters};
use rgb_sim::scenario::{operational_guids, Scenario, ScenarioError, ScenarioOutcome};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// One timeline entry, ordered by (time, insertion index).
enum Action {
    PartitionStart(NodeId, NodeId),
    PartitionHeal(NodeId, NodeId),
    Mh(NodeId, MhEvent),
    Crash(NodeId),
    Query(NodeId, QueryScope),
}

/// Wall-clock instant of scenario tick `t`.
fn at_tick(start: Instant, tick: Duration, t: u64) -> Instant {
    start + tick * u32::try_from(t).unwrap_or(u32::MAX)
}

/// A [`Scenario`] deployed on the live reactor: the cluster, the pending
/// timeline, and enough bookkeeping to serve the [`Engine`] observation
/// surface. Time advances with the wall clock, so `run_until` *sleeps* to
/// the requested tick while the reactor workers run.
pub struct LiveEngine {
    cluster: Cluster,
    tick: Duration,
    start: Instant,
    /// The timeline, earliest first ((tick, insertion index) order);
    /// applied entries are taken out of their slot.
    timeline: Vec<(u64, usize, Option<Action>)>,
    applied: usize,
    crashed: BTreeSet<NodeId>,
    expected: BTreeSet<Guid>,
    root_nodes: Vec<NodeId>,
    settle: Duration,
    duration: u64,
}

impl LiveEngine {
    /// Deploy `scenario` on a reactor pool shaped by `config`. All
    /// validation happens up front: a structurally invalid scenario or an
    /// undeployable config never spawns a thread.
    pub fn new(scenario: &Scenario, config: &LiveConfig) -> Result<LiveEngine, ScenarioError> {
        scenario.validate()?;
        let layout = scenario.layout();
        let cluster = Cluster::try_new(layout, &scenario.cfg, config).map_err(|e| {
            ScenarioError::Backend { scenario: scenario.name.clone(), reason: e.to_string() }
        })?;

        // Merge the schedules into one stable-ordered timeline. The
        // insertion order (partition transitions, then crashes, then MH
        // events, then queries) mirrors the canonical priming order of
        // `Scenario::prime`, so same-tick ties resolve identically on
        // every backend — a partition starting at the same tick as a crash
        // severs the link first in both worlds.
        let mut timeline: Vec<(u64, usize, Option<Action>)> = Vec::new();
        let push = |timeline: &mut Vec<(u64, usize, Option<Action>)>, t: u64, action: Action| {
            let idx = timeline.len();
            timeline.push((t, idx, Some(action)));
        };
        for p in &scenario.partitions {
            push(&mut timeline, p.at, Action::PartitionStart(p.a, p.b));
            push(&mut timeline, p.heal_at, Action::PartitionHeal(p.a, p.b));
        }
        for c in &scenario.crashes {
            push(&mut timeline, c.at, Action::Crash(c.node));
        }
        let mut mh_schedule = scenario.mh_schedule.clone();
        mh_schedule.sort_by_key(|&(t, ap, _)| (t, ap));
        for (t, ap, event) in mh_schedule {
            push(&mut timeline, t, Action::Mh(ap, event));
        }
        for q in &scenario.queries {
            push(&mut timeline, q.at, Action::Query(q.node, q.scope));
        }
        timeline.sort_by_key(|&(t, idx, _)| (t, idx));

        let root_nodes = cluster.layout.root_ring().nodes.clone();
        Ok(LiveEngine {
            cluster,
            tick: config.tick,
            start: Instant::now(),
            timeline,
            applied: 0,
            crashed: BTreeSet::new(),
            expected: scenario.expected_guids(),
            root_nodes,
            settle: config.settle,
            duration: scenario.duration,
        })
    }

    /// The deployed cluster (for snapshots, stats, partitions).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn apply(&mut self, action: Action) {
        match action {
            Action::PartitionStart(a, b) => self.cluster.set_partition(a, b, true),
            Action::PartitionHeal(a, b) => self.cluster.set_partition(a, b, false),
            Action::Mh(ap, event) => self.cluster.mh_event(ap, event),
            Action::Crash(node) => {
                self.cluster.crash(node);
                self.crashed.insert(node);
            }
            Action::Query(node, scope) => self.cluster.query(node, scope),
        }
    }

    /// Poll until the alive root-ring nodes converge on the schedule's
    /// expected membership, up to the configured settle budget. The live
    /// world has no global clock to quiesce on, so convergence polling is
    /// the only settle signal; `false` means the budget ran out with the
    /// cluster still moving (the caller's comparison will then report the
    /// divergence).
    pub fn settle(&self) -> bool {
        let alive: Vec<NodeId> =
            self.root_nodes.iter().copied().filter(|n| !self.crashed.contains(n)).collect();
        let deadline = Instant::now() + self.settle;
        loop {
            let converged = alive.iter().all(|&n| {
                self.cluster
                    .snapshot(n, Duration::from_millis(500))
                    .map(|s| operational_guids(&s.ring_members) == self.expected)
                    .unwrap_or(false)
            });
            if converged {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Collect every alive node's final view into the substrate-neutral
    /// outcome shape.
    pub fn outcome(&self) -> ScenarioOutcome {
        let mut views: BTreeMap<NodeId, BTreeSet<Guid>> = BTreeMap::new();
        for &id in self.cluster.layout.nodes.keys() {
            if self.crashed.contains(&id) {
                continue;
            }
            if let Some(snap) = self.cluster.snapshot(id, Duration::from_secs(1)) {
                views.insert(id, operational_guids(&snap.ring_members));
            }
        }
        ScenarioOutcome { views, crashed: self.crashed.clone() }
    }

    /// Stop the reactor pool.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

impl Engine for LiveEngine {
    fn engine_now(&self) -> u64 {
        let tick_ns = self.tick.as_nanos().max(1);
        (self.start.elapsed().as_nanos() / tick_ns) as u64
    }

    /// Advance wall-clock time to tick `deadline`, applying every timeline
    /// action that falls due on the way (each at its scheduled instant).
    fn run_until(&mut self, deadline: u64) {
        while self.applied < self.timeline.len() && self.timeline[self.applied].0 <= deadline {
            let t = self.timeline[self.applied].0;
            let due = at_tick(self.start, self.tick, t);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            // Apply *every* action scheduled at tick t before sleeping
            // again.
            while self.applied < self.timeline.len() && self.timeline[self.applied].0 == t {
                let action = self.timeline[self.applied].2.take();
                self.applied += 1;
                if let Some(action) = action {
                    self.apply(action);
                }
            }
        }
        let end = at_tick(self.start, self.tick, deadline);
        let now = Instant::now();
        if end > now {
            std::thread::sleep(end - now);
        }
    }

    fn pending_disruptions(&self) -> usize {
        self.timeline.len() - self.applied
    }

    /// The live runtime tracks its repair/query latency surfaces
    /// unconditionally (the lock is touched only on rare completion
    /// events), so there is nothing to switch on.
    fn enable_obs_tracking(&mut self) {}

    fn obs_levels(&self) -> rgb_core::obs::LevelHistograms {
        self.cluster.level_latency()
    }

    /// Mailbox depths are not observable across worker threads; the live
    /// engine reports zero (drained-or-in-flight is the only statement a
    /// wall-clock world can make).
    fn queue_len(&self) -> usize {
        0
    }

    fn system_digest(&self, settled: bool) -> SystemDigest {
        let mut digests = Vec::new();
        for &id in self.cluster.layout.nodes.keys() {
            if self.crashed.contains(&id) {
                continue;
            }
            if let Some(snap) = self.cluster.snapshot(id, Duration::from_secs(1)) {
                digests.push(snap.digest);
            }
        }
        SystemDigest {
            now: self.engine_now().min(self.duration),
            nodes: digests,
            crashed: self.crashed.clone(),
            settled,
        }
    }

    fn counters(&self) -> EngineCounters {
        let stats = self.cluster.stats();
        EngineCounters {
            sent_total: stats.frames_sent,
            app_events: stats.app_events,
            lost: 0, // the live transport never models random loss
            partition_dropped: stats.partition_dropped,
        }
    }
}

impl LiveRuntime for LiveConfig {
    /// Deploy, replay the timeline to the scenario's nominal duration,
    /// settle, collect, shut down. The digest's `settled` flag carries the
    /// settle loop's verdict, so quiescence-gated oracles never judge a
    /// cluster that was still moving when the budget ran out.
    fn run_live(
        &self,
        scenario: &Scenario,
    ) -> Result<(ScenarioOutcome, SystemDigest), ScenarioError> {
        let mut engine = LiveEngine::new(scenario, self)?;
        engine.run_until(scenario.duration);
        let settled = engine.settle();
        let outcome = engine.outcome();
        let mut digest = engine.system_digest(settled);
        // Report the nominal scenario time, not the (longer) wall-clock
        // tick estimate after settling.
        digest.now = scenario.duration;
        engine.shutdown();
        Ok((outcome, digest))
    }
}

/// Run `scenario` on the live substrate with one tick lasting `tick` of
/// real time and up to `settle` of convergence polling.
///
/// # Panics
///
/// Panics if the scenario is invalid or the cluster cannot start.
#[deprecated(since = "0.6.0", note = "use `Scenario::run_on(Backend::Live(&live_config))`")]
pub fn run_scenario(scenario: &Scenario, tick: Duration, settle: Duration) -> ScenarioOutcome {
    #[allow(deprecated)]
    run_scenario_digest(scenario, tick, settle).0
}

/// [`run_scenario`] that also collects the final `SystemDigest`.
///
/// # Panics
///
/// Panics if the scenario is invalid or the cluster cannot start.
#[deprecated(since = "0.6.0", note = "use `Scenario::run_on_digest(Backend::Live(&live_config))`")]
pub fn run_scenario_digest(
    scenario: &Scenario,
    tick: Duration,
    settle: Duration,
) -> (ScenarioOutcome, SystemDigest) {
    let config = LiveConfig::default().with_tick(tick).with_settle(settle);
    config.run_live(scenario).unwrap_or_else(|e| panic!("invalid scenario: {e}"))
}
