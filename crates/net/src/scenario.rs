//! Replay a [`Scenario`] on the live threaded substrate.
//!
//! The same declarative scenario value the simulator executes
//! deterministically ([`Scenario::run_sim`]) is replayed here against real
//! concurrency: the timeline is walked in wall-clock time (one protocol
//! tick = `tick` of real time), partition transitions / mobile-host events
//! / crashes / queries are applied through the [`LiveCluster`] operator
//! API, and the final membership views are collected into the same
//! [`ScenarioOutcome`] shape — which is how the differential tests compare
//! the two worlds view-for-view. [`run_scenario_digest`] additionally
//! collects a final [`SystemDigest`], so the explorer's invariant oracles
//! can judge a shrunk reproducer on this substrate with the same code
//! that judged it on the simulator.
//!
//! The live transport has real (near-zero) channel latency, so the
//! scenario's latency bands — and the duplication/reordering fault
//! dimensions, which are properties of the modelled network — are not
//! modelled here; loss is always zero. Link partitions *are* applied (the
//! router severs the pair for the scheduled window). What must agree
//! across substrates is the *converged membership*, not the timing.

use crate::cluster::LiveCluster;
use rgb_core::prelude::*;
use rgb_sim::scenario::{operational_guids, Scenario, ScenarioOutcome};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// One timeline entry, ordered by (time, insertion index).
enum Action {
    PartitionStart(NodeId, NodeId),
    PartitionHeal(NodeId, NodeId),
    Mh(NodeId, MhEvent),
    Crash(NodeId),
    Query(NodeId, QueryScope),
}

/// Wall-clock instant of scenario tick `t`.
fn at_tick(start: Instant, tick: Duration, t: u64) -> Instant {
    start + tick * u32::try_from(t).unwrap_or(u32::MAX)
}

/// Run `scenario` on the live substrate with one tick lasting `tick` of
/// real time, then keep polling for up to `settle` of extra wall time until
/// the alive root-ring nodes converge on the schedule's expected membership
/// (live thread interleavings need a grace period the discrete-event world
/// does not).
///
/// Returns the final views of every alive node, like [`Scenario::run_sim`].
///
/// # Panics
///
/// Panics if the scenario fails [`Scenario::validate`].
pub fn run_scenario(scenario: &Scenario, tick: Duration, settle: Duration) -> ScenarioOutcome {
    run_scenario_digest(scenario, tick, settle).0
}

/// [`run_scenario`] that also collects the final [`SystemDigest`] of every
/// alive node (from the per-node snapshot channel). The digest's `settled`
/// flag carries the settle loop's verdict: `true` only when the alive
/// root-ring nodes converged on the expected membership within the settle
/// budget, so quiescence-gated oracles never judge a cluster that was
/// still moving when the budget ran out.
///
/// # Panics
///
/// Panics if the scenario fails [`Scenario::validate`].
pub fn run_scenario_digest(
    scenario: &Scenario,
    tick: Duration,
    settle: Duration,
) -> (ScenarioOutcome, SystemDigest) {
    scenario.validate().expect("invalid scenario");
    let layout = scenario.layout();
    let mut cluster = LiveCluster::start(layout.clone(), &scenario.cfg, tick);

    // Merge the schedules into one stable-ordered timeline. The insertion
    // order (partition transitions, then crashes, then MH events, then
    // queries) mirrors the push order of `Scenario::build_sim`, so
    // same-tick ties resolve identically on both substrates — a partition
    // starting at the same tick as a crash severs the link first in both
    // worlds.
    let mut timeline: Vec<(u64, usize, Action)> = Vec::new();
    let push = |timeline: &mut Vec<(u64, usize, Action)>, t: u64, action: Action| {
        let idx = timeline.len();
        timeline.push((t, idx, action));
    };
    for p in &scenario.partitions {
        push(&mut timeline, p.at, Action::PartitionStart(p.a, p.b));
        push(&mut timeline, p.heal_at, Action::PartitionHeal(p.a, p.b));
    }
    for c in &scenario.crashes {
        push(&mut timeline, c.at, Action::Crash(c.node));
    }
    let mut mh_schedule = scenario.mh_schedule.clone();
    mh_schedule.sort_by_key(|&(t, ap, _)| (t, ap));
    for (t, ap, event) in mh_schedule {
        push(&mut timeline, t, Action::Mh(ap, event));
    }
    for q in &scenario.queries {
        push(&mut timeline, q.at, Action::Query(q.node, q.scope));
    }
    timeline.sort_by_key(|&(t, idx, _)| (t, idx));

    let start = Instant::now();
    let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
    for (t, _, action) in timeline {
        let due = at_tick(start, tick, t);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        match action {
            Action::PartitionStart(a, b) => cluster.set_partition(a, b, true),
            Action::PartitionHeal(a, b) => cluster.set_partition(a, b, false),
            Action::Mh(ap, event) => cluster.mh_event(ap, event),
            Action::Crash(node) => {
                cluster.crash(node);
                crashed.insert(node);
            }
            Action::Query(node, scope) => cluster.query(node, scope),
        }
    }

    // Let the scenario play out to its nominal duration.
    let end = at_tick(start, tick, scenario.duration);
    let now = Instant::now();
    if end > now {
        std::thread::sleep(end - now);
    }

    // Settle: the live world has no global clock to quiesce on, so poll
    // until the alive root-ring nodes hold exactly the expected membership
    // (or the settle budget runs out — the caller's comparison will then
    // report the divergence).
    let expected = scenario.expected_guids();
    let root_alive: Vec<NodeId> =
        layout.root_ring().nodes.iter().copied().filter(|n| !crashed.contains(n)).collect();
    let deadline = Instant::now() + settle;
    let converged = loop {
        let converged = root_alive.iter().all(|&n| {
            cluster
                .snapshot(n, Duration::from_millis(500))
                .map(|s| operational_guids(&s.ring_members) == expected)
                .unwrap_or(false)
        });
        if converged {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };

    // Collect every alive node's final view and digest.
    let mut views: BTreeMap<NodeId, BTreeSet<Guid>> = BTreeMap::new();
    let mut digests = Vec::new();
    for &id in layout.nodes.keys() {
        if crashed.contains(&id) {
            continue;
        }
        if let Some(snap) = cluster.snapshot(id, Duration::from_secs(1)) {
            views.insert(id, operational_guids(&snap.ring_members));
            digests.push(snap.digest);
        }
    }
    cluster.shutdown();
    // `settled` carries the settle loop's verdict: quiescence-gated
    // oracles only judge the final digest when the cluster actually
    // converged within the budget — a timed-out settle is reported as
    // unsettled, not asserted against.
    let digest = SystemDigest {
        now: scenario.duration,
        nodes: digests,
        crashed: crashed.clone(),
        settled: converged,
    };
    (ScenarioOutcome { views, crashed }, digest)
}
