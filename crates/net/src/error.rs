//! Typed errors of the live reactor runtime.
//!
//! Mirrors the shape of `rgb_sim::ScenarioError`: every failure mode of
//! building or configuring a [`crate::cluster::Cluster`] is a variant with
//! enough context to say *what* was rejected, so batch tooling (the
//! scenario replayer, CI smoke jobs) can report precisely instead of
//! panicking. [`crate::cluster::Cluster::try_new`] and
//! [`crate::reactor::LiveConfig::validate`] are the producers.

use rgb_core::prelude::NodeId;
use std::fmt;

/// Why a live cluster could not be configured or started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A [`crate::reactor::LiveConfig`] field is out of range.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// What is wrong with it.
        reason: String,
    },
    /// A node of the layout could not be instantiated as a protocol
    /// engine (the layout and the node disagree).
    InvalidLayout {
        /// The offending node.
        node: NodeId,
        /// The underlying description.
        reason: String,
    },
    /// The OS refused to spawn a reactor worker thread.
    Spawn {
        /// The underlying description.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidConfig { field, reason } => {
                write!(f, "invalid live config: {field}: {reason}")
            }
            NetError::InvalidLayout { node, reason } => {
                write!(f, "invalid layout at node {node}: {reason}")
            }
            NetError::Spawn { reason } => {
                write!(f, "failed to spawn reactor worker: {reason}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_piece() {
        let e = NetError::InvalidConfig { field: "tick", reason: "must be non-zero".into() };
        assert!(e.to_string().contains("tick"));
        let e = NetError::InvalidLayout { node: NodeId(7), reason: "unknown node".into() };
        assert!(e.to_string().contains('7'));
        let e = NetError::Spawn { reason: "EAGAIN".into() };
        assert!(e.to_string().contains("EAGAIN"));
    }
}
