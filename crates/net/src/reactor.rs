//! The reactor-multiplexed live runtime: a small worker pool drives
//! thousands of sans-IO [`NodeState`]s per thread.
//!
//! This replaces the thread-per-node loop of earlier revisions. Each
//! **worker** owns a contiguous slice of the hierarchy (whole rings,
//! assigned by [`rgb_core::topology::HierarchyLayout::partition_rings`], so
//! intra-ring token traffic stays worker-local), one bounded mailbox of
//! [`ToWorker`] messages, and one wall-tick `TimerWheel` — the same
//! bucketed wheel-plus-far-heap design as the simulator's event queue
//! (`crates/sim/src/queue.rs`), minus the determinism machinery a
//! wall-clock world cannot honour anyway. The worker loop is a classic
//! reactor: fire due timers, then block on the mailbox until the next
//! timer deadline (capped), then drain a bounded batch of messages.
//!
//! All protocol outputs flow through the shared
//! [`rgb_core::substrate::apply_outputs`] driver against the
//! `ReactorSubstrate`, exactly as in the simulator, and the hot loop
//! reuses one [`OutputSink`] buffer so no `Vec<Output>` is allocated per
//! input. Frames between nodes — same worker or not — always go through
//! the [`Router`] and the binary wire codec, so the wire format stays
//! exercised end-to-end.

use crate::error::NetError;
use crate::transport::{Router, SendOutcome, ToWorker};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TrySendError};
use rgb_core::events::{AppEvent, Input, TimerKind};
use rgb_core::introspect::StateDigest;
use rgb_core::member::MemberList;
use rgb_core::message::{Msg, MsgLabel};
use rgb_core::node::NodeState;
use rgb_core::obs::LevelHistograms;
use rgb_core::prelude::{GroupId, NodeId};
use rgb_core::substrate::{apply_outputs, OutputSink, Substrate};
use rgb_core::wire;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a live reactor deployment is shaped: worker count, tick length,
/// mailbox bounds and the settle budget scenario replay may spend waiting
/// for convergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveConfig {
    /// Reactor worker threads. `0` means "one per available CPU"
    /// (`std::thread::available_parallelism`). The cluster never spawns
    /// more workers than the layout has rings.
    pub workers: usize,
    /// Real-time duration of one protocol tick.
    pub tick: Duration,
    /// Capacity of each worker's bounded mailbox. A full mailbox drops
    /// data-plane frames with a counter ([`ClusterStats`]); operator-API
    /// injections park instead.
    pub mailbox_capacity: usize,
    /// Capacity of the bounded application-event stream; overflow is
    /// dropped and counted, never buffered without bound.
    pub event_capacity: usize,
    /// Extra wall time scenario replay may poll for convergence after the
    /// nominal duration (live thread interleavings need a grace period the
    /// discrete-event world does not).
    pub settle: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            workers: 0,
            tick: Duration::from_millis(1),
            mailbox_capacity: 65_536,
            event_capacity: 65_536,
            settle: Duration::from_secs(15),
        }
    }
}

impl LiveConfig {
    /// Set the worker-thread count (`0` = one per available CPU).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the real-time duration of one protocol tick.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Set the per-worker mailbox capacity.
    pub fn with_mailbox_capacity(mut self, cap: usize) -> Self {
        self.mailbox_capacity = cap;
        self
    }

    /// Set the bounded application-event stream capacity.
    pub fn with_event_capacity(mut self, cap: usize) -> Self {
        self.event_capacity = cap;
        self
    }

    /// Set the scenario-replay settle budget.
    pub fn with_settle(mut self, settle: Duration) -> Self {
        self.settle = settle;
        self
    }

    /// Check every field is usable; the typed error names the offender.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.tick.is_zero() {
            return Err(NetError::InvalidConfig {
                field: "tick",
                reason: "must be non-zero".into(),
            });
        }
        if self.mailbox_capacity == 0 {
            return Err(NetError::InvalidConfig {
                field: "mailbox_capacity",
                reason: "must be at least 1".into(),
            });
        }
        if self.event_capacity == 0 {
            return Err(NetError::InvalidConfig {
                field: "event_capacity",
                reason: "must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// The worker count this config resolves to on this machine.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        }
    }
}

/// A point-in-time copy of the interesting parts of a node's state.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The node.
    pub id: NodeId,
    /// Its current view epoch.
    pub epoch: u64,
    /// Its ring membership list.
    pub ring_members: MemberList,
    /// Locally attached members (APs).
    pub local_members: MemberList,
    /// Current ring roster size.
    pub roster_len: usize,
    /// Current leader, if any.
    pub leader: Option<NodeId>,
    /// RingOK flag.
    pub ring_ok: bool,
    /// Outbound frames **this node** failed to place: destination unknown
    /// or stopped, or the destination worker's mailbox was full. Genuinely
    /// per-node — cluster-wide totals live in [`ClusterStats`].
    pub dropped_frames: u64,
    /// Oracle-facing digest of the node's state — the same shape the
    /// simulator produces, so invariant oracles judge both substrates with
    /// identical code.
    pub digest: StateDigest,
}

/// Cluster-wide transport and delivery counters, read through
/// [`crate::cluster::Cluster::stats`]. These used to be misfiled as a
/// "per-node" snapshot field; they are global by construction (router
/// atomics shared by every worker).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Frames delivered into a worker mailbox.
    pub frames_sent: u64,
    /// Frames dropped because the destination was unknown or stopped.
    pub dropped_frames: u64,
    /// Frames dropped because a destination mailbox was full.
    pub backpressure_dropped: u64,
    /// Frames swallowed by active link partitions.
    pub partition_dropped: u64,
    /// Application events delivered to the subscriber stream.
    pub app_events: u64,
    /// Application events dropped because the stream was full.
    pub app_events_dropped: u64,
    /// Received frames dropped at decode: corrupt bytes or a foreign
    /// group id — the same rejection the simulators count, so a live run
    /// and a simulated replay of one scenario expose comparable counters.
    pub codec_rejected: u64,
}

/// Counters shared between every worker and the cluster handle.
#[derive(Debug, Default)]
pub(crate) struct ReactorShared {
    pub app_events: AtomicU64,
    pub app_events_dropped: AtomicU64,
    pub codec_rejected: AtomicU64,
    /// Per-ring-level latency surfaces (repair and query; join anchoring
    /// needs deterministic wire sightings and stays simulator-only).
    /// Workers take this lock only on the rare completion events, never
    /// per frame.
    pub latency: Mutex<LevelHistograms>,
}

/// log2 of the wheel size: the wheel covers `[cursor, cursor + 1024)`
/// ticks, comfortably beyond every default protocol timeout at millisecond
/// ticks; farther deadlines fall back to the heap.
const WHEEL_BITS: u32 = 10;
/// Number of wheel buckets.
const WHEEL_SLOTS: u64 = 1 << WHEEL_BITS;
/// Longest the worker loop blocks on its mailbox even with no timer due —
/// a liveness bound, not a correctness one.
const MAX_PARK: Duration = Duration::from_millis(50);
/// Messages drained per mailbox batch before re-checking timers, so a
/// flooded mailbox cannot starve timer fairness.
const DRAIN_BATCH: usize = 256;
/// Sentinel for "no latency interval open" in [`MuxNode`]'s anchors.
const NO_ANCHOR: u64 = u64::MAX;

/// One armed timer: wall-tick deadline, hosting worker's local node index,
/// kind and the generation stamp that detects superseded entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    at: u64,
    node: u32,
    kind: TimerKind,
    gen: u64,
}

/// Per-worker wall-tick timer wheel: 1024 one-tick buckets in front of a
/// `BinaryHeap` fallback for deadlines beyond the horizon — the simulator
/// queue's design with the determinism machinery stripped (wall-clock
/// firing order is inherently racy, and cancellation is generation-checked
/// at fire time, so within-tick order is free).
///
/// Invariant: every wheel entry satisfies `at >= cursor`, and a non-empty
/// bucket holds entries of a single tick (an entry a full rotation ahead
/// would need `at - cursor >= WHEEL_SLOTS` at push time, which the
/// admission test routes to the heap).
#[derive(Debug)]
struct TimerWheel {
    buckets: Vec<Vec<TimerEntry>>,
    far: BinaryHeap<Reverse<(u64, u32, TimerKind, u64)>>,
    /// Next tick not yet drained.
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    fn new() -> Self {
        TimerWheel {
            buckets: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            far: BinaryHeap::new(),
            cursor: 0,
            len: 0,
        }
    }

    fn wheel_len(&self) -> usize {
        self.len - self.far.len()
    }

    /// Arm an entry. Deadlines already behind the drain cursor are clamped
    /// to it, so a timer armed for the tick currently being drained still
    /// fires (this drain or the next pass) instead of parking in a bucket
    /// the cursor has moved past.
    fn arm(&mut self, at: u64, node: u32, kind: TimerKind, gen: u64) {
        let at = at.max(self.cursor);
        if at - self.cursor < WHEEL_SLOTS {
            self.buckets[(at & (WHEEL_SLOTS - 1)) as usize].push(TimerEntry {
                at,
                node,
                kind,
                gen,
            });
        } else {
            self.far.push(Reverse((at, node, kind, gen)));
        }
        self.len += 1;
    }

    /// Pop one entry with `at <= now`, or `None` when nothing is due. The
    /// caller loops; entries armed during a drive at the current tick are
    /// picked up by the same loop.
    fn pop_due(&mut self, now: u64) -> Option<TimerEntry> {
        if let Some(&Reverse((at, _, _, _))) = self.far.peek() {
            if at <= now {
                let Reverse((at, node, kind, gen)) = self.far.pop().expect("peeked");
                self.len -= 1;
                return Some(TimerEntry { at, node, kind, gen });
            }
        }
        if self.wheel_len() == 0 {
            // Nothing to scan: keep the cursor abreast of time so a long
            // idle stretch is not replayed bucket-by-bucket later.
            self.cursor = self.cursor.max(now);
            return None;
        }
        while self.cursor <= now {
            let bucket = (self.cursor & (WHEEL_SLOTS - 1)) as usize;
            if let Some(entry) = self.buckets[bucket].pop() {
                debug_assert_eq!(entry.at, self.cursor, "bucket holds a foreign tick");
                self.len -= 1;
                return Some(entry);
            }
            self.cursor += 1;
        }
        None
    }

    /// Earliest armed deadline (stale entries included — they only make
    /// the worker wake early, never late).
    fn next_deadline(&self) -> Option<u64> {
        let far = self.far.peek().map(|&Reverse((at, _, _, _))| at);
        let wheel = if self.wheel_len() == 0 {
            None
        } else {
            let mut t = self.cursor;
            loop {
                // Non-empty wheel ⇒ some bucket within the horizon holds an
                // entry, and a non-empty bucket is single-tick, so its first
                // entry's `at` is that tick.
                if let Some(e) = self.buckets[(t & (WHEEL_SLOTS - 1)) as usize].first() {
                    break Some(e.at);
                }
                t += 1;
            }
        };
        match (far, wheel) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// One multiplexed node as a worker holds it: protocol state, the live
/// generation of each armed timer kind, and the per-node outbound-drop
/// counter surfaced in [`NodeSnapshot`].
struct MuxNode {
    state: NodeState,
    /// Live timers: kind → generation that is allowed to fire. Entries in
    /// the wheel with any other generation are stale and ignored.
    timers: BTreeMap<TimerKind, u64>,
    next_gen: u64,
    dropped_frames: u64,
    /// Tick a ring-repair suspicion (`TokenLost` / `TokenRetransmit`)
    /// fired, until `RingRepaired` closes the interval into
    /// [`ReactorShared::latency`] or ring progress (a token or ack
    /// arriving) clears it; [`NO_ANCHOR`] when none is open.
    ring_repair_started: u64,
    /// Tick a `ParentTimeout` fired, until the matching `Reattached`
    /// closes the interval; [`NO_ANCHOR`] when none is open.
    reattach_started: u64,
    /// Tick the last `StartQuery` was injected; [`NO_ANCHOR`] when no
    /// query is in flight.
    query_started: u64,
}

/// The reactor-worker implementation of the substrate layer: wall-tick
/// timers on the worker's wheel, frames through the shared [`Router`],
/// application events onto the bounded subscriber stream.
struct ReactorSubstrate<'a> {
    router: &'a Router,
    events: &'a Sender<(NodeId, AppEvent)>,
    shared: &'a ReactorShared,
    wheel: &'a mut TimerWheel,
    timers: &'a mut BTreeMap<TimerKind, u64>,
    next_gen: &'a mut u64,
    dropped_frames: &'a mut u64,
    ring_repair_started: &'a mut u64,
    reattach_started: &'a mut u64,
    query_started: &'a mut u64,
    /// The hosted node's ring level (latency surface index).
    level: u8,
    local: u32,
    now: u64,
}

impl Substrate for ReactorSubstrate<'_> {
    fn now(&self) -> u64 {
        self.now
    }

    fn send_frame(&mut self, from: NodeId, to: NodeId, _label: MsgLabel, frame: bytes::Bytes) {
        match self.router.send_frame(from, to, frame) {
            SendOutcome::Delivered | SendOutcome::PartitionDropped => {}
            SendOutcome::Unroutable | SendOutcome::Backpressure => *self.dropped_frames += 1,
        }
    }

    fn arm_timer(&mut self, _node: NodeId, kind: TimerKind, after: u64) {
        *self.next_gen += 1;
        let gen = *self.next_gen;
        self.timers.insert(kind, gen);
        self.wheel.arm(self.now.saturating_add(after), self.local, kind, gen);
    }

    fn cancel_timer(&mut self, _node: NodeId, kind: TimerKind) {
        self.timers.remove(&kind);
    }

    fn deliver_app(&mut self, node: NodeId, event: AppEvent) {
        match &event {
            AppEvent::RingRepaired { .. } => {
                let t0 = std::mem::replace(self.ring_repair_started, NO_ANCHOR);
                if t0 != NO_ANCHOR {
                    let dt = self.now.saturating_sub(t0);
                    let mut latency = self.shared.latency.lock().unwrap_or_else(|e| e.into_inner());
                    latency.level_mut(self.level).repair.record(dt);
                }
            }
            AppEvent::Reattached { .. } => {
                let t0 = std::mem::replace(self.reattach_started, NO_ANCHOR);
                if t0 != NO_ANCHOR {
                    let dt = self.now.saturating_sub(t0);
                    let mut latency = self.shared.latency.lock().unwrap_or_else(|e| e.into_inner());
                    latency.level_mut(self.level).repair.record(dt);
                }
            }
            AppEvent::QueryResult { .. } => {
                let t0 = std::mem::replace(self.query_started, NO_ANCHOR);
                if t0 != NO_ANCHOR {
                    let dt = self.now.saturating_sub(t0);
                    let mut latency = self.shared.latency.lock().unwrap_or_else(|e| e.into_inner());
                    latency.level_mut(self.level).query.record(dt);
                }
            }
            _ => {}
        }
        match self.events.try_send((node, event)) {
            Ok(()) => {
                self.shared.app_events.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) => {
                self.shared.app_events_dropped.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }
}

/// One reactor worker: the nodes it hosts, its mailbox and its wheel.
pub(crate) struct Worker {
    gid: GroupId,
    tick: Duration,
    start: Instant,
    rx: Receiver<ToWorker>,
    router: Router,
    events: Sender<(NodeId, AppEvent)>,
    shared: Arc<ReactorShared>,
    /// Hosted nodes; `None` marks a crashed one (its wheel entries drain
    /// as stale).
    nodes: Vec<Option<MuxNode>>,
    index: HashMap<NodeId, usize>,
    wheel: TimerWheel,
    outs: OutputSink,
}

/// Everything a worker thread needs at spawn time.
pub(crate) struct WorkerSpec {
    pub gid: GroupId,
    pub tick: Duration,
    pub start: Instant,
    pub rx: Receiver<ToWorker>,
    pub router: Router,
    pub events: Sender<(NodeId, AppEvent)>,
    pub shared: Arc<ReactorShared>,
    pub states: Vec<NodeState>,
}

impl Worker {
    pub(crate) fn new(spec: WorkerSpec) -> Self {
        let index =
            spec.states.iter().enumerate().map(|(i, s)| (s.id, i)).collect::<HashMap<_, _>>();
        let nodes = spec
            .states
            .into_iter()
            .map(|state| {
                Some(MuxNode {
                    state,
                    timers: BTreeMap::new(),
                    next_gen: 0,
                    dropped_frames: 0,
                    ring_repair_started: NO_ANCHOR,
                    reattach_started: NO_ANCHOR,
                    query_started: NO_ANCHOR,
                })
            })
            .collect();
        Worker {
            gid: spec.gid,
            tick: spec.tick,
            start: spec.start,
            rx: spec.rx,
            router: spec.router,
            events: spec.events,
            shared: spec.shared,
            nodes,
            index,
            wheel: TimerWheel::new(),
            outs: OutputSink::new(),
        }
    }

    fn now_tick(&self) -> u64 {
        let tick_ns = self.tick.as_nanos().max(1);
        (self.start.elapsed().as_nanos() / tick_ns) as u64
    }

    /// Wall-clock duration until tick `at`, zero if already past.
    fn until_tick(&self, at: u64) -> Duration {
        let tick_ns = self.tick.as_nanos().max(1);
        let deadline_ns = (at as u128).saturating_mul(tick_ns);
        let remaining = deadline_ns.saturating_sub(self.start.elapsed().as_nanos());
        Duration::from_nanos(u64::try_from(remaining).unwrap_or(u64::MAX))
    }

    /// Feed `input` to hosted node `i` and interpret the outputs. The
    /// destructuring split lets the node's state, the wheel and the reused
    /// output sink borrow simultaneously.
    fn drive(&mut self, i: usize, input: Input) {
        let Worker { gid, tick, start, router, events, shared, nodes, wheel, outs, .. } = self;
        let Some(node) = nodes[i].as_mut() else { return };
        let id = node.state.id;
        let tick_ns = tick.as_nanos().max(1);
        let now = (start.elapsed().as_nanos() / tick_ns) as u64;
        node.state.handle_into(input, outs);
        let level = node.state.level as u8;
        let mut sub = ReactorSubstrate {
            router,
            events,
            shared,
            wheel,
            timers: &mut node.timers,
            next_gen: &mut node.next_gen,
            dropped_frames: &mut node.dropped_frames,
            ring_repair_started: &mut node.ring_repair_started,
            reattach_started: &mut node.reattach_started,
            query_started: &mut node.query_started,
            level,
            local: i as u32,
            now,
        };
        apply_outputs(&mut sub, *gid, id, outs);
    }

    fn snapshot_of(node: &MuxNode) -> NodeSnapshot {
        NodeSnapshot {
            id: node.state.id,
            epoch: node.state.epoch,
            ring_members: node.state.ring_members.clone(),
            local_members: node.state.local_members.clone(),
            roster_len: node.state.roster.len(),
            leader: node.state.leader(),
            ring_ok: node.state.ring_ok,
            dropped_frames: node.dropped_frames,
            digest: node.state.digest(),
        }
    }

    /// Apply one mailbox message; `true` means stop the worker.
    fn handle(&mut self, msg: ToWorker) -> bool {
        match msg {
            ToWorker::Net { from, to, frame } => {
                if let Some(&i) = self.index.get(&to) {
                    match wire::decode(&frame) {
                        Ok(env) if env.gid == self.gid => {
                            // The ring reached this node: any open
                            // retransmit/loss suspicion resolved without
                            // a repair.
                            if matches!(env.msg, Msg::Token(_) | Msg::TokenAck { .. }) {
                                if let Some(n) = self.nodes[i].as_mut() {
                                    n.ring_repair_started = NO_ANCHOR;
                                }
                            }
                            self.drive(i, Input::Msg { from, msg: env.msg });
                        }
                        _ => {
                            // Foreign group or corrupt frame: drop, counted.
                            self.shared.codec_rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            ToWorker::Mh { ap, event } => {
                if let Some(&i) = self.index.get(&ap) {
                    self.drive(i, Input::Mh(event));
                }
            }
            ToWorker::Query { node, scope } => {
                if let Some(&i) = self.index.get(&node) {
                    let now = self.now_tick();
                    if let Some(n) = self.nodes[i].as_mut() {
                        n.query_started = now;
                    }
                    self.drive(i, Input::StartQuery { scope });
                }
            }
            ToWorker::Snapshot { node, reply } => {
                if let Some(mux) = self.index.get(&node).and_then(|&i| self.nodes[i].as_ref()) {
                    let _ = reply.try_send(Self::snapshot_of(mux));
                }
            }
            ToWorker::Crash { node } => {
                if let Some(&i) = self.index.get(&node) {
                    self.nodes[i] = None;
                }
            }
            ToWorker::Stop => return true,
        }
        false
    }

    /// The reactor loop: boot every hosted node, then alternate timer
    /// firing with bounded mailbox drains until `Stop`.
    pub(crate) fn run(mut self) {
        for i in 0..self.nodes.len() {
            self.drive(i, Input::Boot);
        }
        loop {
            let now = self.now_tick();
            while let Some(entry) = self.wheel.pop_due(now) {
                let i = entry.node as usize;
                let live = self.nodes[i]
                    .as_mut()
                    .is_some_and(|n| n.timers.get(&entry.kind) == Some(&entry.gen));
                if live {
                    if let Some(n) = self.nodes[i].as_mut() {
                        n.timers.remove(&entry.kind);
                        // A repair suspicion opens the latency interval
                        // the eventual RingRepaired / Reattached closes;
                        // the first trigger wins, and token progress
                        // clears a ring suspicion that resolved without
                        // repair.
                        match entry.kind {
                            TimerKind::TokenLost | TimerKind::TokenRetransmit { .. }
                                if n.ring_repair_started == NO_ANCHOR =>
                            {
                                n.ring_repair_started = now;
                            }
                            TimerKind::ParentTimeout if n.reattach_started == NO_ANCHOR => {
                                n.reattach_started = now;
                            }
                            _ => {}
                        }
                    }
                    self.drive(i, Input::Timer(entry.kind));
                }
            }
            let timeout = match self.wheel.next_deadline() {
                Some(at) => self.until_tick(at).min(MAX_PARK),
                None => MAX_PARK,
            };
            match self.rx.recv_timeout(timeout) {
                Ok(msg) => {
                    if self.handle(msg) {
                        return;
                    }
                    for _ in 0..DRAIN_BATCH {
                        match self.rx.try_recv() {
                            Ok(msg) => {
                                if self.handle(msg) {
                                    return;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {} // loop fires due timers
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_config_default_validates() {
        assert!(LiveConfig::default().validate().is_ok());
        assert!(LiveConfig::default().resolved_workers() >= 1);
    }

    #[test]
    fn live_config_rejects_degenerate_fields() {
        let zero_tick = LiveConfig::default().with_tick(Duration::ZERO);
        assert!(matches!(zero_tick.validate(), Err(NetError::InvalidConfig { field: "tick", .. })));
        let no_mailbox = LiveConfig::default().with_mailbox_capacity(0);
        assert!(matches!(
            no_mailbox.validate(),
            Err(NetError::InvalidConfig { field: "mailbox_capacity", .. })
        ));
        let no_events = LiveConfig { event_capacity: 0, ..LiveConfig::default() };
        assert!(matches!(
            no_events.validate(),
            Err(NetError::InvalidConfig { field: "event_capacity", .. })
        ));
    }

    #[test]
    fn wheel_fires_in_deadline_order_and_skips_stale_generations() {
        let mut wheel = TimerWheel::new();
        wheel.arm(5, 0, TimerKind::Heartbeat, 1);
        wheel.arm(3, 1, TimerKind::TokenKick, 1);
        wheel.arm(5, 0, TimerKind::Heartbeat, 2); // supersedes gen 1
        assert_eq!(wheel.next_deadline(), Some(3));
        let e = wheel.pop_due(10).expect("due entry");
        assert_eq!((e.at, e.node), (3, 1));
        // Both generation-5 entries surface; the caller's gen check drops
        // the stale one.
        let mut gens: Vec<u64> = Vec::new();
        while let Some(e) = wheel.pop_due(10) {
            assert_eq!(e.at, 5);
            gens.push(e.gen);
        }
        gens.sort_unstable();
        assert_eq!(gens, vec![1, 2]);
        assert!(wheel.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn wheel_far_deadlines_fall_back_to_the_heap() {
        let mut wheel = TimerWheel::new();
        wheel.arm(WHEEL_SLOTS * 7, 0, TimerKind::Heartbeat, 1);
        wheel.arm(2, 1, TimerKind::Heartbeat, 1);
        assert_eq!(wheel.next_deadline(), Some(2));
        assert_eq!(wheel.pop_due(2).expect("near entry").node, 1);
        assert_eq!(wheel.next_deadline(), Some(WHEEL_SLOTS * 7));
        assert!(wheel.pop_due(WHEEL_SLOTS).is_none(), "far entry is not due yet");
        let far = wheel.pop_due(WHEEL_SLOTS * 7).expect("far entry fires from the heap");
        assert_eq!(far.at, WHEEL_SLOTS * 7);
    }

    #[test]
    fn wheel_sentinel_deadlines_do_not_overflow() {
        let mut wheel = TimerWheel::new();
        wheel.arm(u64::MAX, 0, TimerKind::Heartbeat, 1);
        assert_eq!(wheel.next_deadline(), Some(u64::MAX));
        assert!(wheel.pop_due(u64::MAX - 1).is_none());
        assert!(wheel.pop_due(u64::MAX).is_some());
    }

    #[test]
    fn wheel_clamps_past_deadlines_to_the_cursor() {
        let mut wheel = TimerWheel::new();
        // March the cursor forward with an armed+fired entry.
        wheel.arm(100, 0, TimerKind::Heartbeat, 1);
        assert!(wheel.pop_due(100).is_some());
        // Arming "in the past" must still fire, not vanish behind the
        // cursor.
        wheel.arm(7, 0, TimerKind::Heartbeat, 2);
        let e = wheel.pop_due(100).expect("clamped entry fires");
        assert_eq!(e.gen, 2);
        assert!(e.at >= 100 || e.at == 100, "deadline clamped to cursor");
    }
}
