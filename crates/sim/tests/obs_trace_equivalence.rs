//! Trace equivalence of the observability layer itself: the sequential
//! and the sharded engine, run over production-shaped corpus presets with
//! flight recorders attached, must emit the **same multiset of typed
//! trace records** and merge to the **same per-ring-level latency
//! histograms**. The comparison is ordering-insensitive (both streams are
//! sorted) because par shards interleave emission order across mailboxes
//! — what must agree is what happened, to whom, at which tick, not which
//! shard wrote it down first.

use rgb_core::obs::{FlightRecorder, TraceSink};
use rgb_sim::presets;

/// Big enough to hold every record either engine emits for these presets
/// — eviction would make the comparison vacuous, so zero drops is
/// asserted, not assumed.
const CAP: usize = 1 << 16;

#[test]
fn seq_and_par_traces_agree_on_corpus_presets() {
    // diurnal_load_curve covers joins, handoffs, leaves, failure
    // detections, and queries; rolling_upgrade_churn adds crashes and the
    // repair records they trigger, on a three-level hierarchy.
    for name in ["diurnal_load_curve", "rolling_upgrade_churn"] {
        let sc = presets::by_name(name, 1).expect("registered preset");

        let mut seq = sc.try_build_sim().expect("preset validates");
        seq.enable_obs(Box::new(FlightRecorder::new(CAP)));
        seq.run_until(sc.duration);

        let mut par = sc.try_build_par(4).expect("preset validates");
        par.enable_obs(|_| Box::new(FlightRecorder::new(CAP)) as Box<dyn TraceSink>);
        par.run_until(sc.duration);

        assert_eq!(seq.trace_dropped(), 0, "'{name}': seq recorder evicted");
        assert_eq!(par.trace_dropped(), 0, "'{name}': par recorders evicted");

        let mut a = seq.trace_snapshot();
        let mut b = par.trace_snapshot();
        a.sort_unstable();
        b.sort_unstable();
        assert!(!a.is_empty(), "'{name}': preset emitted no trace records");
        assert_eq!(
            a.len(),
            b.len(),
            "'{name}': record counts differ (seq {}, par {})",
            a.len(),
            b.len()
        );
        assert_eq!(a, b, "'{name}': sorted trace streams differ");

        // The merged shard histograms are the sequential histograms: one
        // latency surface, however the nodes were distributed.
        assert_eq!(
            seq.metrics.levels,
            par.level_latency(),
            "'{name}': per-ring-level latency surfaces differ"
        );
    }
}
