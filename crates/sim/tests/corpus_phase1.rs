//! Corpus phase 1 — the light tier of the named production-shaped
//! scenario corpus (`tests/corpus/`, constructors in [`rgb_sim::presets`]).
//!
//! Runs in debug on every `cargo test`: pins the committed artifacts to
//! their constructors (a corpus file that drifts from `presets::<name>(1)`
//! is a silently different experiment), and drives the two cheap presets
//! end-to-end on both engines with the standard oracle battery and their
//! per-scenario envelope assertions. The heavier presets are phase 2/3
//! (`corpus_phase2.rs`, `corpus_phase3.rs`), release-tier.

use rgb_sim::explore::{artifact, Explorer};
use rgb_sim::presets;

fn corpus_path(name: &str) -> String {
    format!("{}/../../tests/corpus/{name}.scn", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn committed_corpus_artifacts_pin_their_presets() {
    for name in presets::NAMES {
        let text = std::fs::read_to_string(corpus_path(name))
            .unwrap_or_else(|e| panic!("committed corpus artifact {name}.scn: {e}"));
        let parsed =
            artifact::parse(&text).unwrap_or_else(|e| panic!("{name}.scn must parse: {e}"));
        let preset = presets::by_name(name, 1).expect("registered preset");
        assert_eq!(
            parsed, preset,
            "{name}.scn drifted from presets::{name}(1) — regenerate with \
             `explore --write-presets tests/corpus` or fix the preset"
        );
        // Canonical rendering: the committed bytes are exactly what the
        // renderer produces today, so format changes can't hide in diffs.
        assert_eq!(artifact::render(&preset), text, "{name}.scn is not canonically rendered");
    }
}

#[test]
fn diurnal_load_curve_meets_its_envelope() {
    let sc = presets::diurnal_load_curve(1);
    let report = Explorer::default().run_scenario(&sc).expect("preset validates");
    assert!(report.violation.is_none(), "oracle fired: {:?}", report.violation);
    // Envelope: one simulated day settles, the roamers' handoffs and the
    // evening drain all surface as application events, and the final
    // digest holds the members who neither left nor failed.
    let settled = report.trace.settled_at().expect("a day of load must settle");
    assert!(settled <= sc.duration, "settled during the scheduled day, not the settle grace");
    let last = report.trace.observations.last().unwrap();
    assert!(last.app_events > 0, "joins/leaves/handoffs must reach the application");
}

#[test]
fn rolling_upgrade_churn_meets_its_envelope() {
    let sc = presets::rolling_upgrade_churn(1);
    let report = Explorer::default().run_scenario(&sc).expect("preset validates");
    assert!(report.violation.is_none(), "oracle fired: {:?}", report.violation);
    // Envelope: every ring lost exactly one node, so the crashed set at
    // the end is one victim per ring — and the system still settles.
    assert!(report.trace.settled_at().is_some(), "fleet must recover from the rolling upgrade");
    assert_eq!(sc.crashes.len(), sc.layout().ring_count(), "one restart per ring");
}

/// Cheap presets replay to byte-identical digest streams on the
/// sequential and the sharded engine — the corpus is runnable on
/// `Backend::{Sim, Par}` interchangeably. (Phases 2–3 cover the heavy
/// presets; the release-tier `explore --corpus-replay tests/corpus` gate
/// covers all four from the committed artifacts.)
#[test]
fn cheap_presets_are_engine_equivalent() {
    for sc in [presets::diurnal_load_curve(1), presets::rolling_upgrade_churn(1)] {
        let stride = (sc.duration / 16).max(1);
        let mut seq = sc.try_build_sim().expect("preset validates");
        let mut par = sc.try_build_par(4).expect("preset validates");
        let mut t = 0;
        while t < sc.duration {
            t = (t + stride).min(sc.duration);
            seq.run_until(t);
            par.run_until(t);
            assert_eq!(
                seq.system_digest(false),
                par.system_digest(false),
                "'{}' diverged at t={t}",
                sc.name
            );
        }
    }
}

#[test]
fn presets_are_seed_parameterized() {
    // The committed artifacts are seed 1, but the constructors are pure
    // functions of any seed — a different seed is a different workload
    // with the same shape.
    for name in presets::NAMES {
        let one = presets::by_name(name, 1).unwrap();
        let two = presets::by_name(name, 2).unwrap();
        assert_ne!(one, two, "{name} must vary with the seed");
        assert_eq!(one.height, two.height, "{name}: shape (height) is seed-independent");
        assert_eq!(one.ring_size, two.ring_size, "{name}: shape (ring size) is seed-independent");
        two.validate().unwrap_or_else(|e| panic!("{name} at seed 2: {e}"));
    }
    // Spot-check determinism of one full run per cheap preset family.
    let a = Explorer::default().run_scenario(&presets::diurnal_load_curve(3)).unwrap();
    let b = Explorer::default().run_scenario(&presets::diurnal_load_curve(3)).unwrap();
    let fp = |r: &rgb_sim::explore::RunReport| {
        r.trace.observations.iter().map(|o| o.fingerprint).collect::<Vec<_>>()
    };
    assert_eq!(fp(&a), fp(&b), "same seed, same digest trace");
}

#[test]
fn corpus_readme_documents_every_preset() {
    let readme = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/corpus/README.md"
    ))
    .expect("tests/corpus/README.md exists");
    for name in presets::NAMES {
        assert!(readme.contains(name), "README.md must document {name}");
    }
}
