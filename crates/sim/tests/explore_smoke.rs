//! Bounded smoke run of the scenario explorer, `cargo test`-visible: a
//! block of generated scenarios across the widened fault space must pass
//! the standard oracle battery. The full 200-seed block runs in the PR
//! pipeline as `cargo run --release -p rgb-bench --bin explore --
//! --seeds 200 --smoke`; nightly CI explores the full envelope.

use rgb_sim::explore::{Explorer, ScenarioGen};

#[test]
fn smoke_seed_block_is_clean() {
    let explorer = Explorer::default();
    let gen = ScenarioGen::smoke(0);
    let exploration = explorer.explore(&gen, 0, 40);
    assert_eq!(exploration.runs(), 40);
    if let Some(found) = &exploration.found {
        panic!(
            "seed {} violated {}:\n{}\nshrunk reproducer:\n{}",
            found.seed, found.violation.oracle, found.violation.detail, found.artifact
        );
    }
    // Every run produced a usable trace, and the overwhelming majority
    // settle within the budget (a run that never settles only skips the
    // convergence oracles, but a *block* that never settles would mean
    // the gate is broken and the settled checks never run at all).
    let settled = exploration.reports.iter().filter(|r| r.trace.settled_at().is_some()).count();
    assert!(
        settled >= 35,
        "only {settled}/40 runs settled — the quiescence gate is starving the oracles"
    );
    for report in &exploration.reports {
        assert!(!report.trace.observations.is_empty(), "run {} has no trace", report.seed);
    }
}

#[test]
fn full_envelope_spot_check_is_clean() {
    // A handful of full-envelope seeds (bigger topologies, longer runs)
    // so the nightly configuration cannot silently rot between nights.
    let explorer = Explorer::default();
    let gen = ScenarioGen::new(99);
    let exploration = explorer.explore(&gen, 0, 8);
    assert!(
        exploration.found.is_none(),
        "violation in full-envelope spot check: {:?}",
        exploration.found.map(|f| f.violation)
    );
}
