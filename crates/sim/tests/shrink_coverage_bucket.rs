//! The shrinker preserves the coverage bucket of the violation it
//! minimises.
//!
//! ddmin accepts a cut only when the **same oracle** fires again, and the
//! coverage bucket of a violating run is `violation:<oracle>` — so a
//! shrunk reproducer must land in the original's bucket. If it didn't,
//! replaying shrunk artifacts through the guided loop would count every
//! minimised bug as "new coverage" and the corpus would fill with
//! re-discoveries of one violation. This test pins that contract through
//! the public API, with a synthetic always-firing oracle (no real
//! protocol bug required).

use rgb_core::prelude::*;
use rgb_sim::explore::coverage::CoverageKey;
use rgb_sim::explore::{Explorer, Oracle, ScenarioGen, Violation};
use rgb_sim::Scenario;

/// Fires as soon as any node has crashed — a deterministic stand-in for a
/// crash-triggered protocol bug, so ddmin must keep at least one crash.
#[derive(Debug, Default)]
struct CrashWitness;

impl Oracle for CrashWitness {
    fn name(&self) -> &'static str {
        "crash_witness"
    }

    fn check(&mut self, digest: &SystemDigest) -> Result<(), Violation> {
        match digest.crashed.iter().next() {
            Some(node) => Err(Violation {
                oracle: self.name(),
                at: digest.now,
                detail: format!("{node} crashed (synthetic witness)"),
            }),
            None => Ok(()),
        }
    }
}

fn witness_battery(_: &Scenario) -> Vec<Box<dyn Oracle>> {
    vec![Box::new(CrashWitness)]
}

#[test]
fn shrinking_preserves_the_coverage_bucket() {
    let explorer = Explorer::default();
    // Sample smoke seeds until one carries a crash plan (most do), so the
    // witness has something to fire on and ddmin has plenty to cut.
    let gen = ScenarioGen::smoke(11);
    let scenario = (0..64)
        .map(|i| gen.scenario(i))
        .find(|sc| !sc.crashes.is_empty())
        .expect("the smoke envelope schedules crashes");

    let mut oracles = witness_battery(&scenario);
    let report = explorer.run_scenario_with(&scenario, &mut oracles).unwrap();
    let violation = report.violation.clone().expect("witness fires once a crash lands");
    let original_key = CoverageKey::of(&scenario, &report);
    assert_eq!(original_key.bucket(), "violation:crash_witness");

    let found = explorer.shrink_violation_with(0, &scenario, &violation, witness_battery);
    assert!(
        found.shrunk.scheduled_events() <= found.scenario.scheduled_events(),
        "shrinking never grows the scenario"
    );

    // Re-run the minimised scenario: same oracle, same bucket.
    let mut oracles = witness_battery(&found.shrunk);
    let shrunk_report = explorer.run_scenario_with(&found.shrunk, &mut oracles).unwrap();
    let shrunk_key = CoverageKey::of(&found.shrunk, &shrunk_report);
    assert_eq!(
        shrunk_key.bucket(),
        original_key.bucket(),
        "ddmin moved the violation out of its coverage bucket"
    );
    assert!(!found.shrunk.crashes.is_empty(), "the triggering crash survived the cuts");

    // And the artifact it writes says which oracle it documents, so a
    // replay can detect staleness (`explore --replay` exit code 3).
    assert!(
        found.artifact.contains("meta.oracle: crash_witness"),
        "artifact must record its expected oracle:\n{}",
        found.artifact
    );
}
