//! Corpus phase 3 — the scale tier: `flash_crowd_join_storm`, the
//! ~10⁵-node cold join, runnable on either engine with byte-identical
//! digests.
//!
//! This is the paper's scalability claim exercised as one event storm:
//! 99 498 NEs absorb 1 000 member joins in the first 200 ticks. Release
//! tier only (the `corpus-smoke` CI job and nightly run it); in debug the
//! build alone would dominate the suite.

use rgb_sim::explore::Explorer;
use rgb_sim::presets;

#[test]
#[cfg_attr(debug_assertions, ignore = "release-tier: 1e5-node join storm")]
fn flash_crowd_join_storm_is_clean_at_scale() {
    let sc = presets::flash_crowd_join_storm(1);
    assert_eq!(sc.layout().node_count(), 99_498);
    // The storm is judged on the sharded engine — the scale tier is what
    // `Backend::Par` exists for; trace equivalence (below and in the
    // corpus-replay gate) makes the verdict engine-independent.
    let report = Explorer::default().run_scenario_par(&sc, 4).expect("preset validates");
    assert!(report.violation.is_none(), "oracle fired: {:?}", report.violation);
    let last = report.trace.observations.last().unwrap();
    assert!(last.app_events >= 1_000, "every join of the storm must surface");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-tier: 1e5-node storm ×2 engines")]
fn flash_crowd_join_storm_is_engine_equivalent() {
    let sc = presets::flash_crowd_join_storm(1);
    let stride = sc.duration / 8;
    let mut seq = sc.try_build_sim().expect("preset validates");
    let mut par = sc.try_build_par(4).expect("preset validates");
    let mut t = 0;
    while t < sc.duration {
        t = (t + stride).min(sc.duration);
        seq.run_until(t);
        par.run_until(t);
        assert_eq!(seq.system_digest(false), par.system_digest(false), "diverged at t={t}");
    }
}
