//! Behavioural coverage for the defensive metric counters: they must
//! *move* when their condition occurs (not merely exist), and stay zero
//! otherwise.

use bytes::Bytes;
use rgb_core::prelude::*;
use rgb_sim::{NetConfig, Scenario, Simulation};

#[test]
fn codec_rejected_moves_on_corrupt_and_foreign_frames() {
    let mut sim = Simulation::full(1, 3, &ProtocolConfig::default(), NetConfig::instant(), 1);
    sim.boot_all();
    let nodes = sim.layout.root_ring().nodes.clone();
    assert_eq!(sim.metrics.codec_rejected, 0);

    // A frame that is not a wire envelope at all.
    sim.send_frame(nodes[0], nodes[1], MsgLabel::Token, Bytes::from(vec![0xde, 0xad, 0xbe]));
    while sim.step() {}
    assert_eq!(sim.metrics.codec_rejected, 1, "corrupt frame must be counted");

    // A well-formed envelope stamped with a foreign group id.
    let foreign = rgb_core::wire::encode(&Envelope {
        gid: GroupId(4_242),
        msg: Msg::TokenAck { ring: RingId(0), seq: 1 },
    });
    sim.send_frame(nodes[1], nodes[2], MsgLabel::TokenAck, foreign);
    while sim.step() {}
    assert_eq!(sim.metrics.codec_rejected, 2, "foreign-group frame must be counted");

    // Healthy traffic leaves the counter alone.
    let ok = rgb_core::wire::encode(&Envelope {
        gid: sim.layout.gid,
        msg: Msg::TokenAck { ring: RingId(0), seq: 2 },
    });
    sim.send_frame(nodes[0], nodes[2], MsgLabel::TokenAck, ok);
    while sim.step() {}
    assert_eq!(sim.metrics.codec_rejected, 2);
}

#[test]
fn app_events_dropped_moves_when_the_delivered_cap_overflows() {
    let build = |cap: Option<usize>| {
        let mut sc = Scenario::new("cap", 1, 3).with_duration(2_000);
        if let Some(cap) = cap {
            sc = sc.with_delivered_cap(cap);
        }
        let aps = sc.layout().aps();
        for g in 0..6u64 {
            sc = sc.join(g, aps[(g % 3) as usize], Guid(g), Luid(1));
        }
        let mut sim = sc.build_sim();
        sim.run_until(sc.duration);
        sim
    };

    // Uncapped: everything is retained, nothing is dropped.
    let sim = build(None);
    assert_eq!(sim.metrics.app_events_dropped, 0);
    let retained: u64 = sim.delivered_iter().map(|(_, evs)| evs.len() as u64).sum();
    assert_eq!(retained, sim.metrics.app_events, "uncapped log retains every delivery");

    // Capped at one delivery per node: the cap must overflow and count.
    let sim = build(Some(1));
    assert!(sim.metrics.app_events_dropped > 0, "cap never overflowed");
    for (node, evs) in sim.delivered_iter() {
        assert!(evs.len() <= 1, "cap violated at {node}");
    }
    let retained: u64 = sim.delivered_iter().map(|(_, evs)| evs.len() as u64).sum();
    assert_eq!(
        retained + sim.metrics.app_events_dropped,
        sim.metrics.app_events,
        "every delivery is either retained or counted as dropped"
    );
}

#[test]
fn partition_dropped_and_dup_reorder_counters_move_only_when_configured() {
    // Partition window swallows frames into `partition_dropped`.
    let sc = Scenario::new("partition metrics", 1, 3)
        .with_cfg(ProtocolConfig::live())
        .with_duration(1_500);
    let nodes = sc.layout().root_ring().nodes.clone();
    let aps = sc.layout().aps();
    let sc = sc.partition(0, 1_000, nodes[0], nodes[1]).join(10, aps[2], Guid(1), Luid(1));
    let mut sim = sc.build_sim();
    sim.run_until(sc.duration);
    assert!(sim.metrics.partition_dropped > 0, "partition swallowed nothing");
    assert_eq!(sim.metrics.duplicated, 0);
    assert_eq!(sim.metrics.reordered, 0);

    // Duplication/reordering move their counters when configured.
    let mut net = NetConfig::unit();
    net.dup = 0.2;
    net.reorder = 0.2;
    net.reorder_extra = 10;
    let sc = Scenario::new("dup metrics", 1, 3)
        .with_cfg(ProtocolConfig::live())
        .with_net(net)
        .with_duration(1_500);
    let aps = sc.layout().aps();
    let sc = sc.join(0, aps[0], Guid(1), Luid(1));
    let mut sim = sc.build_sim();
    sim.run_until(sc.duration);
    assert!(sim.metrics.duplicated > 0, "duplication never fired");
    assert!(sim.metrics.reordered > 0, "reordering never fired");
    assert_eq!(sim.metrics.partition_dropped, 0);
}
