//! Trace equivalence of the sharded conservative-parallel engine.
//!
//! The acceptance bar of the `rgb_sim::par` subsystem: across seeds ×
//! shard counts × fault plans, [`ParSimulation`] must produce
//! **byte-identical [`SystemDigest`] sequences** to the sequential
//! [`Simulation`] — same alive-node digests in the same order, same crash
//! sets, same clocks — at every observation checkpoint, not only at the
//! end. The checkpoint stride is deliberately coprime-ish to the latency
//! bands so window boundaries and checkpoint boundaries interleave in
//! every relative phase.
//!
//! The matrix covers the four scheduling regimes:
//! - **instant** — zero latency ⇒ zero lookahead ⇒ the merged fallback
//!   (same-tick cascades, the hardest ordering case);
//! - **lossy tokens** — continuous tokens + loss + dup/reorder ⇒ windowed
//!   execution with heavy per-node RNG traffic;
//! - **churn + crash + partition** — the full fault surface, scheduled
//!   disruptions crossing shard boundaries;
//! - **sparse bursts** — a heterogeneous-floor network (wide-area floor
//!   several times the inter-tier floor) and long quiet stretches between
//!   disruptions, so per-pair lookahead lets shard clocks drift apart and
//!   idle-window skipping jumps the gaps. The digest comparison proves
//!   neither shortcut changes a single observable byte.

use rgb_core::prelude::*;
use rgb_sim::workload::ChurnParams;
use rgb_sim::{Backend, LatencyBand, NetConfig, Scenario, ScenarioOutcome};

/// The fault-plan matrix (mirrors the engine-determinism scenarios, plus
/// a partition so every scheduled-event kind crosses the driver).
fn scenarios(seed: u64) -> Vec<Scenario> {
    let mut lossy = NetConfig::unit();
    lossy.loss = 0.05;
    lossy.wireless_loss = 0.02;
    lossy.dup = 0.05;
    lossy.reorder = 0.05;
    lossy.reorder_extra = 7;
    let mut live = ProtocolConfig::live();
    live.token_interval = 10;
    live.token_retransmit_timeout = 30;
    live.heartbeat_interval = 100;
    live.token_lost_timeout = 400;

    let mut out = Vec::new();

    // Same-tick stress: zero latency puts every cascade on one tick and
    // forces the merged (zero-lookahead) driver.
    let sc = Scenario::new("instant joins", 2, 3).with_net(NetConfig::instant()).with_seed(seed);
    let aps = sc.layout().aps();
    let mut sc = sc;
    for (i, &ap) in aps.iter().enumerate() {
        sc = sc.join((i % 3) as u64, ap, Guid(i as u64), Luid(1));
    }
    out.push(sc.with_duration(5_000));

    // Loss + dup/reorder + continuous tokens: windowed execution under
    // constant retransmission and re-arming.
    let sc = Scenario::new("lossy tokens", 2, 4)
        .with_cfg(live.clone())
        .with_net(lossy.clone())
        .with_seed(seed)
        .with_duration(6_000);
    let ap = sc.layout().aps()[1];
    out.push(sc.join(0, ap, Guid(1), Luid(1)));

    // Churn + crash + partition: every scheduled-disruption kind, loss,
    // and a default (banded) network.
    let sc = Scenario::new("churn crash partition", 2, 3)
        .with_cfg(live)
        .with_seed(seed)
        .with_duration(8_000)
        .with_churn(ChurnParams {
            initial_members: 12,
            mean_join_interval: 300.0,
            mean_lifetime: 2_000.0,
            failure_fraction: 0.3,
            duration: 8_000,
        });
    let victim = sc.layout().aps()[2];
    let roots = sc.layout().root_ring().nodes.clone();
    let sc = sc.crash(4_000, victim).partition(1_000, 2_500, roots[0], roots[1]).query(
        6_000,
        roots[0],
        QueryScope::Global,
    );
    out.push(sc);

    // Sparse bursts over a heterogeneous-floor net: sponsor pairs run on
    // a tight inter-tier floor while everyone else gets five times the
    // window; activity arrives in bursts thousands of ticks apart so most
    // windows are empty (idle-skip territory). Default (on-demand) config
    // keeps the world quiet between bursts apart from heartbeats.
    let banded = NetConfig {
        intra_ring: LatencyBand { min: 5, max: 15 },
        inter_tier: LatencyBand { min: 8, max: 30 },
        wide_area: LatencyBand { min: 40, max: 90 },
        ..NetConfig::default()
    };
    let sc = Scenario::new("sparse bursts", 2, 3).with_net(banded).with_seed(seed);
    let aps = sc.layout().aps();
    let roots = sc.layout().root_ring().nodes.clone();
    let mut sc = sc.with_duration(30_000);
    for (i, &ap) in aps.iter().take(6).enumerate() {
        sc = sc.join(i as u64 * 4_500, ap, Guid(100 + i as u64), Luid(1));
    }
    out.push(sc.crash(12_000, aps[6]).query(24_000, roots[0], QueryScope::Global));

    out
}

/// Digest stream at checkpoints every `stride` ticks, via the given
/// engine. `settled` is fixed to `false` so the digest compares pure
/// engine state, not the caller's quiescence verdict.
fn digest_stream_seq(sc: &Scenario, stride: u64) -> Vec<SystemDigest> {
    let mut sim = sc.build_sim();
    let mut out = Vec::new();
    let mut t = 0;
    while t < sc.duration {
        t = (t + stride).min(sc.duration);
        sim.run_until(t);
        out.push(sim.system_digest(false));
    }
    out
}

fn digest_stream_par(sc: &Scenario, stride: u64, shards: usize) -> Vec<SystemDigest> {
    let mut sim = sc.try_build_par(shards).expect("scenario validates");
    let mut out = Vec::new();
    let mut t = 0;
    while t < sc.duration {
        t = (t + stride).min(sc.duration);
        sim.run_until(t);
        out.push(sim.system_digest(false));
    }
    out
}

#[test]
fn par_digest_streams_match_sequential_across_the_matrix() {
    for seed in [1u64, 7, 23] {
        for sc in scenarios(seed) {
            let seq = digest_stream_seq(&sc, 499);
            for shards in [1usize, 2, 4, 8] {
                let par = digest_stream_par(&sc, 499, shards);
                assert_eq!(
                    seq.len(),
                    par.len(),
                    "seed {seed}, '{}', {shards} shards: checkpoint counts",
                    sc.name
                );
                for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
                    assert_eq!(
                        a, b,
                        "seed {seed}, '{}', {shards} shards: digest diverged at checkpoint {i} \
                         (t={})",
                        sc.name, a.now
                    );
                }
            }
        }
    }
}

#[test]
fn par_outcomes_and_counter_totals_match_sequential() {
    for seed in [3u64, 11] {
        for sc in scenarios(seed) {
            let mut seq = sc.build_sim();
            seq.run_until(sc.duration);
            let seq_outcome = ScenarioOutcome::from_sim(&seq);
            for shards in [2usize, 4] {
                let mut par = sc.try_build_par(shards).expect("scenario validates");
                par.run_until(sc.duration);
                assert_eq!(
                    ScenarioOutcome::from_par(&par),
                    seq_outcome,
                    "seed {seed}, '{}', {shards} shards",
                    sc.name
                );
                // Merged shard metrics equal the sequential totals: the
                // same events happened, just distributed.
                let pm = par.metrics();
                let sm = &seq.metrics;
                assert_eq!(pm.sent_total, sm.sent_total, "'{}' sent_total", sc.name);
                assert_eq!(pm.lost, sm.lost, "'{}' lost", sc.name);
                assert_eq!(pm.duplicated, sm.duplicated, "'{}' duplicated", sc.name);
                assert_eq!(pm.reordered, sm.reordered, "'{}' reordered", sc.name);
                assert_eq!(
                    pm.partition_dropped, sm.partition_dropped,
                    "'{}' partition_dropped",
                    sc.name
                );
                assert_eq!(pm.app_events, sm.app_events, "'{}' app_events", sc.name);
                assert_eq!(pm.codec_rejected, sm.codec_rejected, "'{}' codec_rejected", sc.name);
                assert_eq!(pm.by_label(), sm.by_label(), "'{}' per-label sends", sc.name);
                assert!(
                    par.processed_events() > 0,
                    "'{}' parallel engine processed nothing",
                    sc.name
                );
            }
        }
    }
}

#[test]
fn run_on_backends_produce_identical_outcomes() {
    let sc =
        Scenario::new("knob", 2, 3).with_duration(4_000).with_seed(9).with_churn(ChurnParams {
            initial_members: 8,
            mean_join_interval: 0.0,
            mean_lifetime: 800.0,
            failure_fraction: 0.25,
            duration: 4_000,
        });
    let seq = sc.run_on(Backend::Sim).expect("valid scenario");
    assert_eq!(seq, sc.run_on(Backend::Par(1)).expect("valid scenario"));
    assert_eq!(seq, sc.run_on(Backend::Par(4)).expect("valid scenario"));
}

#[test]
fn windowed_runs_report_par_stats_and_lookahead_slack() {
    let all = scenarios(7);
    let sparse = all.last().expect("sparse bursts scenario");
    let mut par = sparse.try_build_par(4).expect("scenario validates");
    par.run_until(sparse.duration);
    let (lo, hi) = par.lookahead_range();
    assert!(lo >= 8 && hi >= 40, "banded floors surface in the matrix ({lo}, {hi})");
    assert!(lo < hi, "per-pair matrix must offer slack over the global floor");
    let stats = par.par_stats();
    assert!(stats.windows > 0, "windowed run counts windows");
    assert!(stats.idle_skips > 0, "sparse scenario must skip idle windows");
    assert!(stats.batches > 0, "cross-shard traffic flows as batches");
    assert!(stats.frames_batched >= stats.batches, "every batch carries at least one frame");
    assert!(stats.max_batch >= 1);

    // The merged (zero-lookahead) fallback runs no windows at all.
    let instant = &all[0];
    let mut merged = instant.try_build_par(4).expect("scenario validates");
    merged.run_until(instant.duration);
    assert_eq!(merged.par_stats().windows, 0, "merged fallback is windowless");
}

#[test]
fn obs_enabled_digest_streams_stay_byte_identical() {
    use rgb_core::obs::{FlightRecorder, TraceSink};
    for sc in scenarios(7) {
        let mut seq = sc.build_sim();
        seq.enable_obs(Box::new(FlightRecorder::new(1024)));
        let mut par = sc.try_build_par(4).expect("scenario validates");
        par.enable_obs(|_| Box::new(FlightRecorder::new(1024)) as Box<dyn TraceSink>);
        let mut t = 0;
        while t < sc.duration {
            t = (t + 499).min(sc.duration);
            seq.run_until(t);
            par.run_until(t);
            assert_eq!(
                seq.system_digest(false),
                par.system_digest(false),
                "'{}': digest diverged with obs enabled at t={t}",
                sc.name
            );
        }
        // The obs-enabled trajectory is the obs-disabled trajectory: the
        // instrumentation reads protocol state, never writes it.
        let plain = digest_stream_seq(&sc, 499);
        assert_eq!(
            plain.last().unwrap(),
            &seq.system_digest(false),
            "'{}': enabling obs changed the trajectory",
            sc.name
        );
    }
}

#[test]
fn mid_run_digests_are_checkpoint_consistent_under_odd_strides() {
    // Different checkpoint strides must not change the trajectory — the
    // window protocol may not leak observation granularity into state.
    let sc = &scenarios(5)[1];
    let coarse = digest_stream_par(sc, 1_999, 4);
    let fine = digest_stream_par(sc, 499, 4);
    let last_coarse = coarse.last().unwrap();
    let last_fine = fine.last().unwrap();
    assert_eq!(last_coarse, last_fine, "final digest depends on observation stride");
}
