//! Engine-determinism differential tests for the hot-path overhaul.
//!
//! Two guarantees are asserted here, across a multi-seed loop of
//! scenarios that include same-tick event collisions, message loss and
//! Poisson churn:
//!
//! 1. **identical seeds ⇒ identical runs** — re-running a scenario yields
//!    a byte-identical step trace;
//! 2. **the timer-wheel queue preserves the reference ordering** — the
//!    default [`QueueKind::TimerWheel`] engine and the pure
//!    [`QueueKind::BinaryHeap`] reference engine produce byte-identical
//!    `(now, sent_total, proposal_hops)` traces, event for event, even
//!    when many events share one tick.

use rgb_core::prelude::*;
use rgb_sim::workload::ChurnParams;
use rgb_sim::{NetConfig, QueueKind, Scenario};

/// Step a scenario to quiescence-or-deadline, recording the full
/// `(now, sent_total, proposal_hops)` trace after every event.
fn trace(scenario: &Scenario, queue: QueueKind) -> Vec<(u64, u64, u64)> {
    let mut sim = scenario.build_sim_with_queue(queue);
    let mut out = Vec::new();
    while sim.peek_at().is_some_and(|at| at <= scenario.duration) {
        sim.step();
        out.push((sim.now, sim.metrics.sent_total, sim.metrics.proposal_hops()));
    }
    out
}

/// The scenario matrix: same-tick collisions (instant + unit latency),
/// loss, churn, loss + churn, and crashes.
fn scenarios(seed: u64) -> Vec<Scenario> {
    let mut lossy = NetConfig::unit();
    lossy.loss = 0.05;
    lossy.wireless_loss = 0.02;
    let mut live = ProtocolConfig::live();
    live.token_interval = 10;
    live.token_retransmit_timeout = 30;
    live.heartbeat_interval = 100;
    live.token_lost_timeout = 400;

    let mut out = Vec::new();

    // Same-tick stress: zero latency puts every cascade on one tick.
    let sc = Scenario::new("instant joins", 2, 3).with_net(NetConfig::instant()).with_seed(seed);
    let aps = sc.layout().aps();
    let mut sc = sc;
    for (i, &ap) in aps.iter().enumerate() {
        sc = sc.join((i % 3) as u64, ap, Guid(i as u64), Luid(1));
    }
    out.push(sc.with_duration(5_000));

    // Loss + continuous tokens: retransmit/suspicion timers re-arm
    // constantly, exercising the stale-entry path.
    let sc = Scenario::new("lossy tokens", 1, 4)
        .with_cfg(live.clone())
        .with_net(lossy.clone())
        .with_seed(seed)
        .with_duration(6_000);
    let ap = sc.layout().aps()[1];
    out.push(sc.join(0, ap, Guid(1), Luid(1)));

    // Churn + loss + a crash: the full fault surface.
    let sc = Scenario::new("churn under loss", 2, 3)
        .with_cfg(live)
        .with_net(lossy)
        .with_seed(seed)
        .with_duration(8_000)
        .with_churn(ChurnParams {
            initial_members: 12,
            mean_join_interval: 300.0,
            mean_lifetime: 2_000.0,
            failure_fraction: 0.3,
            duration: 8_000,
        });
    let victim = sc.layout().aps()[2];
    out.push(sc.crash(4_000, victim));

    out
}

#[test]
fn identical_seeds_identical_traces_across_scenarios() {
    for seed in [1u64, 7, 23, 0xDEAD_BEEF] {
        for scenario in scenarios(seed) {
            let a = trace(&scenario, QueueKind::TimerWheel);
            let b = trace(&scenario, QueueKind::TimerWheel);
            assert_eq!(a, b, "seed {seed}, scenario '{}' not reproducible", scenario.name);
            assert!(!a.is_empty(), "scenario '{}' processed no events", scenario.name);
        }
    }
}

#[test]
fn timer_wheel_matches_reference_heap_ordering() {
    for seed in [1u64, 7, 23, 0xDEAD_BEEF] {
        for scenario in scenarios(seed) {
            let wheel = trace(&scenario, QueueKind::TimerWheel);
            let heap = trace(&scenario, QueueKind::BinaryHeap);
            assert_eq!(
                wheel, heap,
                "seed {seed}, scenario '{}': wheel and reference heap diverged",
                scenario.name
            );
        }
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity: the trace is actually seed-sensitive (the determinism
    // assertions above would pass vacuously on a constant function).
    let a = trace(&scenarios(1)[2], QueueKind::TimerWheel);
    let b = trace(&scenarios(2)[2], QueueKind::TimerWheel);
    assert_ne!(a, b);
}

#[test]
fn outcomes_agree_between_queue_kinds() {
    // Beyond counters: the final membership views are identical too.
    for seed in [3u64, 11] {
        for scenario in scenarios(seed) {
            let mut wheel = scenario.build_sim_with_queue(QueueKind::TimerWheel);
            wheel.run_until(scenario.duration);
            let mut heap = scenario.build_sim_with_queue(QueueKind::BinaryHeap);
            heap.run_until(scenario.duration);
            let a = rgb_sim::ScenarioOutcome::from_sim(&wheel);
            let b = rgb_sim::ScenarioOutcome::from_sim(&heap);
            assert_eq!(a, b, "seed {seed}, scenario '{}'", scenario.name);
        }
    }
}
