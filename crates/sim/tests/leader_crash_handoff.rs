//! Regression: a bottom-ring **leader** crashes while a mobile-host
//! handoff into its ring is still in flight (the schedule shape a
//! randomized fault explorer is most likely to hit first, since it overlaps
//! §5.2 local repair with an unagreed membership change).
//!
//! The named scenario lives in [`Scenario::leader_crash_during_handoff`];
//! the live-substrate half of the assertion is in
//! `crates/net/tests/repro_replay.rs`, which replays the identical value.

use rgb_core::prelude::*;
use rgb_sim::{operational_guids, Scenario};

#[test]
fn post_repair_ring_agreement_after_leader_crash_mid_handoff() {
    let sc = Scenario::leader_crash_during_handoff(1);
    let layout = sc.layout();
    let aps = layout.aps();
    let bottom_ring = layout.placement(aps[0]).unwrap().ring;

    // Preconditions the scenario name promises: the crashed node leads the
    // bottom ring the handoff lands in, and the crash follows the handoff.
    let leader = layout.ring(bottom_ring).unwrap().nodes.iter().copied().min().unwrap();
    assert_eq!(sc.crashes[0].node, leader, "scenario must crash the ring leader");
    let handoff_at = sc
        .mh_schedule
        .iter()
        .find(|(_, _, e)| matches!(e, MhEvent::HandoffIn { .. }))
        .map(|&(t, _, _)| t)
        .expect("scenario schedules a handoff");
    assert!(
        sc.crashes[0].at > handoff_at && sc.crashes[0].at < handoff_at + 50,
        "crash must land while the handoff is in flight"
    );

    let mut sim = sc.build_sim();
    sim.run_until(sc.duration);

    // The dead leader was excluded from the ring by local repair.
    let alive_bottom: Vec<NodeId> =
        layout.ring(bottom_ring).unwrap().nodes.iter().copied().filter(|&n| n != leader).collect();
    for &n in &alive_bottom {
        let node = sim.node(n);
        assert!(!node.roster.contains(leader), "{n} still rosters the crashed leader");
    }

    // Post-repair agreement: the surviving bottom-ring nodes hold identical
    // views containing both members, with the handoff applied (GUID 1 now
    // registered at the second proxy).
    let expected = sc.expected_guids();
    assert_eq!(expected, [Guid(1), Guid(2)].into_iter().collect());
    let reference = operational_guids(&sim.node(alive_bottom[0]).ring_members);
    assert_eq!(reference, expected, "bottom ring lost a member across the repair");
    for &n in &alive_bottom[1..] {
        assert_eq!(
            operational_guids(&sim.node(n).ring_members),
            reference,
            "bottom-ring views diverge between {} and {n}",
            alive_bottom[0]
        );
    }
    let moved =
        sim.node(alive_bottom[0]).ring_members.get(Guid(1)).expect("GUID 1 survives the crash");
    assert_eq!(moved.ap, aps[1], "handoff to the second proxy was not applied");

    // And the root ring agrees on the global view (TMS store level).
    let root = layout.root_ring().nodes.clone();
    let root_ref = operational_guids(&sim.node(root[0]).ring_members);
    assert_eq!(root_ref, expected, "root view lost a member across the repair");
    for &n in &root[1..] {
        assert_eq!(operational_guids(&sim.node(n).ring_members), root_ref);
    }
}
