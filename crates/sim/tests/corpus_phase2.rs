//! Corpus phase 2 — the endurance tier: `multi_day_soak` end-to-end with
//! its [`MemoryStats`](rgb_sim::MemoryStats) envelope.
//!
//! The soak preset runs 3·10⁵ ticks of slow continuous churn with a
//! bounded delivery log; the point of this tier is that a long-lived
//! simulation's footprint stays proportional to **live state**, not to
//! elapsed time — an unbounded queue, timer arena, or delivery log shows
//! up here as a memory envelope violation long before it OOMs a nightly
//! box. Debug builds skip these (`--ignored`/release runs them): 3·10⁵
//! ticks of churn is a release-tier workload.

use rgb_sim::explore::Explorer;
use rgb_sim::presets;

/// Per-node footprint cap for the soak deployment (bytes). Calibrated at
/// roughly 4× the measured value so real leaks trip it while routine
/// bookkeeping growth does not.
const SOAK_BYTES_PER_NODE_CAP: usize = 256 * 1024;

#[test]
#[cfg_attr(debug_assertions, ignore = "release-tier: 300k-tick soak")]
fn multi_day_soak_stays_clean_and_bounded() {
    let sc = presets::multi_day_soak(1);
    let report = Explorer::default().run_scenario(&sc).expect("preset validates");
    assert!(report.violation.is_none(), "oracle fired: {:?}", report.violation);

    // Re-run the scheduled phase on a raw engine to take the memory
    // envelope at end-of-day (the explorer's engine is not exposed).
    let mut sim = sc.try_build_sim().expect("preset validates");
    sim.run_until(sc.duration);
    let stats = sim.memory_stats();
    assert!(stats.nodes >= sc.layout().node_count(), "stats cover the deployment");
    assert!(
        stats.bytes_per_node() <= SOAK_BYTES_PER_NODE_CAP,
        "soak footprint {} B/node exceeds the {} B/node envelope — something retains \
         history proportional to elapsed time ({:?})",
        stats.bytes_per_node(),
        SOAK_BYTES_PER_NODE_CAP,
        stats,
    );
    // The delivery log is capped at 256 events per node; after 3·10⁵
    // ticks of churn the retained bytes must still be bounded by that cap
    // (≤ a generous 128 B per retained event), not by elapsed time.
    let delivered_cap_bytes = stats.nodes * 256 * 128;
    assert!(
        stats.delivered_bytes <= delivered_cap_bytes,
        "delivered log is {} B (> {} B cap envelope) — the delivered_cap is not holding",
        stats.delivered_bytes,
        delivered_cap_bytes,
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-tier: 300k-tick soak ×2 engines")]
fn multi_day_soak_is_engine_equivalent() {
    let sc = presets::multi_day_soak(1);
    let stride = sc.duration / 16;
    let mut seq = sc.try_build_sim().expect("preset validates");
    let mut par = sc.try_build_par(4).expect("preset validates");
    let mut t = 0;
    while t < sc.duration {
        t = (t + stride).min(sc.duration);
        seq.run_until(t);
        par.run_until(t);
        assert_eq!(seq.system_digest(false), par.system_digest(false), "diverged at t={t}");
    }
    // The sharded engine's merged memory envelope matches the sequential
    // one's within bookkeeping noise: same live state, just distributed.
    let (sm, pm) = (seq.memory_stats(), par.memory_stats());
    assert_eq!(sm.nodes, pm.nodes);
    assert_eq!(sm.delivered_bytes, pm.delivered_bytes, "same retained deliveries");
}
