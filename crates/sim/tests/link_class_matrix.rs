//! Property test for the precomputed [`LinkClassMatrix`]: it must agree
//! with the reference [`NetworkModel::classify`] on **every ordered node
//! pair** — exhaustively for all full `(h ≤ 3, r ≤ 4)` layouts (both the
//! dense-matrix and, forced via large custom layouts, the compressed
//! per-pair fallback), and property-tested over random irregular custom
//! layouts with sparse ids.

use proptest::prelude::*;
use rgb_core::prelude::*;
use rgb_core::topology::HierarchyLayout;
use rgb_sim::{LinkClassMatrix, NetConfig, NetworkModel};

/// Assert matrix ↔ reference agreement on every ordered pair of `layout`,
/// plus the unknown-id edge cases.
fn assert_matrix_agrees(layout: &HierarchyLayout) {
    let indexer = layout.indexer();
    let matrix = LinkClassMatrix::new(layout, &indexer);
    let reference = NetworkModel::new(NetConfig::default());
    let ids: Vec<NodeId> = layout.nodes.keys().copied().collect();
    for &from in &ids {
        let fi = indexer.index_of(from);
        assert!(fi.is_some(), "indexer covers {from}");
        for &to in &ids {
            let expect = reference.classify(layout, from, to);
            let got = matrix.classify(fi, indexer.index_of(to));
            assert_eq!(got, expect, "pair ({from}, {to}) in layout of {} nodes", ids.len());
        }
    }
    // Ids outside the layout classify as wide-area, like the reference.
    let ghost = NodeId(u64::MAX);
    assert_eq!(reference.classify(layout, ids[0], ghost), rgb_sim::LinkClass::WideArea);
    assert_eq!(matrix.classify(indexer.index_of(ids[0]), None), rgb_sim::LinkClass::WideArea);
    assert_eq!(matrix.classify(None, indexer.index_of(ids[0])), rgb_sim::LinkClass::WideArea);
}

#[test]
fn matrix_agrees_exhaustively_on_small_full_layouts() {
    for h in 1..=3usize {
        for r in 1..=4usize {
            let layout = HierarchySpec::new(h, r).build(GroupId(1)).unwrap();
            assert_matrix_agrees(&layout);
        }
    }
}

#[test]
fn compact_fallback_agrees_beyond_the_dense_limit() {
    // (h=3, r=11) has 11 + 121 + 1331 = 1463 > DENSE_LIMIT nodes, so the
    // matrix takes the compressed per-pair path; spot-check agreement on a
    // structured sample of pairs (the exhaustive product would be 2M).
    let layout = HierarchySpec::new(3, 11).build(GroupId(1)).unwrap();
    assert!(layout.node_count() > LinkClassMatrix::DENSE_LIMIT);
    let indexer = layout.indexer();
    let matrix = LinkClassMatrix::new(&layout, &indexer);
    let reference = NetworkModel::new(NetConfig::default());
    let ids: Vec<NodeId> = layout.nodes.keys().copied().collect();
    let sample: Vec<NodeId> = ids.iter().step_by(7).copied().collect();
    for &from in &sample {
        for &to in &sample {
            assert_eq!(
                matrix.classify(indexer.index_of(from), indexer.index_of(to)),
                reference.classify(&layout, from, to),
                "pair ({from}, {to})"
            );
        }
    }
    // Every structurally-distinct relation appears at least once: ring
    // mates, sponsor links both ways, and cross-subtree pairs.
    let ring = layout.rings_at(2).next().unwrap().clone();
    let sponsor = ring.parent_node.unwrap();
    for (a, b) in [
        (ring.nodes[0], ring.nodes[1]),
        (ring.nodes[0], sponsor),
        (sponsor, ring.nodes[0]),
        (ring.nodes[0], *ids.last().unwrap()),
    ] {
        assert_eq!(
            matrix.classify(indexer.index_of(a), indexer.index_of(b)),
            reference.classify(&layout, a, b)
        );
    }
}

/// Random irregular two-level custom layout with sparse, shuffled ids.
fn arb_custom_layout() -> impl Strategy<Value = HierarchyLayout> {
    // Root ring of `root` nodes; each root node sponsors one child ring of
    // 1..=4 nodes. Ids are spread out to force the indexer's sparse paths.
    (2usize..=4, proptest::collection::vec(1usize..=4, 2..5), 1u64..1_000).prop_map(
        |(root, child_sizes, id_stride)| {
            let mut next = 5u64;
            let mut alloc = |n: usize| -> Vec<NodeId> {
                (0..n)
                    .map(|_| {
                        let id = NodeId(next);
                        next += 1 + id_stride;
                        id
                    })
                    .collect()
            };
            let root_ids = alloc(root);
            let children: Vec<Vec<NodeId>> =
                child_sizes.iter().take(root).map(|&n| alloc(n)).collect();
            HierarchyLayout::custom(GroupId(1), vec![vec![root_ids], children])
                .expect("valid custom layout")
        },
    )
}

proptest! {
    #[test]
    fn matrix_agrees_on_random_irregular_layouts(layout in arb_custom_layout()) {
        assert_matrix_agrees(&layout);
    }
}
