//! Engine-level flight-recorder behaviour: bounded memory under a
//! sustained protocol event storm, eviction accounting, and record
//! well-formedness. The core crate proves the ring buffer itself is
//! bounded (`rgb_core::obs` unit tests); this test proves the property
//! survives the full engine wiring — every hook, every record kind, a
//! live-config token mill churning for thousands of ticks.

use rgb_core::obs::{FlightRecorder, ObsKind};
use rgb_core::prelude::*;
use rgb_sim::workload::ChurnParams;
use rgb_sim::Scenario;

/// A deliberately noisy run: continuous tokens on a short interval plus
/// heavy churn, so the trace volume dwarfs any sane recorder capacity.
fn storm() -> Scenario {
    let mut live = ProtocolConfig::live();
    live.token_interval = 10;
    live.token_retransmit_timeout = 30;
    live.heartbeat_interval = 100;
    live.token_lost_timeout = 400;
    Scenario::new("obs storm", 2, 4).with_cfg(live).with_seed(42).with_duration(12_000).with_churn(
        ChurnParams {
            initial_members: 16,
            mean_join_interval: 150.0,
            mean_lifetime: 1_500.0,
            failure_fraction: 0.3,
            duration: 12_000,
        },
    )
}

#[test]
fn recorder_memory_stays_bounded_under_a_trace_storm() {
    const CAP: usize = 512;
    let sc = storm();
    let mut sim = sc.try_build_sim().expect("scenario validates");
    sim.enable_obs(Box::new(FlightRecorder::new(CAP)));
    sim.run_until(sc.duration);

    let trace = sim.trace_snapshot();
    assert!(trace.len() <= CAP, "snapshot exceeded capacity: {} > {CAP}", trace.len());
    assert_eq!(trace.len(), CAP, "a storm this size must fill the recorder");
    assert!(
        sim.trace_dropped() > 0,
        "a storm this size must evict (kept {}, dropped {})",
        trace.len(),
        sim.trace_dropped()
    );

    // The wraparound snapshot comes out in emission order: timestamps are
    // non-decreasing and every record is stamped inside the run.
    for pair in trace.windows(2) {
        assert!(pair[0].at <= pair[1].at, "snapshot out of emission order");
    }
    for r in &trace {
        assert!(r.at <= sc.duration, "record stamped after the run: t={}", r.at);
    }
    // A live-config storm is dominated by the token mill; the tail the
    // recorder keeps must contain grants.
    assert!(
        trace.iter().any(|r| matches!(r.kind, ObsKind::TokenGrant { .. })),
        "no token grants in a continuous-token run"
    );

    // Tracking fills the per-ring-level latency surfaces even while the
    // trace ring evicts: churn joins commit, so join latency is recorded.
    let joins: u64 = sim.metrics.levels.iter().map(|(_, l)| l.join.len()).sum();
    assert!(joins > 0, "churned joins must land in the join-latency histograms");
    assert_eq!(sim.obs_first_seen_overflow(), 0, "first-seen tracking must not saturate here");
}
