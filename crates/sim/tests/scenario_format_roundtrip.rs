//! Property test: the scenario text format round-trips — `Scenario` →
//! artifact → `Scenario` is the identity over the generator's whole
//! output space, so shrunk reproducers committed under `tests/repros/`
//! cannot rot as the format or the generator evolve.

use proptest::prelude::*;
use rgb_sim::explore::artifact::{self, ArtifactMeta};
use rgb_sim::explore::ScenarioGen;

proptest! {
    fn generated_scenarios_round_trip(master in 0u64..1_000_000, index in 0u64..512) {
        // Alternate between envelopes so both are covered.
        let gen = if index % 2 == 0 {
            ScenarioGen::new(master)
        } else {
            ScenarioGen::smoke(master)
        };
        let sc = gen.scenario(index);
        let text = artifact::render(&sc);
        let back = artifact::parse(&text)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&back, &sc);
        // Rendering is canonical: a second trip is byte-identical.
        prop_assert_eq!(artifact::render(&back), text);
    }
}

proptest! {
    fn lineage_metadata_round_trips_losslessly(
        master in 0u64..1_000_000,
        index in 0u64..256,
        generation in 0u32..10_000,
        coverage in proptest::option::of(any::<u64>()),
        with_parent in any::<bool>(),
        with_operator in any::<bool>(),
        with_oracle in any::<bool>(),
    ) {
        let sc = ScenarioGen::smoke(master).scenario(index);
        let meta = ArtifactMeta {
            generation,
            parent: with_parent.then(|| format!("gen-{index:06}+loss@{master:x}")),
            operator: with_operator.then(|| "loss".to_string()),
            coverage,
            oracle: with_oracle.then(|| "epoch_agreement".to_string()),
        };
        let text = artifact::render_with_meta(&sc, &meta);

        // The extended format is lossless through parse_with_meta...
        let (back, back_meta) = artifact::parse_with_meta(&text)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&back, &sc);
        prop_assert_eq!(&back_meta, &meta);

        // ...and invisible to the plain scenario parse: lineage can never
        // change what a replay executes.
        let plain = artifact::parse(&text)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&plain, &sc);

        // A v1 file (no meta lines) still parses, with default metadata —
        // old committed artifacts never rot.
        let v1_text = artifact::render(&sc);
        let (v1, v1_meta) = artifact::parse_with_meta(&v1_text)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&v1, &sc);
        prop_assert_eq!(&v1_meta, &ArtifactMeta::default());
    }
}

#[test]
fn round_trip_property() {
    generated_scenarios_round_trip();
}

#[test]
fn lineage_meta_round_trip_property() {
    lineage_metadata_round_trips_losslessly();
}

#[test]
fn committed_example_artifact_parses_to_the_named_scenario() {
    let path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/repros/leader_crash_during_handoff.scn");
    let text = std::fs::read_to_string(path).expect("committed artifact exists");
    let parsed = artifact::parse(&text).expect("committed artifact parses");
    assert_eq!(parsed, rgb_sim::Scenario::leader_crash_during_handoff(1));
}
