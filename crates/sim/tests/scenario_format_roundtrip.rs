//! Property test: the scenario text format round-trips — `Scenario` →
//! artifact → `Scenario` is the identity over the generator's whole
//! output space, so shrunk reproducers committed under `tests/repros/`
//! cannot rot as the format or the generator evolve.

use proptest::prelude::*;
use rgb_sim::explore::{artifact, ScenarioGen};

proptest! {
    fn generated_scenarios_round_trip(master in 0u64..1_000_000, index in 0u64..512) {
        // Alternate between envelopes so both are covered.
        let gen = if index % 2 == 0 {
            ScenarioGen::new(master)
        } else {
            ScenarioGen::smoke(master)
        };
        let sc = gen.scenario(index);
        let text = artifact::render(&sc);
        let back = artifact::parse(&text)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&back, &sc);
        // Rendering is canonical: a second trip is byte-identical.
        prop_assert_eq!(artifact::render(&back), text);
    }
}

#[test]
fn round_trip_property() {
    generated_scenarios_round_trip();
}

#[test]
fn committed_example_artifact_parses_to_the_named_scenario() {
    let path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/repros/leader_crash_during_handoff.scn");
    let text = std::fs::read_to_string(path).expect("committed artifact exists");
    let parsed = artifact::parse(&text).expect("committed artifact parses");
    assert_eq!(parsed, rgb_sim::Scenario::leader_crash_during_handoff(1));
}
