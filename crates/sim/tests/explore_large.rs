//! Large-envelope smoke: the oracle battery stays green on 10k+-node
//! generated scenarios executed by the sharded parallel engine.
//!
//! The full large envelope (up to ~50k nodes) is exercised by the CI
//! `scale-smoke` job and the `explore --large --shards N` bin in release
//! builds; this in-tree test pins the *seeded* path — generation, shard
//! partitioning, windowed execution and the continuous oracle battery —
//! on the envelope's lighter indices so it stays affordable under the
//! debug profile.

use rgb_core::prelude::HierarchySpec;
use rgb_sim::explore::{Explorer, ScenarioGen};

#[test]
fn oracle_battery_stays_green_on_large_sharded_runs() {
    let gen = ScenarioGen::large(11);
    // A short settle budget keeps debug-profile runtime bounded; the
    // stability detector still gets three windows to open the gate.
    let explorer = Explorer {
        check_every: 400,
        settle_ticks: 2_000,
        stable_windows: 3,
        ..Explorer::default()
    };
    // Indices 3 and 6 sample the envelope's ~11k-node floor with both
    // token policies (3: on-demand, 6: continuous) — asserted below so a
    // generator change cannot silently shrink this test's coverage.
    let mut policies: Vec<String> = Vec::new();
    for index in [3u64, 6] {
        let scenario = gen.scenario(index);
        let nodes = HierarchySpec::new(scenario.height, scenario.ring_size).node_count();
        assert!(nodes >= 10_000, "index {index}: {nodes} nodes is below the large envelope");
        policies.push(format!("{:?}", scenario.cfg.token_policy));
        let report = explorer
            .run_scenario_par(&scenario, 4)
            .unwrap_or_else(|e| panic!("index {index}: {e}"));
        assert!(
            report.violation.is_none(),
            "index {index} ({nodes} nodes): oracle fired: {:?}",
            report.violation
        );
        assert!(
            report.trace.observations.len() >= 2,
            "index {index}: the continuous oracle never observed the run"
        );
    }
    policies.sort();
    policies.dedup();
    assert_eq!(policies.len(), 2, "indices must cover both token policies");
}
