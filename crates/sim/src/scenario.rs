//! Scenario descriptions: one declarative definition of a whole experiment
//! — topology, protocol/network configuration, fault schedule, mobility
//! schedule, workload and duration — that **every substrate can run**.
//!
//! A [`Scenario`] is pure data. One API runs it everywhere:
//! [`Scenario::run_on`] takes a [`Backend`] — the sequential simulator,
//! the sharded-parallel simulator, or a live runtime (the `rgb-net`
//! reactor, plugged in through [`crate::backend::LiveRuntime`]). Every
//! backend produces a [`ScenarioOutcome`], so the worlds can be compared
//! view-for-view — the differential tests do exactly that. The bench
//! binaries build their measurement runs from `Scenario` values too, which
//! keeps "what the experiment is" separate from "how it is executed and
//! measured".

use crate::backend::Backend;
use crate::fault::PlannedCrash;
use crate::mobility::{MobilityModel, TimedEvent};
use crate::network::NetConfig;
use crate::par::{ParSimulation, Parallelism};
use crate::sim::Simulation;
use crate::workload::{churn, ChurnParams};
use rgb_core::prelude::*;
use rgb_core::topology::HierarchyLayout;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A structurally invalid [`Scenario`] definition, reported by
/// [`Scenario::validate`] before anything runs. Every variant names the
/// scenario so batch tooling (the explorer, the bench bins) can say *which*
/// generated definition was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// `duration == 0`: the scenario could never process a scheduled event.
    ZeroDuration {
        /// Offending scenario name.
        scenario: String,
    },
    /// A scheduled event falls beyond the scenario duration. The simulator
    /// would silently leave it unprocessed while a wall-clock substrate
    /// would apply it — rejecting keeps the substrates equivalent.
    BeyondDuration {
        /// Offending scenario name.
        scenario: String,
        /// What kind of event ("crash", "MH event", "query", "partition").
        what: &'static str,
        /// Scheduled time.
        at: u64,
        /// Scenario duration.
        duration: u64,
    },
    /// An event references a node outside the topology.
    UnknownNode {
        /// Offending scenario name.
        scenario: String,
        /// What kind of event referenced it.
        what: &'static str,
        /// The unknown node.
        node: NodeId,
    },
    /// A mobile-host event targets an NE that is not an access proxy.
    NotAnAccessProxy {
        /// Offending scenario name.
        scenario: String,
        /// The non-AP node.
        node: NodeId,
    },
    /// The network configuration failed [`NetConfig::validate`].
    Net {
        /// Offending scenario name.
        scenario: String,
        /// The underlying description.
        reason: String,
    },
    /// A link partition is malformed (self-loop or empty window).
    InvalidPartition {
        /// Offending scenario name.
        scenario: String,
        /// What is wrong with it.
        reason: String,
    },
    /// The execution backend could not deploy or run the scenario (e.g.
    /// the live reactor rejected its `LiveConfig` or failed to spawn its
    /// worker pool).
    Backend {
        /// Offending scenario name.
        scenario: String,
        /// The underlying description.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::ZeroDuration { scenario } => {
                write!(f, "scenario '{scenario}': zero duration")
            }
            ScenarioError::BeyondDuration { scenario, what, at, duration } => {
                write!(f, "scenario '{scenario}': {what} at {at} is beyond duration {duration}")
            }
            ScenarioError::UnknownNode { scenario, what, node } => {
                write!(f, "scenario '{scenario}': {what} references unknown node {node}")
            }
            ScenarioError::NotAnAccessProxy { scenario, node } => {
                write!(f, "scenario '{scenario}': MH event at non-AP node {node}")
            }
            ScenarioError::Net { scenario, reason } => {
                write!(f, "scenario '{scenario}': {reason}")
            }
            ScenarioError::InvalidPartition { scenario, reason } => {
                write!(f, "scenario '{scenario}': invalid partition: {reason}")
            }
            ScenarioError::Backend { scenario, reason } => {
                write!(f, "scenario '{scenario}': backend: {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A membership query scheduled at a point in scenario time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedQuery {
    /// When the application issues the query (ticks).
    pub at: u64,
    /// The NE it is issued at.
    pub node: NodeId,
    /// What is asked.
    pub scope: QueryScope,
}

/// A complete, substrate-independent experiment definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (reports, logs).
    pub name: String,
    /// Hierarchy height (number of ring levels).
    pub height: usize,
    /// Nodes per logical ring.
    pub ring_size: usize,
    /// Protocol configuration every NE runs.
    pub cfg: ProtocolConfig,
    /// Network model (latency bands and loss; the live runtime transports
    /// frames over real channels and ignores the latency bands).
    pub net: NetConfig,
    /// Seed for every derived random stream.
    pub seed: u64,
    /// Scenario length in ticks.
    pub duration: u64,
    /// Planned NE crashes.
    pub crashes: Vec<PlannedCrash>,
    /// Timed link partitions between NE pairs (with heal times). The
    /// simulator drops frames between severed pairs; the live runtime
    /// applies the same windows to its router.
    pub partitions: Vec<LinkPartition>,
    /// Mobile-host events (joins, leaves, handoffs, failures), time-sorted
    /// by [`Scenario::build_sim`] before scheduling.
    pub mh_schedule: Vec<TimedEvent>,
    /// Scheduled membership queries.
    pub queries: Vec<TimedQuery>,
    /// Per-node retention cap for application deliveries (see
    /// [`Simulation::set_delivered_cap`]); `None` keeps every event. Long
    /// reliability runs set this so multi-hour simulations don't hold
    /// every [`AppEvent`] forever.
    pub delivered_cap: Option<usize>,
}

impl Scenario {
    /// A scenario over a full `(height, ring_size)` hierarchy with default
    /// protocol and network configuration and no scheduled events.
    pub fn new(name: impl Into<String>, height: usize, ring_size: usize) -> Self {
        Scenario {
            name: name.into(),
            height,
            ring_size,
            cfg: ProtocolConfig::default(),
            net: NetConfig::default(),
            seed: 1,
            duration: 10_000,
            crashes: Vec::new(),
            partitions: Vec::new(),
            mh_schedule: Vec::new(),
            queries: Vec::new(),
            delivered_cap: None,
        }
    }

    /// Replace the protocol configuration.
    pub fn with_cfg(mut self, cfg: ProtocolConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Replace the network configuration.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Set the seed of every derived random stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the scenario duration (ticks).
    pub fn with_duration(mut self, duration: u64) -> Self {
        self.duration = duration;
        self
    }

    /// Cap the per-node application-delivery log (see
    /// [`Simulation::set_delivered_cap`]). Metric counters are unaffected;
    /// overflow is counted in `metrics.app_events_dropped`.
    pub fn with_delivered_cap(mut self, cap: usize) -> Self {
        self.delivered_cap = Some(cap);
        self
    }

    /// Schedule one mobile-host event at `at` against access proxy `ap`.
    pub fn mh(mut self, at: u64, ap: NodeId, event: MhEvent) -> Self {
        self.mh_schedule.push((at, ap, event));
        self
    }

    /// Schedule a member join (convenience over [`Scenario::mh`]).
    pub fn join(self, at: u64, ap: NodeId, guid: Guid, luid: Luid) -> Self {
        self.mh(at, ap, MhEvent::Join { guid, luid })
    }

    /// Schedule an NE crash.
    pub fn crash(mut self, at: u64, node: NodeId) -> Self {
        self.crashes.push(PlannedCrash { at, node });
        self
    }

    /// Append a pre-computed crash plan (e.g. from
    /// [`crate::fault::bernoulli_crashes`]).
    pub fn with_crashes(mut self, crashes: Vec<PlannedCrash>) -> Self {
        self.crashes.extend(crashes);
        self
    }

    /// Schedule a timed link partition: frames between `a` and `b` (either
    /// direction) are dropped from `at` until `heal_at`.
    pub fn partition(mut self, at: u64, heal_at: u64, a: NodeId, b: NodeId) -> Self {
        self.partitions.push(LinkPartition { at, heal_at, a, b });
        self
    }

    /// Append a pre-computed partition plan.
    pub fn with_partitions(mut self, partitions: Vec<LinkPartition>) -> Self {
        self.partitions.extend(partitions);
        self
    }

    /// Schedule a membership query.
    pub fn query(mut self, at: u64, node: NodeId, scope: QueryScope) -> Self {
        self.queries.push(TimedQuery { at, node, scope });
        self
    }

    /// Append a Poisson churn workload generated over this scenario's
    /// topology, seed and duration (see [`crate::workload::churn`]).
    pub fn with_churn(mut self, params: ChurnParams) -> Self {
        let params = ChurnParams { duration: params.duration.min(self.duration), ..params };
        let events = churn(&self.layout(), params, self.seed);
        self.mh_schedule.extend(events);
        self
    }

    /// Append a mobility workload: `population` MHs roaming the AP cells
    /// with exponential dwell times of mean `mean_dwell` ticks, with GUIDs
    /// `0..population`.
    pub fn with_mobility(self, population: usize, mean_dwell: f64) -> Self {
        self.with_mobility_base(population, mean_dwell, 0)
    }

    /// [`Scenario::with_mobility`] with GUIDs starting at `guid_base` —
    /// use a disjoint base when composing mobility with other workloads
    /// (churn numbers its members from 0), so no GUID ends up with two
    /// independent lifecycles in one schedule.
    pub fn with_mobility_base(
        mut self,
        population: usize,
        mean_dwell: f64,
        guid_base: u64,
    ) -> Self {
        let layout = self.layout();
        let events =
            MobilityModel::with_guid_base(&layout, population, mean_dwell, self.seed, guid_base)
                .generate(self.duration);
        self.mh_schedule.extend(events);
        self
    }

    /// Build the hierarchy this scenario runs on.
    pub fn layout(&self) -> HierarchyLayout {
        HierarchySpec::new(self.height, self.ring_size)
            .build(GroupId(1))
            .expect("valid hierarchy spec")
    }

    /// Validate the definition: the network configuration must pass
    /// [`NetConfig::validate`], every referenced NE must exist in the
    /// topology, the duration must be positive, every scheduled event must
    /// fall within the duration (the simulator would silently leave later
    /// events unprocessed while a wall-clock substrate would apply them —
    /// rejecting them keeps the substrates equivalent), and every link
    /// partition must be a non-empty window over two distinct known nodes.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.validate_with(&self.layout())
    }

    /// [`Scenario::validate`] against an already-built layout (avoids
    /// rebuilding the hierarchy when the caller holds one).
    fn validate_with(&self, layout: &HierarchyLayout) -> Result<(), ScenarioError> {
        let name = || self.name.clone();
        if let Err(reason) = self.net.validate() {
            return Err(ScenarioError::Net { scenario: name(), reason });
        }
        if self.duration == 0 {
            return Err(ScenarioError::ZeroDuration { scenario: name() });
        }
        let beyond = |what: &'static str, at: u64| ScenarioError::BeyondDuration {
            scenario: self.name.clone(),
            what,
            at,
            duration: self.duration,
        };
        for c in &self.crashes {
            if layout.placement(c.node).is_err() {
                return Err(ScenarioError::UnknownNode {
                    scenario: name(),
                    what: "crash",
                    node: c.node,
                });
            }
            if c.at > self.duration {
                return Err(beyond("crash", c.at));
            }
        }
        for p in &self.partitions {
            for node in [p.a, p.b] {
                if layout.placement(node).is_err() {
                    return Err(ScenarioError::UnknownNode {
                        scenario: name(),
                        what: "partition",
                        node,
                    });
                }
            }
            if p.a == p.b {
                return Err(ScenarioError::InvalidPartition {
                    scenario: name(),
                    reason: format!("self-loop at {}", p.a),
                });
            }
            if p.heal_at <= p.at {
                return Err(ScenarioError::InvalidPartition {
                    scenario: name(),
                    reason: format!("empty window [{}, {})", p.at, p.heal_at),
                });
            }
            if p.heal_at > self.duration {
                return Err(beyond("partition", p.heal_at));
            }
        }
        let aps: BTreeSet<NodeId> = layout.aps().into_iter().collect();
        for (at, ap, _) in &self.mh_schedule {
            if !aps.contains(ap) {
                return Err(ScenarioError::NotAnAccessProxy { scenario: name(), node: *ap });
            }
            if *at > self.duration {
                return Err(beyond("MH event", *at));
            }
        }
        for q in &self.queries {
            if layout.placement(q.node).is_err() {
                return Err(ScenarioError::UnknownNode {
                    scenario: name(),
                    what: "query",
                    node: q.node,
                });
            }
            if q.at > self.duration {
                return Err(beyond("query", q.at));
            }
        }
        Ok(())
    }

    /// Total number of scheduled events (crashes, partitions, MH events,
    /// queries) — the size the trace shrinker minimises.
    pub fn scheduled_events(&self) -> usize {
        self.crashes.len() + self.partitions.len() + self.mh_schedule.len() + self.queries.len()
    }

    /// The set of members the schedule leaves in the group at the end
    /// (joins/handoffs/resumes minus leaves/failures/disconnects), for
    /// oracle checks and settle loops.
    pub fn expected_guids(&self) -> BTreeSet<Guid> {
        let mut schedule = self.mh_schedule.clone();
        schedule.sort_by_key(|&(t, ap, _)| (t, ap));
        let mut present = BTreeSet::new();
        for (_, _, event) in &schedule {
            match event {
                MhEvent::Join { guid, .. }
                | MhEvent::HandoffIn { guid, .. }
                | MhEvent::Resume { guid, .. } => {
                    present.insert(*guid);
                }
                MhEvent::Leave { guid }
                | MhEvent::FailureDetected { guid }
                | MhEvent::Disconnect { guid } => {
                    present.remove(guid);
                }
            }
        }
        present
    }

    /// Build a booted simulation with the entire schedule primed.
    ///
    /// Same-tick ties resolve in schedule order: partition transitions,
    /// then crashes, then MH events, then queries (the live runner replays
    /// the timeline in the same order, so both substrates see identical
    /// same-tick semantics).
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] fails; use
    /// [`Scenario::try_build_sim`] to handle the [`ScenarioError`] instead.
    pub fn build_sim(&self) -> Simulation {
        self.try_build_sim().unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Fallible [`Scenario::build_sim`]: validates the definition first and
    /// reports what is wrong as a typed [`ScenarioError`].
    pub fn try_build_sim(&self) -> Result<Simulation, ScenarioError> {
        self.try_build_sim_with_queue(crate::sim::QueueKind::TimerWheel)
    }

    /// [`Scenario::build_sim`] with an explicit event-queue implementation
    /// (the engine-determinism tests replay one scenario on both kinds).
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] fails.
    pub fn build_sim_with_queue(&self, queue: crate::sim::QueueKind) -> Simulation {
        self.try_build_sim_with_queue(queue).unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Fallible [`Scenario::build_sim_with_queue`].
    pub fn try_build_sim_with_queue(
        &self,
        queue: crate::sim::QueueKind,
    ) -> Result<Simulation, ScenarioError> {
        let layout = self.layout();
        self.validate_with(&layout)?;
        let mut sim =
            Simulation::new_with_queue(layout, &self.cfg, self.net.clone(), self.seed, queue);
        self.prime(&mut sim);
        Ok(sim)
    }

    /// Boot `sim` and prime the entire schedule, in the one canonical
    /// order (partition transitions, then crashes, then time-sorted MH
    /// events, then queries). Every engine builds through this single
    /// function — that is what *guarantees* scheduled events carry
    /// identical deterministic keys in the sequential and the parallel
    /// engine (their schedule counters advance through the same calls in
    /// the same order), rather than two builders promising to stay in
    /// sync.
    fn prime<E: ScheduleSink>(&self, sim: &mut E) {
        if let Some(cap) = self.delivered_cap {
            sim.set_delivered_cap(cap);
        }
        sim.boot_all();
        for p in &self.partitions {
            sim.schedule_partition(*p);
        }
        for c in &self.crashes {
            sim.crash_at(c.at, c.node);
        }
        let mut schedule = self.mh_schedule.clone();
        schedule.sort_by_key(|&(t, ap, _)| (t, ap));
        for (at, ap, event) in schedule {
            sim.schedule_mh(at, ap, event);
        }
        for q in &self.queries {
            sim.schedule_query(q.at, q.node, q.scope);
        }
    }

    /// Run the scenario on `backend` for its full duration and collect
    /// the outcome — the one run API every execution backend shares. The
    /// two simulator backends produce identical outcomes (the parallel
    /// engine is trace-equivalent to the sequential one, see
    /// [`crate::par`]); a [`Backend::Live`] run agrees on the *converged
    /// membership* but not on timing, which is the property the
    /// differential tests compare.
    pub fn run_on(&self, backend: Backend<'_>) -> Result<ScenarioOutcome, ScenarioError> {
        self.run_on_digest(backend).map(|(outcome, _)| outcome)
    }

    /// [`Scenario::run_on`] that also collects the final [`SystemDigest`]
    /// of every alive node, so invariant oracles can judge the run with
    /// the same code on every backend. The digest's `settled` flag is
    /// `true` when the run quiesced: for the simulators, when no scheduled
    /// disruption is still queued at the deadline; for a live runtime,
    /// when the cluster converged within its settle budget.
    pub fn run_on_digest(
        &self,
        backend: Backend<'_>,
    ) -> Result<(ScenarioOutcome, SystemDigest), ScenarioError> {
        match backend {
            Backend::Sim => {
                let mut sim = self.try_build_sim()?;
                sim.run_until(self.duration);
                let settled = sim.pending_disruptions() == 0;
                Ok((ScenarioOutcome::from_sim(&sim), sim.system_digest(settled)))
            }
            Backend::Par(shards) => {
                let mut sim = self.try_build_par(shards)?;
                sim.run_until(self.duration);
                let settled = sim.pending_disruptions() == 0;
                Ok((ScenarioOutcome::from_par(&sim), sim.system_digest(settled)))
            }
            Backend::Live(runtime) => runtime.run_live(self),
        }
    }

    /// Run the scenario on the simulator substrate for its full duration
    /// and collect the outcome.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] fails.
    #[deprecated(since = "0.6.0", note = "use `Scenario::run_on(Backend::Sim)`")]
    pub fn run_sim(&self) -> ScenarioOutcome {
        self.run_on(Backend::Sim).unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// [`Scenario::run_sim`] under an explicit execution mode.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] fails.
    #[deprecated(
        since = "0.6.0",
        note = "use `Scenario::run_on(Backend::Sim)` / `run_on(Backend::Par(shards))`"
    )]
    pub fn run_with(&self, parallelism: Parallelism) -> ScenarioOutcome {
        let backend = match parallelism {
            Parallelism::Seq => Backend::Sim,
            Parallelism::Shards(shards) => Backend::Par(shards),
        };
        self.run_on(backend).unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Build a booted [`ParSimulation`] with the entire schedule primed —
    /// the sharded twin of [`Scenario::try_build_sim`], primed through
    /// the same canonical sequence (so scheduled events carry identical
    /// keys in both engines by construction).
    pub fn try_build_par(&self, shards: usize) -> Result<ParSimulation, ScenarioError> {
        let layout = self.layout();
        self.validate_with(&layout)?;
        let mut sim = ParSimulation::new(layout, &self.cfg, self.net.clone(), self.seed, shards);
        self.prime(&mut sim);
        Ok(sim)
    }

    /// Named regression scenario: the leader of a bottom ring crashes while
    /// a mobile-host handoff into that ring is still in flight — the
    /// schedule shape a randomized fault explorer hits first, because it
    /// overlaps the two repair paths (token-retransmission exclusion of the
    /// dead leader, §5.2) with a membership change that must survive the
    /// repair (the handoff record is queued but not yet agreed when the
    /// leader dies).
    ///
    /// Both substrates must converge to the same post-repair views: GUID 1
    /// handed off to the second proxy, GUID 2 untouched, the crashed leader
    /// excluded.
    pub fn leader_crash_during_handoff(seed: u64) -> Scenario {
        let mut cfg = ProtocolConfig::live();
        cfg.token_interval = 5;
        cfg.token_retransmit_timeout = 20;
        cfg.token_retransmit_limit = 2;
        cfg.token_lost_timeout = 150;
        cfg.heartbeat_interval = 20;
        cfg.parent_timeout = 100;
        cfg.child_timeout = 100;
        let sc = Scenario::new("leader crash during in-flight handoff", 2, 3)
            .with_cfg(cfg)
            .with_net(NetConfig::unit())
            .with_seed(seed)
            .with_duration(3_000);
        let aps = sc.layout().aps();
        // aps[0..3] form the first bottom ring; its leader is aps[0] (ring
        // leadership is the minimal roster id). GUID 1 joins at the leader,
        // then hands off to the neighbour proxy; the leader crashes a few
        // ticks after the handoff crosses the wireless hop, while the
        // handoff record is still queued and unagreed.
        sc.join(0, aps[0], Guid(1), Luid(1))
            .join(0, aps[2], Guid(2), Luid(1))
            .mh(
                600,
                aps[1],
                MhEvent::HandoffIn { guid: Guid(1), luid: Luid(2), from: Some(aps[0]) },
            )
            .crash(604, aps[0])
    }
}

/// What [`Scenario::prime`] needs from an engine: the scheduling surface,
/// with identical semantics in every implementation. Keeping the trait
/// crate-private keeps the canonical priming order the *only* way a
/// scenario reaches an engine.
trait ScheduleSink {
    fn set_delivered_cap(&mut self, cap: usize);
    fn boot_all(&mut self);
    fn schedule_partition(&mut self, p: LinkPartition);
    fn crash_at(&mut self, at: u64, node: NodeId);
    fn schedule_mh(&mut self, at: u64, ap: NodeId, event: MhEvent);
    fn schedule_query(&mut self, at: u64, node: NodeId, scope: QueryScope);
}

impl ScheduleSink for Simulation {
    fn set_delivered_cap(&mut self, cap: usize) {
        Simulation::set_delivered_cap(self, cap);
    }
    fn boot_all(&mut self) {
        Simulation::boot_all(self);
    }
    fn schedule_partition(&mut self, p: LinkPartition) {
        Simulation::schedule_partition(self, p);
    }
    fn crash_at(&mut self, at: u64, node: NodeId) {
        Simulation::crash_at(self, at, node);
    }
    fn schedule_mh(&mut self, at: u64, ap: NodeId, event: MhEvent) {
        Simulation::schedule_mh(self, at, ap, event);
    }
    fn schedule_query(&mut self, at: u64, node: NodeId, scope: QueryScope) {
        Simulation::schedule_query(self, at, node, scope);
    }
}

impl ScheduleSink for ParSimulation {
    fn set_delivered_cap(&mut self, cap: usize) {
        ParSimulation::set_delivered_cap(self, cap);
    }
    fn boot_all(&mut self) {
        ParSimulation::boot_all(self);
    }
    fn schedule_partition(&mut self, p: LinkPartition) {
        ParSimulation::schedule_partition(self, p);
    }
    fn crash_at(&mut self, at: u64, node: NodeId) {
        ParSimulation::crash_at(self, at, node);
    }
    fn schedule_mh(&mut self, at: u64, ap: NodeId, event: MhEvent) {
        ParSimulation::schedule_mh(self, at, ap, event);
    }
    fn schedule_query(&mut self, at: u64, node: NodeId, scope: QueryScope) {
        ParSimulation::schedule_query(self, at, node, scope);
    }
}

/// The substrate-independent result of running a scenario: every alive
/// node's final membership view, keyed by node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Operational ring membership (by GUID) at each alive node.
    pub views: BTreeMap<NodeId, BTreeSet<Guid>>,
    /// NEs that were crashed during the run.
    pub crashed: BTreeSet<NodeId>,
}

/// The operational GUIDs of a member list (the view a node would report).
pub fn operational_guids(list: &MemberList) -> BTreeSet<Guid> {
    list.iter().filter(|m| m.status == MemberStatus::Operational).map(|m| m.guid).collect()
}

impl ScenarioOutcome {
    /// Collect the outcome of a finished simulation run.
    pub fn from_sim(sim: &Simulation) -> Self {
        let views = sim
            .nodes_iter()
            .filter(|&(id, _)| !sim.is_crashed(id))
            .map(|(id, state)| (id, operational_guids(&state.ring_members)))
            .collect();
        ScenarioOutcome { views, crashed: sim.crashed_set().clone() }
    }

    /// Collect the outcome of a finished parallel run.
    pub fn from_par(sim: &ParSimulation) -> Self {
        ScenarioOutcome { views: sim.views(), crashed: sim.crashed_set() }
    }

    /// If every listed (alive) node holds the same view, return it.
    /// Nodes missing from the outcome (crashed) are skipped.
    pub fn agreed_view(&self, nodes: &[NodeId]) -> Option<BTreeSet<Guid>> {
        let mut agreed: Option<&BTreeSet<Guid>> = None;
        for node in nodes {
            let Some(view) = self.views.get(node) else { continue };
            match agreed {
                None => agreed = Some(view),
                Some(prev) if prev == view => {}
                Some(_) => return None,
            }
        }
        agreed.cloned()
    }

    /// Human-readable diff of the views held at `nodes` between two
    /// outcomes (e.g. the two substrates), or `None` when they all match.
    pub fn diff(&self, other: &ScenarioOutcome, nodes: &[NodeId]) -> Option<String> {
        let mut report = String::new();
        for node in nodes {
            let a = self.views.get(node);
            let b = other.views.get(node);
            if a != b {
                report.push_str(&format!("node {node}: {a:?} vs {b:?}\n"));
            }
        }
        (!report.is_empty()).then_some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_joins_to_full_agreement() {
        let sc = Scenario::new("three joins", 2, 3).with_duration(5_000);
        let layout = sc.layout();
        let aps = layout.aps();
        let sc = sc.join(0, aps[0], Guid(1), Luid(1)).join(5, aps[4], Guid(2), Luid(1)).join(
            9,
            aps[8],
            Guid(3),
            Luid(1),
        );
        let outcome = sc.run_on(Backend::Sim).expect("valid scenario");
        let expected = sc.expected_guids();
        assert_eq!(expected.len(), 3);
        let root_nodes = layout.root_ring().nodes.clone();
        let agreed = outcome.agreed_view(&root_nodes).expect("root ring agrees");
        assert_eq!(agreed, expected);
    }

    #[test]
    fn same_scenario_same_outcome() {
        let build = || {
            let sc = Scenario::new("churn", 2, 3).with_duration(4_000).with_seed(7);
            sc.with_churn(ChurnParams {
                initial_members: 10,
                mean_join_interval: 0.0,
                mean_lifetime: 500.0,
                failure_fraction: 0.3,
                duration: 4_000,
            })
        };
        let run = |sc: Scenario| sc.run_on(Backend::Sim).expect("valid scenario");
        assert_eq!(run(build()), run(build()));
    }

    #[test]
    fn validation_rejects_bad_definitions() {
        // MH event at a non-AP node (the root is not an access proxy).
        let sc = Scenario::new("bad ap", 2, 3).join(0, NodeId(0), Guid(1), Luid(1));
        assert!(matches!(
            sc.validate().unwrap_err(),
            ScenarioError::NotAnAccessProxy { node: NodeId(0), .. }
        ));
        // Crash of a node outside the topology.
        let sc = Scenario::new("bad crash", 2, 3).crash(0, NodeId(9_999));
        let err = sc.validate().unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownNode { what: "crash", .. }));
        assert!(err.to_string().contains("unknown node"), "display stays grep-able: {err}");
        // Inverted latency band propagates out of NetConfig::validate.
        let net = NetConfig {
            wide_area: crate::network::LatencyBand { min: 10, max: 2 },
            ..NetConfig::default()
        };
        let sc = Scenario::new("bad net", 2, 3).with_net(net);
        let err = sc.validate().unwrap_err();
        assert!(matches!(err, ScenarioError::Net { .. }));
        assert!(err.to_string().contains("wide_area"));
        // Zero duration.
        assert!(matches!(
            Scenario::new("no time", 2, 3).with_duration(0).validate().unwrap_err(),
            ScenarioError::ZeroDuration { .. }
        ));
        // Events beyond the duration would silently stay unprocessed in
        // the simulator but fire on a wall-clock substrate: config error.
        let sc = Scenario::new("late", 1, 3).with_duration(100);
        let ap = sc.layout().aps()[0];
        let sc = sc.join(200, ap, Guid(1), Luid(1));
        assert!(matches!(
            sc.validate().unwrap_err(),
            ScenarioError::BeyondDuration { what: "MH event", at: 200, duration: 100, .. }
        ));
    }

    #[test]
    fn validation_rejects_bad_partitions() {
        let base = || Scenario::new("p", 1, 3).with_duration(1_000);
        let nodes = base().layout().root_ring().nodes.clone();
        // Well-formed partition passes.
        assert!(base().partition(10, 20, nodes[0], nodes[1]).validate().is_ok());
        // Self-loop.
        assert!(matches!(
            base().partition(10, 20, nodes[0], nodes[0]).validate().unwrap_err(),
            ScenarioError::InvalidPartition { .. }
        ));
        // Empty (or inverted) window.
        assert!(matches!(
            base().partition(20, 20, nodes[0], nodes[1]).validate().unwrap_err(),
            ScenarioError::InvalidPartition { .. }
        ));
        // Unknown endpoint.
        assert!(matches!(
            base().partition(10, 20, nodes[0], NodeId(9_999)).validate().unwrap_err(),
            ScenarioError::UnknownNode { what: "partition", .. }
        ));
        // Heal beyond duration.
        assert!(matches!(
            base().partition(10, 2_000, nodes[0], nodes[1]).validate().unwrap_err(),
            ScenarioError::BeyondDuration { what: "partition", .. }
        ));
    }

    #[test]
    fn try_build_sim_surfaces_typed_errors() {
        let sc = Scenario::new("no time", 2, 3).with_duration(0);
        assert_eq!(
            sc.try_build_sim().err(),
            Some(ScenarioError::ZeroDuration { scenario: "no time".into() })
        );
        let sc = Scenario::new("late crash", 1, 3).with_duration(100).crash(500, NodeId(0));
        assert!(matches!(
            sc.try_build_sim().err(),
            Some(ScenarioError::BeyondDuration { what: "crash", at: 500, duration: 100, .. })
        ));
        assert!(Scenario::new("fine", 1, 3).try_build_sim().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn build_sim_panics_on_invalid_definition() {
        let _ = Scenario::new("no time", 2, 3).with_duration(0).build_sim();
    }

    #[test]
    fn scheduled_events_counts_every_dimension() {
        let sc = Scenario::new("count", 1, 3).with_duration(1_000);
        let nodes = sc.layout().root_ring().nodes.clone();
        let aps = sc.layout().aps();
        let sc = sc
            .join(0, aps[0], Guid(1), Luid(1))
            .crash(10, nodes[1])
            .partition(5, 50, nodes[0], nodes[2])
            .query(100, nodes[0], QueryScope::Global);
        assert_eq!(sc.scheduled_events(), 4);
    }

    #[test]
    fn expected_guids_tracks_departures() {
        let sc = Scenario::new("departures", 1, 3);
        let aps = sc.layout().aps();
        let sc = sc.join(0, aps[0], Guid(1), Luid(1)).join(0, aps[1], Guid(2), Luid(1)).mh(
            50,
            aps[0],
            MhEvent::Leave { guid: Guid(1) },
        );
        assert_eq!(sc.expected_guids(), BTreeSet::from([Guid(2)]));
    }

    #[test]
    fn crashes_limit_the_outcome_views() {
        let sc = Scenario::new("crash", 1, 4).with_duration(2_000);
        let aps = sc.layout().aps();
        let sc = sc.join(0, aps[0], Guid(1), Luid(1)).crash(1_000, aps[3]);
        let outcome = sc.run_on(Backend::Sim).expect("valid scenario");
        assert!(outcome.crashed.contains(&aps[3]));
        assert!(!outcome.views.contains_key(&aps[3]), "crashed node reports no view");
        assert_eq!(outcome.views.len(), 3);
    }

    #[test]
    fn run_on_unifies_backends_and_surfaces_errors() {
        let sc = Scenario::new("unified", 2, 3).with_duration(2_000);
        let aps = sc.layout().aps();
        let sc = sc.join(0, aps[0], Guid(1), Luid(1)).join(5, aps[4], Guid(2), Luid(1));
        let (seq, seq_digest) = sc.run_on_digest(Backend::Sim).expect("valid scenario");
        let (par, par_digest) = sc.run_on_digest(Backend::Par(3)).expect("valid scenario");
        assert_eq!(seq, par, "Sim and Par backends are trace-equivalent");
        assert_eq!(seq_digest, par_digest);
        assert!(seq_digest.settled, "no disruption left queued at the deadline");
        let err = Scenario::new("no time", 2, 3)
            .with_duration(0)
            .run_on(Backend::Sim)
            .expect_err("zero duration is rejected");
        assert!(matches!(err, ScenarioError::ZeroDuration { .. }));
        let backend_err =
            ScenarioError::Backend { scenario: "x".into(), reason: "no workers".into() };
        assert!(backend_err.to_string().contains("backend: no workers"));
    }

    #[test]
    fn workload_generators_feed_the_schedule() {
        let sc = Scenario::new("mobility", 2, 4).with_duration(2_000).with_mobility(10, 50.0);
        assert!(
            sc.mh_schedule.iter().any(|(_, _, e)| matches!(e, MhEvent::HandoffIn { .. })),
            "mobility produced no handoffs"
        );
        assert!(sc.validate().is_ok());
    }
}
