//! Scenario descriptions: one declarative definition of a whole experiment
//! — topology, protocol/network configuration, fault schedule, mobility
//! schedule, workload and duration — that **every substrate can run**.
//!
//! A [`Scenario`] is pure data. The simulator runs it through
//! [`Scenario::build_sim`]/[`Scenario::run_sim`]; the live threaded runtime
//! (`rgb-net`) replays the same value against real concurrency with its
//! `run_scenario` function. Both produce a [`ScenarioOutcome`], so the two
//! worlds can be compared view-for-view — the differential tests do exactly
//! that. The bench binaries build their measurement runs from `Scenario`
//! values too, which keeps "what the experiment is" separate from "how it
//! is executed and measured".

use crate::fault::PlannedCrash;
use crate::mobility::{MobilityModel, TimedEvent};
use crate::network::NetConfig;
use crate::sim::Simulation;
use crate::workload::{churn, ChurnParams};
use rgb_core::prelude::*;
use rgb_core::topology::HierarchyLayout;
use std::collections::{BTreeMap, BTreeSet};

/// A membership query scheduled at a point in scenario time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedQuery {
    /// When the application issues the query (ticks).
    pub at: u64,
    /// The NE it is issued at.
    pub node: NodeId,
    /// What is asked.
    pub scope: QueryScope,
}

/// A complete, substrate-independent experiment definition.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario name (reports, logs).
    pub name: String,
    /// Hierarchy height (number of ring levels).
    pub height: usize,
    /// Nodes per logical ring.
    pub ring_size: usize,
    /// Protocol configuration every NE runs.
    pub cfg: ProtocolConfig,
    /// Network model (latency bands and loss; the live runtime transports
    /// frames over real channels and ignores the latency bands).
    pub net: NetConfig,
    /// Seed for every derived random stream.
    pub seed: u64,
    /// Scenario length in ticks.
    pub duration: u64,
    /// Planned NE crashes.
    pub crashes: Vec<PlannedCrash>,
    /// Mobile-host events (joins, leaves, handoffs, failures), time-sorted
    /// by [`Scenario::build_sim`] before scheduling.
    pub mh_schedule: Vec<TimedEvent>,
    /// Scheduled membership queries.
    pub queries: Vec<TimedQuery>,
    /// Per-node retention cap for application deliveries (see
    /// [`Simulation::set_delivered_cap`]); `None` keeps every event. Long
    /// reliability runs set this so multi-hour simulations don't hold
    /// every [`AppEvent`] forever.
    pub delivered_cap: Option<usize>,
}

impl Scenario {
    /// A scenario over a full `(height, ring_size)` hierarchy with default
    /// protocol and network configuration and no scheduled events.
    pub fn new(name: impl Into<String>, height: usize, ring_size: usize) -> Self {
        Scenario {
            name: name.into(),
            height,
            ring_size,
            cfg: ProtocolConfig::default(),
            net: NetConfig::default(),
            seed: 1,
            duration: 10_000,
            crashes: Vec::new(),
            mh_schedule: Vec::new(),
            queries: Vec::new(),
            delivered_cap: None,
        }
    }

    /// Replace the protocol configuration.
    pub fn with_cfg(mut self, cfg: ProtocolConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Replace the network configuration.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Set the seed of every derived random stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the scenario duration (ticks).
    pub fn with_duration(mut self, duration: u64) -> Self {
        self.duration = duration;
        self
    }

    /// Cap the per-node application-delivery log (see
    /// [`Simulation::set_delivered_cap`]). Metric counters are unaffected;
    /// overflow is counted in `metrics.app_events_dropped`.
    pub fn with_delivered_cap(mut self, cap: usize) -> Self {
        self.delivered_cap = Some(cap);
        self
    }

    /// Schedule one mobile-host event at `at` against access proxy `ap`.
    pub fn mh(mut self, at: u64, ap: NodeId, event: MhEvent) -> Self {
        self.mh_schedule.push((at, ap, event));
        self
    }

    /// Schedule a member join (convenience over [`Scenario::mh`]).
    pub fn join(self, at: u64, ap: NodeId, guid: Guid, luid: Luid) -> Self {
        self.mh(at, ap, MhEvent::Join { guid, luid })
    }

    /// Schedule an NE crash.
    pub fn crash(mut self, at: u64, node: NodeId) -> Self {
        self.crashes.push(PlannedCrash { at, node });
        self
    }

    /// Append a pre-computed crash plan (e.g. from
    /// [`crate::fault::bernoulli_crashes`]).
    pub fn with_crashes(mut self, crashes: Vec<PlannedCrash>) -> Self {
        self.crashes.extend(crashes);
        self
    }

    /// Schedule a membership query.
    pub fn query(mut self, at: u64, node: NodeId, scope: QueryScope) -> Self {
        self.queries.push(TimedQuery { at, node, scope });
        self
    }

    /// Append a Poisson churn workload generated over this scenario's
    /// topology, seed and duration (see [`crate::workload::churn`]).
    pub fn with_churn(mut self, params: ChurnParams) -> Self {
        let params = ChurnParams { duration: params.duration.min(self.duration), ..params };
        let events = churn(&self.layout(), params, self.seed);
        self.mh_schedule.extend(events);
        self
    }

    /// Append a mobility workload: `population` MHs roaming the AP cells
    /// with exponential dwell times of mean `mean_dwell` ticks.
    pub fn with_mobility(mut self, population: usize, mean_dwell: f64) -> Self {
        let layout = self.layout();
        let events =
            MobilityModel::new(&layout, population, mean_dwell, self.seed).generate(self.duration);
        self.mh_schedule.extend(events);
        self
    }

    /// Build the hierarchy this scenario runs on.
    pub fn layout(&self) -> HierarchyLayout {
        HierarchySpec::new(self.height, self.ring_size)
            .build(GroupId(1))
            .expect("valid hierarchy spec")
    }

    /// Validate the definition: the network configuration must pass
    /// [`NetConfig::validate`], every referenced NE must exist in the
    /// topology, the duration must be positive, and every scheduled event
    /// must fall within the duration (the simulator would silently leave
    /// later events unprocessed while a wall-clock substrate would apply
    /// them — rejecting them keeps the substrates equivalent).
    pub fn validate(&self) -> Result<(), String> {
        self.validate_with(&self.layout())
    }

    /// [`Scenario::validate`] against an already-built layout (avoids
    /// rebuilding the hierarchy when the caller holds one).
    fn validate_with(&self, layout: &HierarchyLayout) -> Result<(), String> {
        self.net.validate()?;
        if self.duration == 0 {
            return Err(format!("scenario '{}': zero duration", self.name));
        }
        for c in &self.crashes {
            if layout.placement(c.node).is_err() {
                return Err(format!("scenario '{}': crash of unknown node {}", self.name, c.node));
            }
            if c.at > self.duration {
                return Err(format!(
                    "scenario '{}': crash of {} at {} is beyond duration {}",
                    self.name, c.node, c.at, self.duration
                ));
            }
        }
        let aps: BTreeSet<NodeId> = layout.aps().into_iter().collect();
        for (at, ap, _) in &self.mh_schedule {
            if !aps.contains(ap) {
                return Err(format!("scenario '{}': MH event at non-AP node {ap}", self.name));
            }
            if *at > self.duration {
                return Err(format!(
                    "scenario '{}': MH event at {at} is beyond duration {}",
                    self.name, self.duration
                ));
            }
        }
        for q in &self.queries {
            if layout.placement(q.node).is_err() {
                return Err(format!("scenario '{}': query at unknown node {}", self.name, q.node));
            }
            if q.at > self.duration {
                return Err(format!(
                    "scenario '{}': query at {} is beyond duration {}",
                    self.name, q.at, self.duration
                ));
            }
        }
        Ok(())
    }

    /// The set of members the schedule leaves in the group at the end
    /// (joins/handoffs/resumes minus leaves/failures/disconnects), for
    /// oracle checks and settle loops.
    pub fn expected_guids(&self) -> BTreeSet<Guid> {
        let mut schedule = self.mh_schedule.clone();
        schedule.sort_by_key(|&(t, ap, _)| (t, ap));
        let mut present = BTreeSet::new();
        for (_, _, event) in &schedule {
            match event {
                MhEvent::Join { guid, .. }
                | MhEvent::HandoffIn { guid, .. }
                | MhEvent::Resume { guid, .. } => {
                    present.insert(*guid);
                }
                MhEvent::Leave { guid }
                | MhEvent::FailureDetected { guid }
                | MhEvent::Disconnect { guid } => {
                    present.remove(guid);
                }
            }
        }
        present
    }

    /// Build a booted simulation with the entire schedule primed.
    ///
    /// Same-tick ties resolve in schedule order: crashes, then MH events,
    /// then queries (the live runner replays the timeline in the same
    /// order, so both substrates see identical same-tick semantics).
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] fails.
    pub fn build_sim(&self) -> Simulation {
        self.build_sim_with_queue(crate::sim::QueueKind::TimerWheel)
    }

    /// [`Scenario::build_sim`] with an explicit event-queue implementation
    /// (the engine-determinism tests replay one scenario on both kinds).
    pub fn build_sim_with_queue(&self, queue: crate::sim::QueueKind) -> Simulation {
        let layout = self.layout();
        self.validate_with(&layout).expect("invalid scenario");
        let mut sim =
            Simulation::new_with_queue(layout, &self.cfg, self.net.clone(), self.seed, queue);
        if let Some(cap) = self.delivered_cap {
            sim.set_delivered_cap(cap);
        }
        sim.boot_all();
        for c in &self.crashes {
            sim.crash_at(c.at, c.node);
        }
        let mut schedule = self.mh_schedule.clone();
        schedule.sort_by_key(|&(t, ap, _)| (t, ap));
        for (at, ap, event) in schedule {
            sim.schedule_mh(at, ap, event);
        }
        for q in &self.queries {
            sim.schedule_query(q.at, q.node, q.scope);
        }
        sim
    }

    /// Run the scenario on the simulator substrate for its full duration
    /// and collect the outcome.
    pub fn run_sim(&self) -> ScenarioOutcome {
        let mut sim = self.build_sim();
        sim.run_until(self.duration);
        ScenarioOutcome::from_sim(&sim)
    }
}

/// The substrate-independent result of running a scenario: every alive
/// node's final membership view, keyed by node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Operational ring membership (by GUID) at each alive node.
    pub views: BTreeMap<NodeId, BTreeSet<Guid>>,
    /// NEs that were crashed during the run.
    pub crashed: BTreeSet<NodeId>,
}

/// The operational GUIDs of a member list (the view a node would report).
pub fn operational_guids(list: &MemberList) -> BTreeSet<Guid> {
    list.iter().filter(|m| m.status == MemberStatus::Operational).map(|m| m.guid).collect()
}

impl ScenarioOutcome {
    /// Collect the outcome of a finished simulation run.
    pub fn from_sim(sim: &Simulation) -> Self {
        let views = sim
            .nodes_iter()
            .filter(|&(id, _)| !sim.is_crashed(id))
            .map(|(id, state)| (id, operational_guids(&state.ring_members)))
            .collect();
        ScenarioOutcome { views, crashed: sim.crashed_set().clone() }
    }

    /// If every listed (alive) node holds the same view, return it.
    /// Nodes missing from the outcome (crashed) are skipped.
    pub fn agreed_view(&self, nodes: &[NodeId]) -> Option<BTreeSet<Guid>> {
        let mut agreed: Option<&BTreeSet<Guid>> = None;
        for node in nodes {
            let Some(view) = self.views.get(node) else { continue };
            match agreed {
                None => agreed = Some(view),
                Some(prev) if prev == view => {}
                Some(_) => return None,
            }
        }
        agreed.cloned()
    }

    /// Human-readable diff of the views held at `nodes` between two
    /// outcomes (e.g. the two substrates), or `None` when they all match.
    pub fn diff(&self, other: &ScenarioOutcome, nodes: &[NodeId]) -> Option<String> {
        let mut report = String::new();
        for node in nodes {
            let a = self.views.get(node);
            let b = other.views.get(node);
            if a != b {
                report.push_str(&format!("node {node}: {a:?} vs {b:?}\n"));
            }
        }
        (!report.is_empty()).then_some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_joins_to_full_agreement() {
        let sc = Scenario::new("three joins", 2, 3).with_duration(5_000);
        let layout = sc.layout();
        let aps = layout.aps();
        let sc = sc.join(0, aps[0], Guid(1), Luid(1)).join(5, aps[4], Guid(2), Luid(1)).join(
            9,
            aps[8],
            Guid(3),
            Luid(1),
        );
        let outcome = sc.run_sim();
        let expected = sc.expected_guids();
        assert_eq!(expected.len(), 3);
        let root_nodes = layout.root_ring().nodes.clone();
        let agreed = outcome.agreed_view(&root_nodes).expect("root ring agrees");
        assert_eq!(agreed, expected);
    }

    #[test]
    fn same_scenario_same_outcome() {
        let build = || {
            let sc = Scenario::new("churn", 2, 3).with_duration(4_000).with_seed(7);
            sc.with_churn(ChurnParams {
                initial_members: 10,
                mean_join_interval: 0.0,
                mean_lifetime: 500.0,
                failure_fraction: 0.3,
                duration: 4_000,
            })
        };
        assert_eq!(build().run_sim(), build().run_sim());
    }

    #[test]
    fn validation_rejects_bad_definitions() {
        // MH event at a non-AP node (the root is not an access proxy).
        let sc = Scenario::new("bad ap", 2, 3).join(0, NodeId(0), Guid(1), Luid(1));
        assert!(sc.validate().unwrap_err().contains("non-AP"));
        // Crash of a node outside the topology.
        let sc = Scenario::new("bad crash", 2, 3).crash(0, NodeId(9_999));
        assert!(sc.validate().unwrap_err().contains("unknown node"));
        // Inverted latency band propagates out of NetConfig::validate.
        let net = NetConfig {
            wide_area: crate::network::LatencyBand { min: 10, max: 2 },
            ..NetConfig::default()
        };
        let sc = Scenario::new("bad net", 2, 3).with_net(net);
        assert!(sc.validate().unwrap_err().contains("wide_area"));
        // Zero duration.
        assert!(Scenario::new("no time", 2, 3).with_duration(0).validate().is_err());
        // Events beyond the duration would silently stay unprocessed in
        // the simulator but fire on a wall-clock substrate: config error.
        let sc = Scenario::new("late", 1, 3).with_duration(100);
        let ap = sc.layout().aps()[0];
        let sc = sc.join(200, ap, Guid(1), Luid(1));
        assert!(sc.validate().unwrap_err().contains("beyond duration"));
    }

    #[test]
    fn expected_guids_tracks_departures() {
        let sc = Scenario::new("departures", 1, 3);
        let aps = sc.layout().aps();
        let sc = sc.join(0, aps[0], Guid(1), Luid(1)).join(0, aps[1], Guid(2), Luid(1)).mh(
            50,
            aps[0],
            MhEvent::Leave { guid: Guid(1) },
        );
        assert_eq!(sc.expected_guids(), BTreeSet::from([Guid(2)]));
    }

    #[test]
    fn crashes_limit_the_outcome_views() {
        let sc = Scenario::new("crash", 1, 4).with_duration(2_000);
        let aps = sc.layout().aps();
        let sc = sc.join(0, aps[0], Guid(1), Luid(1)).crash(1_000, aps[3]);
        let outcome = sc.run_sim();
        assert!(outcome.crashed.contains(&aps[3]));
        assert!(!outcome.views.contains_key(&aps[3]), "crashed node reports no view");
        assert_eq!(outcome.views.len(), 3);
    }

    #[test]
    fn workload_generators_feed_the_schedule() {
        let sc = Scenario::new("mobility", 2, 4).with_duration(2_000).with_mobility(10, 50.0);
        assert!(
            sc.mh_schedule.iter().any(|(_, _, e)| matches!(e, MhEvent::HandoffIn { .. })),
            "mobility produced no handoffs"
        );
        assert!(sc.validate().is_ok());
    }
}
