//! Mobile-host population and mobility model.
//!
//! The paper motivates RGB with frequent handoffs between small wireless
//! cells (§1). We model the access proxies of the bottommost tier as a
//! line/ring of geographic cells: each AP's neighbours are its ring
//! neighbours, and the last AP of one bottom ring abuts the first AP of
//! the next — so mobile hosts roam both within and across logical rings.
//! Dwell times are exponential; every move produces a `HandoffIn` at the
//! destination proxy.

use crate::rng::SplitMix64;
use rgb_core::prelude::*;
use rgb_core::topology::HierarchyLayout;
use std::collections::BTreeMap;

/// One simulated mobile host.
#[derive(Debug, Clone)]
pub struct MobileHost {
    /// Globally unique id.
    pub guid: Guid,
    /// Proxy currently attached to.
    pub ap: NodeId,
    /// Next care-of id to assign.
    luid_seq: u64,
}

impl MobileHost {
    fn next_luid(&mut self) -> Luid {
        self.luid_seq += 1;
        Luid(self.guid.0 * 1_000_000 + self.luid_seq)
    }
}

/// A timed mobile-host event bound for an access proxy.
pub type TimedEvent = (u64, NodeId, MhEvent);

/// The mobility model: a population of MHs roaming the AP cells.
#[derive(Debug, Clone)]
pub struct MobilityModel {
    /// The population.
    pub mhs: Vec<MobileHost>,
    adjacency: BTreeMap<NodeId, Vec<NodeId>>,
    rng: SplitMix64,
    /// Mean dwell time between handoffs (ticks).
    pub mean_dwell: f64,
}

impl MobilityModel {
    /// Create `population` MHs spread uniformly over the APs of `layout`,
    /// with GUIDs `0..population`.
    pub fn new(layout: &HierarchyLayout, population: usize, mean_dwell: f64, seed: u64) -> Self {
        Self::with_guid_base(layout, population, mean_dwell, seed, 0)
    }

    /// [`MobilityModel::new`] with GUIDs `guid_base..guid_base +
    /// population` — callers composing several workload generators into
    /// one scenario give each a disjoint GUID range so the schedules stay
    /// coherent (one member, one identity).
    pub fn with_guid_base(
        layout: &HierarchyLayout,
        population: usize,
        mean_dwell: f64,
        seed: u64,
        guid_base: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let aps = layout.aps();
        let adjacency = Self::build_adjacency(layout);
        let mhs = (0..population)
            .map(|i| MobileHost {
                guid: Guid(guid_base + i as u64),
                ap: *rng.pick(&aps),
                luid_seq: 0,
            })
            .collect();
        MobilityModel { mhs, adjacency, rng, mean_dwell }
    }

    /// Geographic neighbourhood of each AP: ring neighbours plus the seam
    /// to the adjacent bottom ring.
    fn build_adjacency(layout: &HierarchyLayout) -> BTreeMap<NodeId, Vec<NodeId>> {
        let bottom = layout.height() - 1;
        let rings: Vec<_> = layout.rings_at(bottom).collect();
        let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for ring in &rings {
            let n = ring.nodes.len();
            for (i, &node) in ring.nodes.iter().enumerate() {
                let mut neigh = Vec::new();
                if n > 1 {
                    neigh.push(ring.nodes[(i + 1) % n]);
                    neigh.push(ring.nodes[(i + n - 1) % n]);
                }
                adj.insert(node, neigh);
            }
        }
        // seams between consecutive rings
        for w in rings.windows(2) {
            let last = *w[0].nodes.last().expect("non-empty ring");
            let first = w[1].nodes[0];
            adj.entry(last).or_default().push(first);
            adj.entry(first).or_default().push(last);
        }
        adj
    }

    /// Generate the full event schedule for `duration` ticks: initial joins
    /// at time ~0, then exponential-dwell handoffs. Events are returned
    /// sorted by time.
    pub fn generate(&mut self, duration: u64) -> Vec<TimedEvent> {
        let mut events: Vec<TimedEvent> = Vec::new();
        let count = self.mhs.len();
        for idx in 0..count {
            let join_at = self.rng.range(0, 10);
            let (guid, ap, luid) = {
                let mh = &mut self.mhs[idx];
                (mh.guid, mh.ap, mh.next_luid())
            };
            events.push((join_at, ap, MhEvent::Join { guid, luid }));
            let mut t = join_at as f64;
            loop {
                t += self.rng.exponential(self.mean_dwell).max(1.0);
                if t >= duration as f64 {
                    break;
                }
                let from = self.mhs[idx].ap;
                let options = self.adjacency.get(&from).cloned().unwrap_or_default();
                if options.is_empty() {
                    break;
                }
                let to = *self.rng.pick(&options);
                let luid = self.mhs[idx].next_luid();
                self.mhs[idx].ap = to;
                events.push((
                    t as u64,
                    to,
                    MhEvent::HandoffIn { guid: self.mhs[idx].guid, luid, from: Some(from) },
                ));
            }
        }
        events.sort_by_key(|&(t, ap, _)| (t, ap));
        events
    }

    /// Count of handoff events in a schedule.
    pub fn handoff_count(events: &[TimedEvent]) -> usize {
        events.iter().filter(|(_, _, e)| matches!(e, MhEvent::HandoffIn { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> HierarchyLayout {
        HierarchySpec::new(2, 4).build(GroupId(1)).unwrap()
    }

    #[test]
    fn population_joins_once_each() {
        let l = layout();
        let mut m = MobilityModel::new(&l, 20, 100.0, 1);
        let events = m.generate(1_000);
        let joins = events.iter().filter(|(_, _, e)| matches!(e, MhEvent::Join { .. })).count();
        assert_eq!(joins, 20);
    }

    #[test]
    fn handoffs_move_between_adjacent_aps() {
        let l = layout();
        let mut m = MobilityModel::new(&l, 10, 50.0, 2);
        let adj = MobilityModel::build_adjacency(&l);
        let events = m.generate(2_000);
        for (_, to, e) in &events {
            if let MhEvent::HandoffIn { from: Some(from), .. } = e {
                assert!(adj[from].contains(to), "handoff {from}->{to} not between adjacent cells");
            }
        }
        assert!(MobilityModel::handoff_count(&events) > 10);
    }

    #[test]
    fn events_are_time_sorted_and_bounded() {
        let l = layout();
        let mut m = MobilityModel::new(&l, 15, 80.0, 3);
        let duration = 3_000;
        let events = m.generate(duration);
        for w in events.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(events.iter().all(|&(t, _, _)| t < duration));
    }

    #[test]
    fn shorter_dwell_means_more_handoffs() {
        let l = layout();
        let fast = MobilityModel::new(&l, 20, 20.0, 4).generate(2_000);
        let slow = MobilityModel::new(&l, 20, 200.0, 4).generate(2_000);
        assert!(
            MobilityModel::handoff_count(&fast) > 2 * MobilityModel::handoff_count(&slow),
            "dwell time had no effect"
        );
    }

    #[test]
    fn adjacency_covers_every_ap_and_is_symmetric() {
        let l = layout();
        let adj = MobilityModel::build_adjacency(&l);
        assert_eq!(adj.len(), l.aps().len());
        for (ap, neighbors) in &adj {
            for n in neighbors {
                assert!(adj[n].contains(ap), "asymmetric adjacency {ap} vs {n}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let l = layout();
        let a = MobilityModel::new(&l, 10, 50.0, 9).generate(1_000);
        let b = MobilityModel::new(&l, 10, 50.0, 9).generate(1_000);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    fn guid_base_offsets_the_population() {
        let l = layout();
        let events = MobilityModel::with_guid_base(&l, 5, 50.0, 9, 700).generate(1_000);
        for (_, _, e) in &events {
            let (MhEvent::Join { guid, .. } | MhEvent::HandoffIn { guid, .. }) = e else {
                panic!("mobility only joins and hands off");
            };
            assert!((700..705).contains(&guid.0), "guid {guid} outside base range");
        }
    }
}
