//! # rgb-sim — discrete-event mobile-Internet simulator for RGB
//!
//! This crate is the experimental substrate the paper never had: a seeded,
//! fully deterministic discrete-event simulator that drives the sans-IO
//! protocol engines of `rgb-core` over a modelled mobile Internet —
//! per-link-class latency and loss ([`network`]), node-fault injection
//! following the §5.2 model ([`fault`]), mobile-host mobility with
//! cell-to-cell handoffs ([`mobility`]), Poisson churn ([`workload`]) — and
//! measures everything ([`metrics`]), with global invariant checks
//! ([`oracle`]).
//!
//! The simulator is one implementation of `rgb_core`'s substrate layer
//! (`rgb_core::substrate::Substrate`): every delivery is wire-encoded by
//! the shared `apply_outputs` driver and decoded on arrival, so the binary
//! codec is exercised end-to-end in the simulated world too. Whole
//! experiments are described declaratively as [`scenario::Scenario`]
//! values and run through one API —
//! [`Scenario::run_on`](scenario::Scenario::run_on) with a [`Backend`] —
//! on the sequential simulator, the sharded-parallel simulator, or the
//! live reactor runtime (`rgb-net`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod engine;
pub mod explore;
pub mod fault;
pub mod metrics;
pub mod mobility;
pub mod network;
pub mod obs;
pub mod oracle;
pub mod par;
pub mod presets;
mod queue;
pub mod rng;
pub mod scenario;
pub mod sim;
pub mod workload;

pub use backend::{Backend, LiveRuntime};
pub use engine::{Engine, EngineCounters};
pub use explore::{Exploration, Explorer, FoundViolation, Oracle, ScenarioGen, Violation};
pub use fault::{bernoulli_crashes, crash_in_ring, PlannedCrash};
pub use metrics::{Histogram, Metrics, MetricsSnapshot, ParStats};
pub use mobility::{MobilityModel, TimedEvent};
pub use network::{LatencyBand, LinkClass, LinkClassMatrix, NetConfig, NetworkModel};
pub use obs::{obs_json, prometheus_text, ObsReport, Timeline, TimelineEntry};
pub use oracle::{check_repair_complete, check_ring_consistency, function_well_report};
pub use par::{ParSimulation, Parallelism};
pub use rng::SplitMix64;
pub use scenario::{operational_guids, Scenario, ScenarioError, ScenarioOutcome, TimedQuery};
pub use sim::{MemoryStats, QueueKind, Simulation};
pub use workload::{churn, expected_members, ChurnParams};
