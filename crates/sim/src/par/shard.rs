//! One shard of the parallel engine: a local slice of the node arena with
//! its own event queue (timer wheel), metrics, per-node random streams and
//! partition state.
//!
//! A shard is a [`Substrate`] exactly like the sequential
//! [`crate::sim::Simulation`] — protocol outputs flow through the shared
//! [`rgb_core::substrate::apply_outputs`] driver, frames are wire-encoded
//! and decoded on arrival — but its arenas are indexed by **shard-local**
//! dense indices, and a frame whose destination lives on another shard is
//! staged in the per-destination outbox instead of the local queue. The
//! driver ([`crate::par::ParSimulation`]) flushes outboxes into
//! cross-shard mailboxes at every window barrier.
//!
//! Because randomness and event keys derive from node identity (see the
//! [`crate::sim`] module docs), a shard processing its slice of events in
//! `(at, key)` order performs *bit-for-bit* the same node transitions the
//! sequential engine performs for those nodes — the window protocol only
//! has to guarantee that no event arrives after its window was processed.

use crate::metrics::Metrics;
use crate::network::{LinkClassMatrix, NetworkModel};
use crate::obs::EngineObs;
use crate::par::partition::ShardMap;
use crate::queue::{Event, EventKey, EventKind, EventQueue, QueueKind, TimerSlot};
use crate::rng::SplitMix64;
use crate::sim::{MemoryStats, EXT_SRC, EXT_STREAM_SALT, NODE_STREAM_SALT, NO_QUERY};
use bytes::Bytes;
use rgb_core::node::NodeState;
use rgb_core::prelude::*;
use rgb_core::topology::{HierarchyLayout, NodeIdx, NodeIndexer};
use rgb_core::wire;
use std::sync::Arc;

/// One shard's runtime state. All `Vec`s are indexed by the shard-local
/// dense index (`ShardMap::local_of`).
#[derive(Debug)]
pub(crate) struct Shard {
    /// This shard's slot in the [`ShardMap`].
    pub id: usize,
    /// Group id (frames carrying any other gid are rejected, as in the
    /// sequential engine).
    gid: GroupId,
    /// Local clock: advanced by event pops, pinned to the window horizon
    /// at each barrier.
    pub now: u64,
    /// Local → global index.
    globals: Vec<NodeIdx>,
    /// Local → node id.
    node_ids: Vec<NodeId>,
    nodes: Vec<NodeState>,
    crashed: Vec<bool>,
    delivered: Vec<Vec<(u64, AppEvent)>>,
    delivered_cap: usize,
    timer_slots: Vec<Vec<TimerSlot>>,
    timer_gens: Vec<u64>,
    query_started: Vec<u64>,
    rngs: Vec<SplitMix64>,
    emit: Vec<u64>,
    ext_rng: SplitMix64,
    ext_emit: u64,
    events: EventQueue,
    /// This shard's share of the run metrics (merged by the driver).
    pub metrics: Metrics,
    /// Severed NE pairs this shard owns an endpoint of.
    partitioned: Vec<(NodeId, NodeId)>,
    out_buf: OutputSink,
    /// Events this shard processed (throughput accounting).
    pub processed: u64,
    /// Staged cross-shard events, by destination shard; flushed into the
    /// mailboxes at each window barrier — one batch per destination per
    /// window, not one channel op per frame.
    pub outbox: Vec<Vec<Event>>,
    /// Recycled batch buffers: emptied by [`Shard::drain_batches`], handed
    /// back to [`Shard::flush_batches`] so the steady-state window loop
    /// allocates nothing.
    spare: Vec<Vec<Event>>,
    /// Observability hooks over this shard's slice of nodes. Ring-wholesale
    /// sharding keeps every `(ring, change)` join interval and every
    /// node-local repair interval on one shard, so the merged per-level
    /// histograms equal the sequential engine's exactly.
    pub(crate) obs: EngineObs,
    // Shared, immutable world state.
    indexer: Arc<NodeIndexer>,
    classes: Arc<LinkClassMatrix>,
    map: Arc<ShardMap>,
    net: NetworkModel,
}

impl Shard {
    /// Build shard `id` over its slice of `layout`, with per-node streams
    /// identical to the sequential engine's.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        layout: &HierarchyLayout,
        cfg: &ProtocolConfig,
        net: NetworkModel,
        seed: u64,
        indexer: Arc<NodeIndexer>,
        classes: Arc<LinkClassMatrix>,
        map: Arc<ShardMap>,
    ) -> Self {
        let globals: Vec<NodeIdx> = map.members[id].clone();
        let node_ids: Vec<NodeId> = globals.iter().map(|&g| indexer.id_of(g)).collect();
        let nodes: Vec<NodeState> = node_ids
            .iter()
            .map(|&nid| NodeState::from_layout(layout, nid, cfg.clone()).expect("valid layout"))
            .collect();
        let rngs = node_ids
            .iter()
            .map(|&nid| SplitMix64::stream(seed, NODE_STREAM_SALT ^ nid.0))
            .collect();
        let n = globals.len();
        let obs = EngineObs::new(&node_ids, layout);
        Shard {
            id,
            gid: layout.gid,
            now: 0,
            globals,
            node_ids,
            nodes,
            crashed: vec![false; n],
            delivered: vec![Vec::new(); n],
            delivered_cap: usize::MAX,
            timer_slots: vec![Vec::new(); n],
            timer_gens: vec![0; n],
            query_started: vec![NO_QUERY; n],
            rngs,
            emit: vec![0; n],
            ext_rng: SplitMix64::stream(seed, EXT_STREAM_SALT),
            ext_emit: 0,
            events: EventQueue::new(QueueKind::TimerWheel),
            metrics: Metrics::default(),
            partitioned: Vec::new(),
            out_buf: OutputSink::new(),
            processed: 0,
            outbox: vec![Vec::new(); map.shards],
            spare: Vec::new(),
            obs,
            indexer,
            classes,
            map,
            net,
        }
    }

    /// Number of locally owned nodes.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Borrow the node at a shard-local index.
    pub fn node_at(&self, local: usize) -> &NodeState {
        &self.nodes[local]
    }

    /// Cap the per-node delivery log (see
    /// [`crate::sim::Simulation::set_delivered_cap`]).
    pub fn set_delivered_cap(&mut self, cap: usize) {
        self.delivered_cap = cap;
    }

    /// Boot every locally owned node.
    pub fn boot_all(&mut self) {
        for local in 0..self.nodes.len() {
            self.inject_local(local, Input::Boot);
        }
    }

    /// Queue an event addressed to this shard (the driver's schedule
    /// routing and the mailbox drain both land here).
    pub fn enqueue(&mut self, event: Event) {
        debug_assert!(event.at >= self.now, "event arrived after its window");
        self.events.push(self.now, event.at, event.key, event.kind);
    }

    /// Queued entries still to drain.
    pub fn queue_len(&self) -> usize {
        self.events.len()
    }

    /// Pending scheduled disruptions in the local queue.
    pub fn pending_disruptions(&self) -> usize {
        self.events.disruptions()
    }

    /// `(at, key)` of the next local event (the merged driver's probe).
    pub fn peek_entry(&mut self) -> Option<(u64, EventKey)> {
        self.events.peek_entry(self.now)
    }

    /// Process every local event with `at <= horizon`, in `(at, key)`
    /// order. Cross-shard sends land in [`Shard::outbox`]. The clock only
    /// moves forward: a horizon behind `now` (a peer-lagged window under
    /// per-pair lookahead) processes nothing and leaves the clock alone.
    pub fn run_window(&mut self, horizon: u64) {
        while self.events.peek_at(self.now).is_some_and(|at| at <= horizon) {
            self.step();
        }
        self.now = self.now.max(horizon);
    }

    /// `at` of the next local event, `u64::MAX` when the queue is empty —
    /// the windowed driver's published progress bound (idle-window
    /// skipping jumps every clock to the minimum of these).
    pub fn next_event_at(&mut self) -> u64 {
        self.events.peek_at(self.now).unwrap_or(u64::MAX)
    }

    /// Flush every non-empty outbox as **one batch per destination** into
    /// the cross-shard mailboxes. Returns the minimum `at` over every
    /// flushed event (`u64::MAX` when nothing was staged) — part of this
    /// shard's published progress bound, since a flushed event is pending
    /// work the destination has not yet seen.
    pub fn flush_batches(&mut self, txs: &[crossbeam::channel::Sender<Vec<Event>>]) -> u64 {
        let mut sent_min = u64::MAX;
        for (outbox, tx) in self.outbox.iter_mut().zip(txs) {
            if outbox.is_empty() {
                continue;
            }
            for event in outbox.iter() {
                sent_min = sent_min.min(event.at);
            }
            let batch = std::mem::replace(outbox, self.spare.pop().unwrap_or_default());
            self.metrics.par.frames_batched += batch.len() as u64;
            self.metrics.par.batches += 1;
            self.metrics.par.max_batch = self.metrics.par.max_batch.max(batch.len() as u64);
            // A closed mailbox means its owner already unwound; the
            // barrier wait after this flush surfaces the poisoning.
            let _ = tx.send(batch);
        }
        sent_min
    }

    /// Drain every batch currently in this shard's mailbox into the local
    /// queue, keeping the emptied buffers for later flushes.
    pub fn drain_batches(&mut self, rx: &crossbeam::channel::Receiver<Vec<Event>>) {
        // Bound the recycle pool so a bursty window can't pin its peak
        // buffer count forever.
        const SPARE_CAP: usize = 32;
        while let Ok(mut batch) = rx.try_recv() {
            for event in batch.drain(..) {
                self.enqueue(event);
            }
            if self.spare.len() < SPARE_CAP {
                self.spare.push(batch);
            }
        }
    }

    /// Pop and dispatch exactly one event (the merged driver's step).
    /// Returns `false` when the local queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Event { at, kind, .. }) = self.events.pop(self.now) else { return false };
        self.now = self.now.max(at);
        self.processed += 1;
        match kind {
            EventKind::Deliver { from, to, frame } => {
                let crashed = to.is_some_and(|local| self.crashed[local.as_usize()]);
                if !crashed {
                    self.deliver_frame(from, to, &frame);
                }
            }
            EventKind::Timer { node, kind, gen } => {
                let local = node.as_usize();
                if !self.crashed[local] {
                    let slots = &mut self.timer_slots[local];
                    match slots.iter().position(|s| s.gen == gen) {
                        Some(pos) => {
                            slots.swap_remove(pos);
                            if self.obs.enabled {
                                self.obs.on_timer_fire(self.now, local, kind);
                            }
                            self.inject_local(local, Input::Timer(kind));
                        }
                        None => self.metrics.stale_timer_skips += 1,
                    }
                } else {
                    self.metrics.stale_timer_skips += 1;
                }
            }
            EventKind::MhDeliver { ap, frame } => {
                let local = self.local_of_id(ap);
                let crashed = local.is_some_and(|l| self.crashed[l]);
                if !crashed {
                    match wire::decode(&frame) {
                        Ok(env) if env.gid == self.gid => {
                            if let Msg::FromMh { event } = env.msg {
                                if let Some(local) = local {
                                    self.inject_local(local, Input::Mh(event));
                                }
                            } else {
                                self.metrics.codec_rejected += 1;
                            }
                        }
                        _ => self.metrics.codec_rejected += 1,
                    }
                }
            }
            EventKind::Crash { node } => {
                if let Some(local) = self.local_of_id(node) {
                    self.crashed[local] = true;
                    self.timer_slots[local].clear();
                    if self.obs.enabled {
                        self.obs.on_crash(self.now, local);
                    }
                }
            }
            EventKind::QueryStart { node, scope } => {
                if let Some(local) = self.local_of_id(node) {
                    self.query_started[local] = self.now;
                    if self.obs.enabled {
                        self.obs.on_query_issue(self.now, local);
                    }
                    self.inject_local(local, Input::StartQuery { scope });
                }
            }
            EventKind::PartitionStart { a, b } => {
                // Partition arms are replicated to both endpoint owners;
                // only `a`'s owner traces, matching the sequential engine's
                // single record (`local_partition_of` skips the replica).
                if self.obs.enabled {
                    if let Some(local) = self.local_partition_of(a) {
                        self.obs.on_partition(self.now, local, true);
                    }
                }
                let pair = if a <= b { (a, b) } else { (b, a) };
                self.partitioned.push(pair);
            }
            EventKind::PartitionHeal { a, b } => {
                if self.obs.enabled {
                    if let Some(local) = self.local_partition_of(a) {
                        self.obs.on_partition(self.now, local, false);
                    }
                }
                let pair = if a <= b { (a, b) } else { (b, a) };
                if let Some(pos) = self.partitioned.iter().position(|&p| p == pair) {
                    self.partitioned.swap_remove(pos);
                }
            }
        }
        true
    }

    /// Local index of `id`, or `None` when `id` is outside the layout or
    /// owned by another shard (the driver routes events to owners, so the
    /// latter indicates a routing bug in debug builds).
    fn local_of_id(&self, id: NodeId) -> Option<usize> {
        let global = self.indexer.index_of(id)?;
        if self.map.shard_of(global) != self.id {
            debug_assert!(false, "event for {id} routed to shard {}", self.id);
            return None;
        }
        Some(self.map.local_of(global).as_usize())
    }

    /// Local index of partition endpoint `id` when this shard owns it,
    /// `None` otherwise — unlike [`Shard::local_of_id`] a foreign owner is
    /// *expected* here (partition arms are replicated to both endpoint
    /// owners), so no routing assertion fires.
    fn local_partition_of(&self, id: NodeId) -> Option<usize> {
        let global = self.indexer.index_of(id)?;
        if self.map.shard_of(global) != self.id {
            return None;
        }
        Some(self.map.local_of(global).as_usize())
    }

    fn inject_local(&mut self, local: usize, input: Input) {
        if self.crashed[local] {
            return;
        }
        let mut outs = std::mem::take(&mut self.out_buf);
        self.nodes[local].handle_into(input, &mut outs);
        let gid = self.gid;
        let id = self.node_ids[local];
        apply_outputs(self, gid, id, &mut outs);
        self.out_buf = outs;
    }

    fn deliver_frame(&mut self, from: NodeId, to: Option<NodeIdx>, frame: &Bytes) {
        match wire::decode(frame) {
            Ok(env) if env.gid == self.gid => {
                if let Some(local) = to {
                    if self.obs.enabled {
                        self.obs.on_msg(self.now, local.as_usize(), &env.msg);
                    }
                    self.inject_local(local.as_usize(), Input::Msg { from, msg: env.msg });
                }
            }
            _ => self.metrics.codec_rejected += 1,
        }
    }

    fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.partitioned.contains(&pair)
    }

    /// Queue a runtime event locally or stage it for another shard.
    fn route(&mut self, dest: Option<usize>, at: u64, key: EventKey, kind: EventKind) {
        match dest {
            Some(s) if s != self.id => self.outbox[s].push(Event { at, key, kind }),
            _ => self.events.push(self.now, at, key, kind),
        }
    }

    /// Alive-node digests, as `(global index, digest)` for the driver to
    /// interleave in global id order.
    pub fn digests_into(&self, out: &mut Vec<(NodeIdx, StateDigest)>) {
        for (local, &global) in self.globals.iter().enumerate() {
            if !self.crashed[local] {
                out.push((global, self.nodes[local].digest()));
            }
        }
    }

    /// Final membership views of alive local nodes (scenario outcomes).
    pub fn views_into(&self, out: &mut Vec<(NodeId, std::collections::BTreeSet<Guid>)>) {
        for (local, &id) in self.node_ids.iter().enumerate() {
            if !self.crashed[local] {
                out.push((id, crate::scenario::operational_guids(&self.nodes[local].ring_members)));
            }
        }
    }

    /// This shard's contribution to [`MemoryStats`].
    pub fn memory_stats(&self) -> MemoryStats {
        crate::sim::memory_stats_of(
            &self.nodes,
            &self.timer_slots,
            &self.delivered,
            self.events.len(),
        )
    }
}

impl Substrate for Shard {
    fn now(&self) -> u64 {
        self.now
    }

    fn send_frame(&mut self, from: NodeId, to: NodeId, label: MsgLabel, frame: Bytes) {
        let fi = self.indexer.index_of(from);
        let ti = self.indexer.index_of(to);
        let class = self.classes.classify(fi, ti);
        self.metrics.record_send(label, class);
        if !self.partitioned.is_empty() && self.is_partitioned(from, to) {
            self.metrics.partition_dropped += 1;
            return;
        }
        // Sender-owned stream and emission counter — identical draws and
        // keys to the sequential engine for the same node activity. The
        // emission numbers are reserved up front so routing can take
        // `&mut self`.
        let (src, plan, seq) = match fi {
            Some(g) => {
                debug_assert_eq!(self.map.shard_of(g), self.id, "send from foreign node");
                let local = self.map.local_of(g).as_usize();
                let plan = self.net.plan_frame(class, &mut self.rngs[local]);
                let reserve = plan.map_or(0, |p| 1 + u64::from(p.dup_latency.is_some()));
                let seq = self.emit[local];
                self.emit[local] += reserve;
                (g.0, plan, seq)
            }
            None => {
                let plan = self.net.plan_frame(class, &mut self.ext_rng);
                let reserve = plan.map_or(0, |p| 1 + u64::from(p.dup_latency.is_some()));
                let seq = self.ext_emit;
                self.ext_emit += reserve;
                (EXT_SRC, plan, seq)
            }
        };
        let Some(plan) = plan else {
            self.metrics.lost += 1;
            return;
        };
        if plan.reordered {
            self.metrics.reordered += 1;
        }
        // Destination shard + destination-local index (what the owning
        // shard's arenas are keyed by).
        let (dest, to_local) = match ti {
            Some(g) => (Some(self.map.shard_of(g)), Some(self.map.local_of(g))),
            None => (None, None),
        };
        let mut seq = seq;
        if let Some(dup_latency) = plan.dup_latency {
            self.metrics.duplicated += 1;
            let key = EventKey::emitted(src, seq);
            seq += 1;
            self.route(
                dest,
                self.now.saturating_add(dup_latency),
                key,
                EventKind::Deliver { from, to: to_local, frame: frame.clone() },
            );
        }
        self.route(
            dest,
            self.now.saturating_add(plan.latency),
            EventKey::emitted(src, seq),
            EventKind::Deliver { from, to: to_local, frame },
        );
    }

    fn arm_timer(&mut self, node: NodeId, kind: TimerKind, after: u64) {
        let Some(global) = self.indexer.index_of(node) else { return };
        let Some(local) = self.local_of_id(node) else { return };
        let gen = {
            let g = &mut self.timer_gens[local];
            *g += 1;
            *g
        };
        let slots = &mut self.timer_slots[local];
        match slots.iter_mut().find(|s| s.kind == kind) {
            Some(slot) => slot.gen = gen,
            None => slots.push(TimerSlot { kind, gen }),
        }
        let key = EventKey::emitted(global.0, self.emit[local]);
        self.emit[local] += 1;
        self.events.push(
            self.now,
            self.now.saturating_add(after),
            key,
            EventKind::Timer { node: NodeIdx(local as u32), kind, gen },
        );
    }

    fn cancel_timer(&mut self, node: NodeId, kind: TimerKind) {
        let Some(local) = self.local_of_id(node) else { return };
        let slots = &mut self.timer_slots[local];
        if let Some(pos) = slots.iter().position(|s| s.kind == kind) {
            slots.swap_remove(pos);
        }
    }

    fn deliver_app(&mut self, node: NodeId, event: AppEvent) {
        self.metrics.app_events += 1;
        let Some(local) = self.local_of_id(node) else { return };
        if let AppEvent::QueryResult { .. } = &event {
            let t0 = std::mem::replace(&mut self.query_started[local], NO_QUERY);
            if t0 != NO_QUERY {
                let dt = self.now - t0;
                self.metrics.query_latency.record(dt);
                self.obs.on_query_done(local, dt, &mut self.metrics);
            }
        }
        if self.obs.enabled {
            self.obs.on_app(self.now, local, &event, &mut self.metrics);
        }
        let log = &mut self.delivered[local];
        if log.len() < self.delivered_cap {
            log.push((self.now, event));
        } else {
            self.metrics.app_events_dropped += 1;
        }
    }
}
