//! `rgb_sim::par` — the sharded conservative-parallel simulation engine.
//!
//! [`ParSimulation`] runs the same protocol world as the sequential
//! [`Simulation`](crate::sim::Simulation), split across shards:
//!
//! 1. **Partitioning** is hierarchy-aware
//!    ([`rgb_core::topology::HierarchyLayout::partition_rings`] via
//!    `partition::ShardMap`): rings are never split and sponsored
//!    subtrees stay contiguous, so intra-ring token traffic and most
//!    parent–child traffic is shard-local.
//! 2. **Each shard** owns a dense local arena — node states, crash flags,
//!    timer wheel, per-node random streams, metrics — and is a full
//!    [`rgb_core::substrate::Substrate`] (`shard::Shard`).
//! 3. **Synchronisation is conservative, per shard pair**: the *lookahead
//!    matrix* (`partition::LookaheadMatrix`) records the minimum
//!    [`LatencyBand`](crate::network::LatencyBand) floor over link classes
//!    that cross each ordered shard pair. Every window, each shard `j`
//!    advances to its own horizon `min_i(clock_i + floor(i, j)) - 1` —
//!    the last tick no *incoming* edge can contradict — so a tight
//!    inter-tier sponsor pair no longer throttles shards it never talks
//!    to, and a shard with no incoming edges runs free to the deadline.
//!    Every thread replicates the full clock vector with the same pure
//!    arithmetic over the same barrier-published data, so one barrier per
//!    window suffices; clocks drift apart only as far as the pair floors
//!    allow. Cross-shard frames travel as **one batched `Vec` per
//!    destination per window** through `crossbeam` channel mailboxes
//!    (buffers recycled at the barrier), and every mailbox entry is
//!    merged into the destination's queue *before* the window that
//!    contains its arrival tick.
//! 4. **Idle windows are skipped**: each shard publishes a lower bound on
//!    its next event at the barrier; when the global minimum lies beyond
//!    every clock, all clocks jump to it (quantised down to the
//!    global-floor grid so window boundaries — and therefore event order
//!    — are unchanged). Sparse scenarios pay for events, not for empty
//!    simulated time.
//! 5. **Zero lookahead** (instant networks) admits no conservative
//!    window; the engine then degrades to a merged single-threaded drive
//!    that pops the global `(at, key)` minimum across shard queues —
//!    exactly the sequential semantics, still shard-partitioned state.
//!
//! ## Determinism
//!
//! The engine is not "deterministic for a fixed shard count" — it is
//! **trace-equivalent to the sequential engine**, for every shard count.
//! Randomness is drawn from per-node and per-MH streams, event order is
//! decided by content-derived `EventKey`s (the crate-private `queue` module), and the window
//! protocol guarantees every event is enqueued before its window is
//! processed; therefore each node sees the identical input sequence it
//! would have seen sequentially, and [`ParSimulation::system_digest`]
//! reproduces the sequential [`SystemDigest`] byte for byte. The
//! `par_equivalence` integration test pins this across seeds × shard
//! counts × fault plans.

pub(crate) mod partition;
pub(crate) mod shard;

use crate::metrics::{Metrics, ParStats};
use crate::network::{LinkClassMatrix, NetConfig, NetworkModel};
use crate::queue::{Event, EventKey, EventKind};
use crate::sim::{MemoryStats, WirelessHop};
use partition::{LookaheadMatrix, ShardMap};
use rgb_core::node::NodeState;
use rgb_core::prelude::*;
use rgb_core::topology::{HierarchyLayout, NodeIndexer};
use shard::Shard;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A window barrier with **panic poisoning**: when any window thread
/// unwinds (a protocol invariant `panic!`, a mailbox failure), it poisons
/// the barrier on the way out, every parked peer wakes with `Err`, exits
/// its window loop, and `std::thread::scope` can join and propagate the
/// original panic. With `std::sync::Barrier` the surviving threads would
/// block forever — a hung CI job instead of a backtrace.
struct WindowBarrier {
    state: Mutex<WindowBarrierState>,
    cv: Condvar,
    threads: usize,
}

struct WindowBarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// The barrier was poisoned by a panicking peer.
struct BarrierPoisoned;

impl WindowBarrier {
    fn new(threads: usize) -> Self {
        WindowBarrier {
            state: Mutex::new(WindowBarrierState { arrived: 0, generation: 0, poisoned: false }),
            cv: Condvar::new(),
            threads,
        }
    }

    /// Block until every thread arrives (like `Barrier::wait`), or until a
    /// peer poisons the barrier.
    fn wait(&self) -> Result<(), BarrierPoisoned> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.poisoned {
            return Err(BarrierPoisoned);
        }
        state.arrived += 1;
        if state.arrived == self.threads {
            state.arrived = 0;
            state.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let generation = state.generation;
        while state.generation == generation && !state.poisoned {
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.poisoned {
            Err(BarrierPoisoned)
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.poisoned = true;
        self.cv.notify_all();
    }
}

/// Poisons the barrier if dropped during a panic (one lives on each
/// window thread's stack).
struct PoisonOnPanic<'a>(&'a WindowBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// How a scenario run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// The sequential engine ([`crate::sim::Simulation`]).
    #[default]
    Seq,
    /// The sharded conservative-parallel engine with this many shards.
    /// `Shards(1)` is a valid (single-shard) parallel run; both produce
    /// digest streams identical to [`Parallelism::Seq`].
    Shards(usize),
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Seq => write!(f, "seq"),
            Parallelism::Shards(n) => write!(f, "shards({n})"),
        }
    }
}

/// The sharded conservative-parallel discrete-event engine (see module
/// docs).
#[derive(Debug)]
pub struct ParSimulation {
    /// The hierarchy under simulation.
    pub layout: HierarchyLayout,
    indexer: Arc<NodeIndexer>,
    map: Arc<ShardMap>,
    shards: Vec<Shard>,
    /// Driver clock: the deadline of the last [`ParSimulation::run_until`].
    now: u64,
    /// Per-ordered-pair conservative floors (see
    /// [`partition::LookaheadMatrix`]); its global minimum is `u64::MAX`
    /// when at most one shard is populated, 0 when an instant network
    /// admits no window (merged fallback).
    la: LookaheadMatrix,
    /// Reusable scratch for the single-threaded outbox flush (boot and
    /// merged mode).
    staged: Vec<(usize, Event)>,
    /// Schedule counter (mirrors the sequential engine's, so scheduled
    /// events carry identical keys).
    sched_seq: u64,
    /// Wireless hop resolver (identical per-MH streams to sequential).
    wireless: WirelessHop,
    net: NetworkModel,
    /// Send/loss counters accrued at schedule time (wireless hop), merged
    /// into [`ParSimulation::metrics`].
    driver_metrics: Metrics,
    /// Every scheduled crash `(at, node)` — including ids outside the
    /// layout, exactly like the sequential engine's crash bookkeeping.
    crash_log: Vec<(u64, NodeId)>,
}

impl ParSimulation {
    /// Build a parallel simulation over `layout` with every node running
    /// `cfg`, split into `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `net` fails
    /// [`NetConfig::validate`].
    pub fn new(
        layout: HierarchyLayout,
        cfg: &ProtocolConfig,
        net: NetConfig,
        seed: u64,
        shards: usize,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let indexer = Arc::new(layout.indexer());
        let classes = Arc::new(LinkClassMatrix::new(&layout, &indexer));
        let map = Arc::new(ShardMap::new(&layout, &indexer, shards));
        let la = LookaheadMatrix::new(&layout, &indexer, &map, &net);
        let model = NetworkModel::new(net);
        let shards = (0..shards)
            .map(|id| {
                Shard::new(
                    id,
                    &layout,
                    cfg,
                    model.clone(),
                    seed,
                    Arc::clone(&indexer),
                    Arc::clone(&classes),
                    Arc::clone(&map),
                )
            })
            .collect();
        ParSimulation {
            layout,
            indexer,
            map,
            shards,
            now: 0,
            la,
            staged: Vec::new(),
            sched_seq: 0,
            wireless: WirelessHop::new(seed),
            net: model,
            driver_metrics: Metrics::default(),
            crash_log: Vec::new(),
        }
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global conservative floor in force — the minimum over every
    /// shard pair's lookahead (see module docs). Individual pairs may
    /// admit much longer windows; see
    /// [`ParSimulation::lookahead_range`].
    pub fn lookahead(&self) -> u64 {
        self.la.global()
    }

    /// `(min, max)` finite pair floors of the lookahead matrix: how much
    /// per-pair slack the topology offers over the single global floor.
    pub fn lookahead_range(&self) -> (u64, u64) {
        (self.la.global(), self.la.max_pair())
    }

    /// Aggregated window/batching counters across every shard (all zero
    /// until a windowed run executes; merged-mode runs have no windows).
    pub fn par_stats(&self) -> ParStats {
        let mut total = ParStats::default();
        for shard in &self.shards {
            total.merge(&shard.metrics.par);
        }
        total
    }

    /// Current driver time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Boot every node (each shard boots its own, then boot-time
    /// cross-shard frames are exchanged once).
    pub fn boot_all(&mut self) {
        for shard in &mut self.shards {
            shard.boot_all();
        }
        self.flush_outboxes();
    }

    /// Cap every node's delivery log (see
    /// [`crate::sim::Simulation::set_delivered_cap`]).
    pub fn set_delivered_cap(&mut self, cap: usize) {
        for shard in &mut self.shards {
            shard.set_delivered_cap(cap);
        }
    }

    /// Enable observability on every shard: `make_sink` builds one sink
    /// per shard (keyed by shard id), so trace recording inside the
    /// window threads stays lock-free. Tracking never touches node
    /// inputs, RNG streams or event keys, so enabling it leaves
    /// [`ParSimulation::system_digest`] streams byte-identical.
    pub fn enable_obs<F>(&mut self, mut make_sink: F)
    where
        F: FnMut(usize) -> Box<dyn rgb_core::obs::TraceSink>,
    {
        for shard in &mut self.shards {
            shard.obs.enable(make_sink(shard.id));
        }
    }

    /// Enable latency tracking only (no trace retention) — the explorer's
    /// mode: per-level histograms feed coverage features at no trace cost.
    pub fn enable_obs_tracking(&mut self) {
        for shard in &mut self.shards {
            shard.obs.enable_tracking();
        }
    }

    /// Retained trace records merged across every shard and sorted into
    /// [`rgb_core::obs::ObsRecord`]'s `(at, node, …)` order —
    /// set-equal to the sequential engine's snapshot for the same run and
    /// ample sink capacity.
    pub fn trace_snapshot(&self) -> Vec<rgb_core::obs::ObsRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.obs.trace_snapshot());
        }
        all.sort_unstable();
        all
    }

    /// Trace records evicted by sink capacity bounds, across every shard.
    pub fn trace_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.obs.trace_dropped()).sum()
    }

    /// Merged per-ring-level latency surfaces across every shard (empty
    /// unless obs was enabled) — equal to the sequential engine's for the
    /// same run, because ring-wholesale sharding keeps every latency
    /// interval on one shard.
    pub fn level_latency(&self) -> rgb_core::obs::LevelHistograms {
        let mut levels = rgb_core::obs::LevelHistograms::new();
        for shard in &self.shards {
            levels.merge(&shard.metrics.levels);
        }
        levels
    }

    /// Join intervals discarded because a shard's first-seen table hit
    /// its cap (accounting trim only; protocol behaviour is unaffected).
    pub fn obs_first_seen_overflow(&self) -> u64 {
        self.shards.iter().map(|s| s.obs.first_seen_overflow()).sum()
    }

    fn sched_key(&mut self) -> EventKey {
        let key = EventKey::scheduled(self.sched_seq);
        self.sched_seq += 1;
        key
    }

    /// Route a scheduled event to the shard owning `node`; events for ids
    /// outside the layout are dropped (their side effects, if any, are the
    /// caller's bookkeeping — see [`ParSimulation::crash_at`]).
    fn route_to_owner(&mut self, node: NodeId, at: u64, key: EventKey, kind: EventKind) {
        if let Some(global) = self.indexer.index_of(node) {
            let s = self.map.shard_of(global);
            self.shards[s].enqueue(Event { at, key, kind });
        }
    }

    /// Schedule a mobile-host event against access proxy `ap` (wireless
    /// hop resolved now, exactly like the sequential engine).
    pub fn schedule_mh(&mut self, delay: u64, ap: NodeId, event: MhEvent) {
        let send_at = self.now.saturating_add(delay);
        if let Some(at) =
            self.wireless.resolve(send_at, &event, &self.net, &mut self.driver_metrics)
        {
            let frame = rgb_core::wire::encode(&Envelope {
                gid: self.layout.gid,
                msg: Msg::FromMh { event },
            });
            let key = self.sched_key();
            self.route_to_owner(ap, at, key, EventKind::MhDeliver { ap, frame });
        }
    }

    /// Schedule a node crash (ids outside the layout are remembered in the
    /// crash set without any engine effect, like sequentially).
    pub fn crash_at(&mut self, delay: u64, node: NodeId) {
        let at = self.now.saturating_add(delay);
        self.crash_log.push((at, node));
        let key = self.sched_key();
        self.route_to_owner(node, at, key, EventKind::Crash { node });
    }

    /// Schedule a membership query issued at `node`.
    pub fn schedule_query(&mut self, delay: u64, node: NodeId, scope: QueryScope) {
        let at = self.now.saturating_add(delay);
        let key = self.sched_key();
        self.route_to_owner(node, at, key, EventKind::QueryStart { node, scope });
    }

    /// Schedule a timed link partition. The transition events are
    /// replicated to the shard(s) owning the endpoints — each shard keeps
    /// its own severed-pair list, and only an endpoint's shard ever
    /// consults this pair (the drop check runs on the sender's shard, and
    /// the sender of an affected frame is always an endpoint).
    pub fn schedule_partition(&mut self, p: LinkPartition) {
        debug_assert!(p.heal_at > p.at, "validated by Scenario");
        let start_key = self.sched_key();
        let heal_key = self.sched_key();
        let mut targets: Vec<usize> = [p.a, p.b]
            .iter()
            .filter_map(|&n| self.indexer.index_of(n))
            .map(|g| self.map.shard_of(g))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for s in targets {
            self.shards[s].enqueue(Event {
                at: self.now.saturating_add(p.at),
                key: start_key,
                kind: EventKind::PartitionStart { a: p.a, b: p.b },
            });
            self.shards[s].enqueue(Event {
                at: self.now.saturating_add(p.heal_at),
                key: heal_key,
                kind: EventKind::PartitionHeal { a: p.a, b: p.b },
            });
        }
    }

    /// Single-threaded outbox routing (boot and merged mode). The staging
    /// buffer is an owned scratch field — merged mode flushes after every
    /// cross-shard burst, so this path must not allocate per call.
    fn flush_outboxes(&mut self) {
        let mut staged = std::mem::take(&mut self.staged);
        for shard in &mut self.shards {
            for (dest, events) in shard.outbox.iter_mut().enumerate() {
                staged.extend(events.drain(..).map(|e| (dest, e)));
            }
        }
        for (dest, event) in staged.drain(..) {
            self.shards[dest].enqueue(event);
        }
        self.staged = staged;
    }

    /// Run until simulated time reaches `deadline` (events beyond it stay
    /// queued), windows permitting parallel execution whenever the
    /// lookahead is positive.
    pub fn run_until(&mut self, deadline: u64) {
        if deadline <= self.now {
            return;
        }
        if self.la.global() == 0 {
            self.run_merged(deadline);
        } else {
            self.run_windowed(deadline);
        }
        self.now = deadline;
    }

    /// Windowed execution: one thread per populated shard, one barrier
    /// per window, per-shard horizons from the lookahead matrix.
    ///
    /// Every thread tracks the **full clock vector** — `clocks[i]` is a
    /// lower bound on shard `i`'s next unprocessed tick — and advances it
    /// with identical pure arithmetic over identical barrier-published
    /// data, so the replicas never disagree and no extra synchronisation
    /// round is needed. One window is:
    ///
    /// 1. compute `horizons[j] = min(deadline, min_i(clocks[i] +
    ///    floor(i, j)) - 1)` for every active shard — the last tick `j`
    ///    may process, because any future frame from `i` is sent at
    ///    `clocks[i]` or later and spends at least `floor(i, j)` ticks in
    ///    flight (so arrives strictly after `horizons[j]`);
    /// 2. process own window through `horizons[me]`, flush outboxes as
    ///    one batch per destination, and publish a progress bound: the
    ///    minimum of the local queue's next `at` and every `at` just
    ///    flushed (the destination has not seen those yet);
    /// 3. barrier — the barrier's mutex is the release/acquire edge for
    ///    the relaxed publishes;
    /// 4. drain mailbox batches (a frame sent in some window arrives
    ///    strictly after the sender's clock plus the pair floor, which
    ///    step 1 keeps beyond every receiver horizon — so every event is
    ///    enqueued before the window containing its arrival tick);
    /// 5. advance every clock past its horizon, then **idle-skip**: if
    ///    the minimum published bound lies beyond a clock, jump it
    ///    forward (quantised down to the global-floor grid anchored at
    ///    the run start, so window boundaries — and event order — are
    ///    exactly what a non-skipping run would produce).
    ///
    /// Publishes are double-buffered by window parity: a shard racing one
    /// window ahead writes the other slot, never one a peer still reads.
    fn run_windowed(&mut self, deadline: u64) {
        let start = self.now;
        let nshards = self.shards.len();
        let active: Vec<bool> =
            self.shards.iter().map(|s| s.len() > 0 || s.queue_len() > 0).collect();
        let threads = active.iter().filter(|&&a| a).count();
        if threads <= 1 {
            // Nothing can cross shards: drive the one populated shard
            // (if any) straight to the deadline.
            for (shard, _) in self.shards.iter_mut().zip(&active).filter(|(_, &a)| a) {
                let t0 = std::time::Instant::now();
                shard.run_window(deadline);
                shard.metrics.par.execute_nanos += t0.elapsed().as_nanos() as u64;
                shard.metrics.par.windows += 1;
            }
            return;
        }
        // Idle-skip grid: the spacing windows would have without skipping.
        let grid = self.la.global().max(1);
        let barrier = WindowBarrier::new(threads);
        let channels: Vec<_> =
            (0..nshards).map(|_| crossbeam::channel::unbounded::<Vec<Event>>()).collect();
        let txs: Vec<_> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        let mut rxs: Vec<_> = channels.into_iter().map(|(_, rx)| Some(rx)).collect();
        let published: Vec<[AtomicU64; 2]> =
            (0..nshards).map(|_| [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)]).collect();
        let barrier = &barrier;
        let txs = &txs;
        let published = &published;
        let active = &active;
        let la = &self.la;
        std::thread::scope(|scope| {
            for (shard, rx) in self.shards.iter_mut().zip(rxs.iter_mut()) {
                if !active[shard.id] {
                    continue;
                }
                let rx = rx.take().expect("one thread per shard");
                scope.spawn(move || {
                    // If this thread panics (protocol invariant, mailbox
                    // failure), poison the barrier so peers exit instead
                    // of waiting forever; the scope join then propagates
                    // the panic.
                    let _guard = PoisonOnPanic(barrier);
                    let me = shard.id;
                    let mut clocks = vec![u64::MAX; nshards];
                    for (clock, &live) in clocks.iter_mut().zip(active) {
                        if live {
                            *clock = start;
                        }
                    }
                    let mut horizons = vec![0u64; nshards];
                    let mut parity = 0usize;
                    loop {
                        for j in 0..nshards {
                            if active[j] {
                                horizons[j] = la.horizon_of(&clocks, j, deadline);
                            }
                        }
                        // Wall-clock phase accounting (execute / flush /
                        // barrier / drain). Reads of the monotonic clock
                        // never feed back into event content or order, so
                        // timing cannot perturb determinism; the barrier
                        // bucket is the load-imbalance signal.
                        let t0 = std::time::Instant::now();
                        shard.run_window(horizons[me]);
                        shard.metrics.par.windows += 1;
                        let t1 = std::time::Instant::now();
                        shard.metrics.par.execute_nanos += (t1 - t0).as_nanos() as u64;
                        let sent_min = shard.flush_batches(txs);
                        let bound = shard.next_event_at().min(sent_min);
                        published[me][parity].store(bound, Ordering::Relaxed);
                        let t2 = std::time::Instant::now();
                        shard.metrics.par.flush_nanos += (t2 - t1).as_nanos() as u64;
                        if barrier.wait().is_err() {
                            return;
                        }
                        let t3 = std::time::Instant::now();
                        shard.metrics.par.barrier_nanos += (t3 - t2).as_nanos() as u64;
                        shard.drain_batches(&rx);
                        shard.metrics.par.drain_nanos += t3.elapsed().as_nanos() as u64;
                        for j in 0..nshards {
                            if active[j] {
                                clocks[j] = clocks[j].max(horizons[j].saturating_add(1));
                            }
                        }
                        let mut t_next = u64::MAX;
                        for (slots, &live) in published.iter().zip(active) {
                            if live {
                                t_next = t_next.min(slots[parity].load(Ordering::Relaxed));
                            }
                        }
                        // t_next == MAX means no shard has any event left
                        // (flushed frames count as their sender's pending
                        // work, so in-flight batches can't be missed):
                        // jump straight to the deadline.
                        let jump = if t_next == u64::MAX {
                            deadline
                        } else {
                            // Quantise down to the grid so the jump lands
                            // on a boundary a non-skipping run would have
                            // used anyway.
                            start + ((t_next.saturating_sub(start)) / grid) * grid
                        }
                        .min(deadline);
                        for j in 0..nshards {
                            if active[j] && clocks[j] < jump {
                                clocks[j] = jump;
                                if j == me {
                                    shard.metrics.par.idle_skips += 1;
                                }
                            }
                        }
                        if clocks.iter().zip(active).all(|(&c, &live)| !live || c > deadline) {
                            break;
                        }
                        parity ^= 1;
                    }
                });
            }
        });
    }

    /// Merged fallback for zero lookahead: a single thread pops the global
    /// `(at, key)` minimum across shard queues — the sequential semantics
    /// over the partitioned state. No parallel speedup, but scenario knobs
    /// and digests behave identically, so an instant-network run is still
    /// valid under any `Parallelism`.
    fn run_merged(&mut self, deadline: u64) {
        loop {
            let mut best: Option<(u64, EventKey, usize)> = None;
            for (i, shard) in self.shards.iter_mut().enumerate() {
                if let Some((at, key)) = shard.peek_entry() {
                    if at <= deadline && best.is_none_or(|(ba, bk, _)| (at, key) < (ba, bk)) {
                        best = Some((at, key, i));
                    }
                }
            }
            let Some((_, _, i)) = best else { break };
            self.shards[i].step();
            if self.shards[i].outbox.iter().any(|o| !o.is_empty()) {
                self.flush_outboxes();
            }
        }
        for shard in &mut self.shards {
            shard.run_window(deadline); // pins shard.now to the deadline
        }
    }

    /// Total events processed across all shards.
    pub fn processed_events(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Queued entries across all shards (stale timer entries and
    /// replicated partition transitions included).
    pub fn queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.queue_len()).sum()
    }

    /// Scheduled disruptions still queued across all shards.
    pub fn pending_disruptions(&self) -> usize {
        self.shards.iter().map(|s| s.pending_disruptions()).sum()
    }

    /// Whether `node` has crashed (scheduled ids outside the layout
    /// included once their time has passed).
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crash_log.iter().any(|&(at, n)| n == node && at <= self.now)
    }

    /// The four scalar counter totals a run trace records, summed across
    /// the driver and every shard without touching the histograms —
    /// cheap enough for a per-observation oracle loop (the full
    /// [`ParSimulation::metrics`] merge clones every latency sample).
    pub fn counter_totals(&self) -> crate::engine::EngineCounters {
        let mut totals = crate::engine::EngineCounters {
            sent_total: self.driver_metrics.sent_total,
            app_events: self.driver_metrics.app_events,
            lost: self.driver_metrics.lost,
            partition_dropped: self.driver_metrics.partition_dropped,
        };
        for shard in &self.shards {
            totals.sent_total += shard.metrics.sent_total;
            totals.app_events += shard.metrics.app_events;
            totals.lost += shard.metrics.lost;
            totals.partition_dropped += shard.metrics.partition_dropped;
        }
        totals
    }

    /// Merged metrics: the driver's schedule-time counters plus every
    /// shard's, folded with [`Metrics::merge`]. Totals equal the
    /// sequential engine's for the same run.
    pub fn metrics(&self) -> Metrics {
        let mut merged = self.driver_metrics.clone();
        for shard in &self.shards {
            merged.merge(&shard.metrics);
        }
        merged
    }

    /// Aggregate memory accounting across shards.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut stats = MemoryStats::default();
        for shard in &self.shards {
            stats.merge(&shard.memory_stats());
        }
        stats
    }

    /// Oracle-facing digest of the whole system, byte-identical to the
    /// sequential engine's at every `run_until` boundary.
    pub fn system_digest(&self, settled: bool) -> SystemDigest {
        let mut tagged = Vec::new();
        for shard in &self.shards {
            shard.digests_into(&mut tagged);
        }
        tagged.sort_by_key(|&(global, _)| global);
        let nodes = tagged.into_iter().map(|(_, digest)| digest).collect();
        SystemDigest { now: self.now, nodes, crashed: self.crashed_set(), settled }
    }

    /// Crashed NEs so far (scheduled ids outside the layout included).
    pub fn crashed_set(&self) -> BTreeSet<NodeId> {
        self.crash_log.iter().filter(|&&(at, _)| at <= self.now).map(|&(_, n)| n).collect()
    }

    /// Final membership views (the substrate-independent
    /// [`ScenarioOutcome`](crate::scenario::ScenarioOutcome) content).
    pub fn views(&self) -> std::collections::BTreeMap<NodeId, BTreeSet<Guid>> {
        let mut views = Vec::new();
        for shard in &self.shards {
            shard.views_into(&mut views);
        }
        views.into_iter().collect()
    }

    /// Every node's protocol state, in id order (cold path: gathers across
    /// shards).
    pub fn nodes_iter(&self) -> impl Iterator<Item = (NodeId, &NodeState)> + '_ {
        self.indexer.iter().map(|(global, id)| {
            let shard = &self.shards[self.map.shard_of(global)];
            (id, shard.node_at(self.map.local_of(global).as_usize()))
        })
    }
}
