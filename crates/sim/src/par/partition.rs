//! Shard assignment and lookahead derivation for the parallel engine.
//!
//! The node→shard map is a thin arena view over
//! [`HierarchyLayout::partition_rings`]: rings are never split and
//! sponsored subtrees stay contiguous, so the overwhelming share of
//! protocol traffic (intra-ring token rounds, parent–child notifications)
//! never crosses a shard boundary. What *can* cross is what bounds the
//! conservative window: the lookahead is the minimum latency-band floor
//! over every link class that actually crosses shards in the chosen
//! partition.

use crate::network::{LinkClass, NetConfig};
use rgb_core::prelude::*;
use rgb_core::topology::{HierarchyLayout, NodeIdx, NodeIndexer};

/// Immutable node→shard arena of one partitioned layout.
#[derive(Debug)]
pub(crate) struct ShardMap {
    /// Number of shards (groups; trailing ones may be empty).
    pub shards: usize,
    /// Global [`NodeIdx`] → owning shard.
    pub shard_of: Vec<u16>,
    /// Global [`NodeIdx`] → index local to the owning shard's arenas.
    pub local_of: Vec<u32>,
    /// Per shard: its nodes as global indices, ascending (local index
    /// order therefore follows global id order).
    pub members: Vec<Vec<NodeIdx>>,
}

impl ShardMap {
    /// Partition `layout` into `shards` groups (see
    /// [`HierarchyLayout::partition_rings`]).
    pub fn new(layout: &HierarchyLayout, indexer: &NodeIndexer, shards: usize) -> Self {
        let groups = layout.partition_rings(shards);
        let mut shard_of = vec![0u16; indexer.len()];
        for (s, rings) in groups.iter().enumerate() {
            for &rid in rings {
                for &node in &layout.ring(rid).expect("partition ring exists").nodes {
                    let idx = indexer.index_of(node).expect("ring node is in layout");
                    shard_of[idx.as_usize()] = s as u16;
                }
            }
        }
        let mut members: Vec<Vec<NodeIdx>> = vec![Vec::new(); shards];
        let mut local_of = vec![0u32; indexer.len()];
        for (idx, _) in indexer.iter() {
            let s = shard_of[idx.as_usize()] as usize;
            local_of[idx.as_usize()] = members[s].len() as u32;
            members[s].push(idx);
        }
        ShardMap { shards, shard_of, local_of, members }
    }

    /// Owning shard of a global index.
    #[inline]
    pub fn shard_of(&self, idx: NodeIdx) -> usize {
        self.shard_of[idx.as_usize()] as usize
    }

    /// Local index of a global index within its owning shard.
    #[inline]
    pub fn local_of(&self, idx: NodeIdx) -> NodeIdx {
        NodeIdx(self.local_of[idx.as_usize()])
    }

    /// Shards that actually own nodes.
    pub fn populated(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }
}

/// The conservative lookahead of a partitioned layout under `net`: the
/// minimum number of ticks any cross-shard frame spends in flight.
///
/// Derived from the [`crate::network::LatencyBand`] floors per link class,
/// restricted to classes that can cross shards under `map`:
///
/// - wide-area always can (any two non-adjacent nodes on different
///   shards);
/// - intra-ring only if the partitioner split a ring (it never does today,
///   but the derivation re-checks rather than assumes);
/// - inter-tier only if some sponsor link crosses shards.
///
/// The wireless class never contributes: the MH→AP hop is resolved at
/// schedule time and routed directly to the proxy's shard. Returns
/// `u64::MAX` when at most one shard is populated — there is no
/// cross-shard traffic to bound, so the whole run is one window.
pub(crate) fn lookahead(
    layout: &HierarchyLayout,
    indexer: &NodeIndexer,
    map: &ShardMap,
    net: &NetConfig,
) -> u64 {
    if map.populated() <= 1 {
        return u64::MAX;
    }
    let shard =
        |node: NodeId| indexer.index_of(node).map(|idx| map.shard_of(idx)).expect("layout node");
    let mut la = net.min_latency(LinkClass::WideArea);
    for ring in &layout.rings {
        let first = shard(ring.nodes[0]);
        if ring.nodes.iter().any(|&n| shard(n) != first) {
            la = la.min(net.min_latency(LinkClass::IntraRing));
        }
        if let Some(parent) = ring.parent_node {
            let ps = shard(parent);
            if ring.nodes.iter().any(|&n| shard(n) != ps) {
                la = la.min(net.min_latency(LinkClass::InterTier));
            }
        }
    }
    la
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LatencyBand;

    fn layout() -> HierarchyLayout {
        HierarchySpec::new(3, 3).build(GroupId(1)).unwrap()
    }

    #[test]
    fn map_round_trips_local_and_global_indices() {
        let layout = layout();
        let indexer = layout.indexer();
        for shards in [1usize, 2, 4, 8] {
            let map = ShardMap::new(&layout, &indexer, shards);
            assert_eq!(map.shards, shards);
            let mut seen = 0usize;
            for (s, members) in map.members.iter().enumerate() {
                for (local, &global) in members.iter().enumerate() {
                    assert_eq!(map.shard_of(global), s);
                    assert_eq!(map.local_of(global), NodeIdx(local as u32));
                    seen += 1;
                }
                // Local order follows global id order.
                assert!(members.windows(2).all(|w| w[0] < w[1]));
            }
            assert_eq!(seen, indexer.len(), "every node owned exactly once");
        }
    }

    #[test]
    fn rings_are_never_split() {
        let layout = layout();
        let indexer = layout.indexer();
        let map = ShardMap::new(&layout, &indexer, 4);
        for ring in &layout.rings {
            let shards: std::collections::BTreeSet<usize> =
                ring.nodes.iter().map(|&n| map.shard_of(indexer.index_of(n).unwrap())).collect();
            assert_eq!(shards.len(), 1, "ring {} split across {shards:?}", ring.id);
        }
    }

    #[test]
    fn lookahead_is_min_cross_shard_band_floor() {
        let layout = layout();
        let indexer = layout.indexer();
        let mut net = NetConfig {
            intra_ring: LatencyBand { min: 2, max: 4 },
            inter_tier: LatencyBand { min: 7, max: 9 },
            wide_area: LatencyBand { min: 12, max: 20 },
            ..NetConfig::default()
        };

        // One shard: no cross traffic, unbounded window.
        let one = ShardMap::new(&layout, &indexer, 1);
        assert_eq!(lookahead(&layout, &indexer, &one, &net), u64::MAX);

        // Multiple shards: rings stay whole, so intra-ring never bounds;
        // sponsor links cross, so the floor is min(inter_tier, wide_area).
        let four = ShardMap::new(&layout, &indexer, 4);
        assert_eq!(lookahead(&layout, &indexer, &four, &net), 7);

        // If the wide-area floor is the smallest it wins.
        net.wide_area = LatencyBand { min: 3, max: 5 };
        assert_eq!(lookahead(&layout, &indexer, &four, &net), 3);

        // Zero floors (instant nets) yield zero lookahead.
        assert_eq!(
            lookahead(&layout, &indexer, &four, &NetConfig::instant()),
            0,
            "instant net has no conservative window"
        );
    }
}
