//! Shard assignment and lookahead derivation for the parallel engine.
//!
//! The node→shard map is a thin arena view over
//! [`HierarchyLayout::partition_rings`]: rings are never split and
//! sponsored subtrees stay contiguous, so the overwhelming share of
//! protocol traffic (intra-ring token rounds, parent–child notifications)
//! never crosses a shard boundary. What *can* cross is what bounds the
//! conservative window, and it is bounded **per ordered shard pair**: the
//! [`LookaheadMatrix`] records, for every `(from, to)`, the minimum
//! latency-band floor over link classes that cross from `from`'s nodes to
//! `to`'s. A tight inter-tier sponsor link then only throttles the two
//! shards it joins; every other pair advances on the (larger) wide-area
//! floor, and a shard nobody can reach runs free to the deadline.

use crate::network::{LinkClass, NetConfig};
use rgb_core::prelude::*;
use rgb_core::topology::{HierarchyLayout, NodeIdx, NodeIndexer};

/// Immutable node→shard arena of one partitioned layout.
#[derive(Debug)]
pub(crate) struct ShardMap {
    /// Number of shards (groups; trailing ones may be empty).
    pub shards: usize,
    /// Global [`NodeIdx`] → owning shard.
    pub shard_of: Vec<u16>,
    /// Global [`NodeIdx`] → index local to the owning shard's arenas.
    pub local_of: Vec<u32>,
    /// Per shard: its nodes as global indices, ascending (local index
    /// order therefore follows global id order).
    pub members: Vec<Vec<NodeIdx>>,
}

impl ShardMap {
    /// Partition `layout` into `shards` groups (see
    /// [`HierarchyLayout::partition_rings`]).
    pub fn new(layout: &HierarchyLayout, indexer: &NodeIndexer, shards: usize) -> Self {
        let groups = layout.partition_rings(shards);
        let mut shard_of = vec![0u16; indexer.len()];
        for (s, rings) in groups.iter().enumerate() {
            for &rid in rings {
                for &node in &layout.ring(rid).expect("partition ring exists").nodes {
                    let idx = indexer.index_of(node).expect("ring node is in layout");
                    shard_of[idx.as_usize()] = s as u16;
                }
            }
        }
        let mut members: Vec<Vec<NodeIdx>> = vec![Vec::new(); shards];
        let mut local_of = vec![0u32; indexer.len()];
        for (idx, _) in indexer.iter() {
            let s = shard_of[idx.as_usize()] as usize;
            local_of[idx.as_usize()] = members[s].len() as u32;
            members[s].push(idx);
        }
        ShardMap { shards, shard_of, local_of, members }
    }

    /// Owning shard of a global index.
    #[inline]
    pub fn shard_of(&self, idx: NodeIdx) -> usize {
        self.shard_of[idx.as_usize()] as usize
    }

    /// Local index of a global index within its owning shard.
    #[inline]
    pub fn local_of(&self, idx: NodeIdx) -> NodeIdx {
        NodeIdx(self.local_of[idx.as_usize()])
    }

    /// Shards that actually own nodes.
    pub fn populated(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }
}

/// Per-ordered-pair conservative lookahead of a partitioned layout under
/// a [`NetConfig`]: `floor(from, to)` is the minimum number of ticks any
/// frame from a node on shard `from` to a node on shard `to` spends in
/// flight.
///
/// Derived from the [`crate::network::LatencyBand`] floors per link class,
/// restricted to classes that can cross that specific pair under `map`:
///
/// - wide-area always can (any two non-adjacent nodes on different
///   shards), so every ordered pair of populated shards starts at the
///   wide-area floor;
/// - intra-ring only if the partitioner split a ring across the pair (it
///   never does today, but the derivation re-checks rather than assumes);
/// - inter-tier only if a sponsor link joins the pair — and it tightens
///   **both** directions (`notify_parent` flows up, `notify_child` and
///   token-triggered acknowledgements flow down).
///
/// The wireless class never contributes: the MH→AP hop is resolved at
/// schedule time and routed directly to the proxy's shard. Pairs that
/// involve an **empty shard** (possible when shards > rings) carry
/// `u64::MAX` — there is no node to send or receive, so nothing bounds
/// the window — and every consumer uses saturating arithmetic so the
/// sentinel never overflows into a bogus horizon.
#[derive(Debug)]
pub(crate) struct LookaheadMatrix {
    shards: usize,
    /// `floors[from * shards + to]`; `u64::MAX` on the diagonal, for
    /// empty-shard pairs, and when fewer than two shards are populated.
    floors: Vec<u64>,
    /// Per destination: `min` over incoming edges (`u64::MAX` when no
    /// populated peer can reach it).
    incoming: Vec<u64>,
    /// `min` over every ordered pair — the old single global floor.
    global: u64,
}

impl LookaheadMatrix {
    /// Derive the matrix for `map` over `layout` under `net`.
    pub fn new(
        layout: &HierarchyLayout,
        indexer: &NodeIndexer,
        map: &ShardMap,
        net: &NetConfig,
    ) -> Self {
        let n = map.shards;
        let mut floors = vec![u64::MAX; n * n];
        let populated: Vec<bool> = map.members.iter().map(|m| !m.is_empty()).collect();
        if map.populated() >= 2 {
            let wide = net.min_latency(LinkClass::WideArea);
            for from in 0..n {
                for to in 0..n {
                    if from != to && populated[from] && populated[to] {
                        floors[from * n + to] = wide;
                    }
                }
            }
            let mut tighten = |a: usize, b: usize, floor: u64| {
                let ab = &mut floors[a * n + b];
                *ab = (*ab).min(floor);
                let ba = &mut floors[b * n + a];
                *ba = (*ba).min(floor);
            };
            let shard = |node: NodeId| {
                indexer.index_of(node).map(|idx| map.shard_of(idx)).expect("layout node")
            };
            for ring in &layout.rings {
                // A split ring (never produced by partition_rings today,
                // re-checked rather than assumed) tightens every pair of
                // shards its members straddle.
                let mut ring_shards: Vec<usize> = ring.nodes.iter().map(|&n| shard(n)).collect();
                ring_shards.sort_unstable();
                ring_shards.dedup();
                for (k, &a) in ring_shards.iter().enumerate() {
                    for &b in &ring_shards[k + 1..] {
                        tighten(a, b, net.min_latency(LinkClass::IntraRing));
                    }
                }
                if let Some(parent) = ring.parent_node {
                    let ps = shard(parent);
                    for &node in &ring.nodes {
                        let s = shard(node);
                        if s != ps {
                            tighten(s, ps, net.min_latency(LinkClass::InterTier));
                        }
                    }
                }
            }
        }
        let incoming: Vec<u64> = (0..n)
            .map(|to| (0..n).map(|from| floors[from * n + to]).min().unwrap_or(u64::MAX))
            .collect();
        let global = incoming.iter().copied().min().unwrap_or(u64::MAX);
        LookaheadMatrix { shards: n, floors, incoming, global }
    }

    /// Minimum in-flight ticks for frames from shard `from` to shard `to`
    /// (`u64::MAX` when no link class can cross that pair).
    #[inline]
    pub fn floor(&self, from: usize, to: usize) -> u64 {
        self.floors[from * self.shards + to]
    }

    /// Minimum over `to`'s incoming edges — the tightest bound any peer
    /// imposes on `to`'s window.
    #[inline]
    pub fn incoming(&self, to: usize) -> u64 {
        self.incoming[to]
    }

    /// The single global floor (minimum over every ordered pair) the
    /// engine used before per-pair windows: `u64::MAX` when at most one
    /// shard is populated (the whole run is one window), 0 when an
    /// instant network admits no conservative window at all (merged
    /// fallback).
    #[inline]
    pub fn global(&self) -> u64 {
        self.global
    }

    /// Largest finite pair floor (equals [`LookaheadMatrix::global`] when
    /// no pair exists) — reported by the benches to show how much
    /// per-pair slack the topology offers over the global floor.
    pub fn max_pair(&self) -> u64 {
        self.floors.iter().copied().filter(|&f| f != u64::MAX).max().unwrap_or(self.global)
    }

    /// The last tick shard `to` may safely process, given a vector of
    /// per-shard clock lower bounds (`clocks[i]` = no event of shard `i`
    /// — pending or future — happens before `clocks[i]`): any future
    /// frame from `i` arrives at `clocks[i] + floor(i, to)` or later, so
    /// `to` may run through that arrival minus one. Saturating throughout
    /// — idle peers and empty shards sit at `u64::MAX` and impose no
    /// bound, leaving `to` free to the deadline.
    pub fn horizon_of(&self, clocks: &[u64], to: usize, deadline: u64) -> u64 {
        if self.incoming(to) == u64::MAX {
            // No populated peer can reach this shard at all: it runs free
            // to the caller's synchronisation horizon.
            return deadline;
        }
        let mut horizon = u64::MAX;
        for (from, &clock) in clocks.iter().enumerate() {
            if from == to {
                continue;
            }
            let floor = self.floor(from, to);
            if floor == u64::MAX {
                continue;
            }
            horizon = horizon.min(clock.saturating_add(floor).saturating_sub(1));
        }
        horizon.min(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LatencyBand;

    fn layout() -> HierarchyLayout {
        HierarchySpec::new(3, 3).build(GroupId(1)).unwrap()
    }

    #[test]
    fn map_round_trips_local_and_global_indices() {
        let layout = layout();
        let indexer = layout.indexer();
        for shards in [1usize, 2, 4, 8] {
            let map = ShardMap::new(&layout, &indexer, shards);
            assert_eq!(map.shards, shards);
            let mut seen = 0usize;
            for (s, members) in map.members.iter().enumerate() {
                for (local, &global) in members.iter().enumerate() {
                    assert_eq!(map.shard_of(global), s);
                    assert_eq!(map.local_of(global), NodeIdx(local as u32));
                    seen += 1;
                }
                // Local order follows global id order.
                assert!(members.windows(2).all(|w| w[0] < w[1]));
            }
            assert_eq!(seen, indexer.len(), "every node owned exactly once");
        }
    }

    #[test]
    fn rings_are_never_split() {
        let layout = layout();
        let indexer = layout.indexer();
        let map = ShardMap::new(&layout, &indexer, 4);
        for ring in &layout.rings {
            let shards: std::collections::BTreeSet<usize> =
                ring.nodes.iter().map(|&n| map.shard_of(indexer.index_of(n).unwrap())).collect();
            assert_eq!(shards.len(), 1, "ring {} split across {shards:?}", ring.id);
        }
    }

    #[test]
    fn global_floor_is_min_cross_shard_band_floor() {
        let layout = layout();
        let indexer = layout.indexer();
        let mut net = NetConfig {
            intra_ring: LatencyBand { min: 2, max: 4 },
            inter_tier: LatencyBand { min: 7, max: 9 },
            wide_area: LatencyBand { min: 12, max: 20 },
            ..NetConfig::default()
        };

        // One shard: no cross traffic, unbounded window.
        let one = ShardMap::new(&layout, &indexer, 1);
        assert_eq!(LookaheadMatrix::new(&layout, &indexer, &one, &net).global(), u64::MAX);

        // Multiple shards: rings stay whole, so intra-ring never bounds;
        // sponsor links cross, so the floor is min(inter_tier, wide_area).
        let four = ShardMap::new(&layout, &indexer, 4);
        assert_eq!(LookaheadMatrix::new(&layout, &indexer, &four, &net).global(), 7);

        // If the wide-area floor is the smallest it wins.
        net.wide_area = LatencyBand { min: 3, max: 5 };
        assert_eq!(LookaheadMatrix::new(&layout, &indexer, &four, &net).global(), 3);

        // Zero floors (instant nets) yield zero lookahead.
        assert_eq!(
            LookaheadMatrix::new(&layout, &indexer, &four, &NetConfig::instant()).global(),
            0,
            "instant net has no conservative window"
        );
    }

    #[test]
    fn pair_floors_distinguish_sponsor_links_from_wide_area() {
        let layout = layout();
        let indexer = layout.indexer();
        let net = NetConfig {
            intra_ring: LatencyBand { min: 2, max: 4 },
            inter_tier: LatencyBand { min: 7, max: 9 },
            wide_area: LatencyBand { min: 12, max: 20 },
            ..NetConfig::default()
        };
        let map = ShardMap::new(&layout, &indexer, 4);
        let la = LookaheadMatrix::new(&layout, &indexer, &map, &net);
        let shard = |node: NodeId| map.shard_of(indexer.index_of(node).unwrap());

        // Every pair crossed by a sponsor link carries the inter-tier
        // floor in both directions; every other populated pair only the
        // wide-area floor.
        let mut sponsored = std::collections::BTreeSet::new();
        for ring in &layout.rings {
            if let Some(parent) = ring.parent_node {
                let ps = shard(parent);
                for &node in &ring.nodes {
                    let s = shard(node);
                    if s != ps {
                        sponsored.insert((s, ps));
                        sponsored.insert((ps, s));
                    }
                }
            }
        }
        assert!(!sponsored.is_empty(), "4-shard split must cross sponsor links");
        let mut wide_pairs = 0;
        for from in 0..4 {
            for to in 0..4 {
                if from == to {
                    assert_eq!(la.floor(from, to), u64::MAX, "diagonal is unbounded");
                } else if sponsored.contains(&(from, to)) {
                    assert_eq!(la.floor(from, to), 7, "sponsor pair ({from},{to})");
                } else {
                    assert_eq!(la.floor(from, to), 12, "wide-area pair ({from},{to})");
                    wide_pairs += 1;
                }
            }
        }
        assert!(wide_pairs > 0, "per-pair lookahead must beat the global floor somewhere");
        assert_eq!(la.max_pair(), 12);
    }

    #[test]
    fn pair_matrix_is_everywhere_at_least_the_global_floor() {
        let layout = layout();
        let indexer = layout.indexer();
        let nets = [
            NetConfig::default(),
            NetConfig {
                intra_ring: LatencyBand { min: 2, max: 4 },
                inter_tier: LatencyBand { min: 7, max: 9 },
                wide_area: LatencyBand { min: 25, max: 80 },
                ..NetConfig::default()
            },
            NetConfig::instant(),
        ];
        for net in &nets {
            for shards in [2usize, 3, 4, 8] {
                let map = ShardMap::new(&layout, &indexer, shards);
                let la = LookaheadMatrix::new(&layout, &indexer, &map, net);
                let global = la.global();
                for from in 0..shards {
                    assert!(la.incoming(from) >= global);
                    for to in 0..shards {
                        assert!(
                            la.floor(from, to) >= global,
                            "floor({from},{to}) below global with {shards} shards"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_shards_never_bound_a_window() {
        // 1 + 3 rings: 8 requested shards leave at least four empty —
        // the "subtree crashed out" shape. Empty shards must carry the
        // u64::MAX sentinel without it leaking into peers' horizons.
        let layout = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
        let indexer = layout.indexer();
        let map = ShardMap::new(&layout, &indexer, 8);
        assert!(map.populated() < 8, "test needs empty shards");
        let la = LookaheadMatrix::new(&layout, &indexer, &map, &NetConfig::default());
        for s in 0..8 {
            if map.members[s].is_empty() {
                assert_eq!(la.incoming(s), u64::MAX, "empty shard {s} has no incoming edges");
                for peer in 0..8 {
                    assert_eq!(la.floor(s, peer), u64::MAX);
                    assert_eq!(la.floor(peer, s), u64::MAX);
                }
            } else {
                assert!(la.incoming(s) < u64::MAX, "populated shard {s} is reachable");
            }
        }
        // Saturating horizon math: clocks parked at u64::MAX (idle or
        // empty peers) must not overflow into a tiny bogus horizon.
        let clocks = vec![u64::MAX; 8];
        for s in 0..8 {
            assert_eq!(la.horizon_of(&clocks, s, 1_000), 1_000);
        }
        // A single live peer bounds a populated shard as usual.
        let (a, b) = {
            let mut populated = (0..8).filter(|&s| !map.members[s].is_empty());
            (populated.next().unwrap(), populated.next().unwrap())
        };
        let mut clocks = vec![u64::MAX; 8];
        clocks[a] = 100;
        assert_eq!(la.horizon_of(&clocks, b, u64::MAX), 100 + la.floor(a, b) - 1);
    }
}
