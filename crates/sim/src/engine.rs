//! The [`Engine`] abstraction: what a scenario runner needs from an
//! execution engine, implemented by both the sequential [`Simulation`]
//! and the sharded-parallel [`ParSimulation`].
//!
//! Everything here is observation-shaped — advance time, read the digest,
//! read counter totals — because that is the whole contract between the
//! engines and their drivers (the explorer's oracle loop, the differential
//! digest tests, the scale benchmarks). The two engines are
//! trace-equivalent (see [`crate::par`]), so a driver written against this
//! trait behaves identically whichever engine it is handed.

use crate::metrics::Metrics;
use crate::par::ParSimulation;
use crate::sim::Simulation;
use rgb_core::prelude::SystemDigest;

/// The counter totals a run trace records at each observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Frames sent so far (lost ones included).
    pub sent_total: u64,
    /// Application events delivered so far.
    pub app_events: u64,
    /// Frames lost to random loss so far.
    pub lost: u64,
    /// Frames swallowed by link partitions so far.
    pub partition_dropped: u64,
}

impl EngineCounters {
    fn of(metrics: &Metrics) -> Self {
        EngineCounters {
            sent_total: metrics.sent_total,
            app_events: metrics.app_events,
            lost: metrics.lost,
            partition_dropped: metrics.partition_dropped,
        }
    }
}

/// A runnable, observable simulation engine.
pub trait Engine {
    /// Current simulated time.
    fn engine_now(&self) -> u64;

    /// Run until simulated time reaches `deadline` (events beyond it stay
    /// queued).
    fn run_until(&mut self, deadline: u64);

    /// Scheduled disruptions still queued (quiescence gating).
    fn pending_disruptions(&self) -> usize;

    /// Queued entries still to drain.
    fn queue_len(&self) -> usize;

    /// Oracle-facing digest of the whole system.
    fn system_digest(&self, settled: bool) -> SystemDigest;

    /// Counter totals for run traces.
    fn counters(&self) -> EngineCounters;

    /// Enable observability latency tracking (no trace retention) — the
    /// per-ring-level histograms behind [`Engine::obs_levels`]. Tracking
    /// never touches node inputs, RNG streams or event keys, so digest
    /// streams are unchanged.
    fn enable_obs_tracking(&mut self);

    /// Merged per-ring-level latency surfaces observed so far (empty
    /// unless tracking was enabled). Identical across engines for the
    /// same run.
    fn obs_levels(&self) -> rgb_core::obs::LevelHistograms;

    /// Run until `deadline`, handing the engine to `observe` every `every`
    /// ticks of simulated time (and once at the deadline). The observer
    /// returns `false` to stop early; the function then returns the stop
    /// time, and `None` when the deadline was reached with every
    /// observation passing.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    fn run_observed<F: FnMut(&Self) -> bool>(
        &mut self,
        deadline: u64,
        every: u64,
        mut observe: F,
    ) -> Option<u64>
    where
        Self: Sized,
    {
        assert!(every > 0, "observation interval must be positive");
        loop {
            let next = self.engine_now().saturating_add(every).min(deadline);
            self.run_until(next);
            if !observe(self) {
                return Some(self.engine_now());
            }
            if self.engine_now() >= deadline {
                return None;
            }
        }
    }
}

impl Engine for Simulation {
    fn engine_now(&self) -> u64 {
        self.now
    }

    fn run_until(&mut self, deadline: u64) {
        Simulation::run_until(self, deadline);
    }

    fn pending_disruptions(&self) -> usize {
        Simulation::pending_disruptions(self)
    }

    fn queue_len(&self) -> usize {
        Simulation::queue_len(self)
    }

    fn system_digest(&self, settled: bool) -> SystemDigest {
        Simulation::system_digest(self, settled)
    }

    fn counters(&self) -> EngineCounters {
        EngineCounters::of(&self.metrics)
    }

    fn enable_obs_tracking(&mut self) {
        Simulation::enable_obs_tracking(self);
    }

    fn obs_levels(&self) -> rgb_core::obs::LevelHistograms {
        self.metrics.levels.clone()
    }
}

impl Engine for ParSimulation {
    fn engine_now(&self) -> u64 {
        ParSimulation::now(self)
    }

    fn run_until(&mut self, deadline: u64) {
        ParSimulation::run_until(self, deadline);
    }

    fn pending_disruptions(&self) -> usize {
        ParSimulation::pending_disruptions(self)
    }

    fn queue_len(&self) -> usize {
        ParSimulation::queue_len(self)
    }

    fn system_digest(&self, settled: bool) -> SystemDigest {
        ParSimulation::system_digest(self, settled)
    }

    fn counters(&self) -> EngineCounters {
        // Summed directly per shard — the full metrics() merge clones
        // every histogram, far too heavy for the per-observation oracle
        // loop.
        self.counter_totals()
    }

    fn enable_obs_tracking(&mut self) {
        ParSimulation::enable_obs_tracking(self);
    }

    fn obs_levels(&self) -> rgb_core::obs::LevelHistograms {
        self.level_latency()
    }
}
