//! Churn workload generation: Poisson join/leave streams and member
//! failures, the "highly dynamic" group behaviour the paper's §3 predicts.

use crate::mobility::TimedEvent;
use crate::rng::SplitMix64;
use rgb_core::prelude::*;
use rgb_core::topology::HierarchyLayout;

/// Parameters of a churn workload.
#[derive(Debug, Clone, Copy)]
pub struct ChurnParams {
    /// Members present at the start.
    pub initial_members: usize,
    /// Mean inter-arrival time of new joins (ticks); `0` disables joins.
    pub mean_join_interval: f64,
    /// Mean lifetime of a member before leaving (ticks); `0` disables
    /// leaves.
    pub mean_lifetime: f64,
    /// Probability a departure is a failure (faulty disconnection) rather
    /// than a voluntary leave.
    pub failure_fraction: f64,
    /// Workload duration (ticks).
    pub duration: u64,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            initial_members: 50,
            mean_join_interval: 100.0,
            mean_lifetime: 2_000.0,
            failure_fraction: 0.2,
            duration: 10_000,
        }
    }
}

/// Generate a time-sorted churn schedule over the APs of `layout`.
pub fn churn(layout: &HierarchyLayout, params: ChurnParams, seed: u64) -> Vec<TimedEvent> {
    let mut rng = SplitMix64::new(seed);
    let aps = layout.aps();
    let mut events: Vec<TimedEvent> = Vec::new();
    let mut next_guid = 0u64;
    let mut luid = 0u64;
    let spawn = |at: u64,
                 rng: &mut SplitMix64,
                 events: &mut Vec<TimedEvent>,
                 next_guid: &mut u64,
                 luid: &mut u64| {
        let guid = Guid(*next_guid);
        *next_guid += 1;
        *luid += 1;
        let ap = *rng.pick(&aps);
        events.push((at, ap, MhEvent::Join { guid, luid: Luid(*luid) }));
        if params.mean_lifetime > 0.0 {
            let leave_at = at as f64 + rng.exponential(params.mean_lifetime).max(1.0);
            if leave_at < params.duration as f64 {
                let ev = if rng.chance(params.failure_fraction) {
                    MhEvent::FailureDetected { guid }
                } else {
                    MhEvent::Leave { guid }
                };
                events.push((leave_at as u64, ap, ev));
            }
        }
    };
    for _ in 0..params.initial_members {
        let at = rng.range(0, 10);
        spawn(at, &mut rng, &mut events, &mut next_guid, &mut luid);
    }
    if params.mean_join_interval > 0.0 {
        let mut t = 0.0f64;
        loop {
            t += rng.exponential(params.mean_join_interval).max(1.0);
            if t >= params.duration as f64 {
                break;
            }
            spawn(t as u64, &mut rng, &mut events, &mut next_guid, &mut luid);
        }
    }
    events.sort_by_key(|&(t, ap, _)| (t, ap));
    events
}

/// Expected final operational membership of a schedule (joins minus
/// departures), for oracle checks.
pub fn expected_members(events: &[TimedEvent]) -> usize {
    use std::collections::BTreeSet;
    let mut present: BTreeSet<Guid> = BTreeSet::new();
    for (_, _, e) in events {
        match e {
            MhEvent::Join { guid, .. }
            | MhEvent::HandoffIn { guid, .. }
            | MhEvent::Resume { guid, .. } => {
                present.insert(*guid);
            }
            MhEvent::Leave { guid }
            | MhEvent::FailureDetected { guid }
            | MhEvent::Disconnect { guid } => {
                present.remove(guid);
            }
        }
    }
    present.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> HierarchyLayout {
        HierarchySpec::new(2, 3).build(GroupId(1)).unwrap()
    }

    #[test]
    fn initial_members_all_join() {
        let params = ChurnParams {
            initial_members: 25,
            mean_join_interval: 0.0,
            mean_lifetime: 0.0,
            failure_fraction: 0.0,
            duration: 100,
        };
        let events = churn(&layout(), params, 1);
        assert_eq!(events.len(), 25);
        assert_eq!(expected_members(&events), 25);
    }

    #[test]
    fn leaves_reduce_expected_membership() {
        let params = ChurnParams {
            initial_members: 30,
            mean_join_interval: 0.0,
            mean_lifetime: 50.0,
            failure_fraction: 0.5,
            duration: 100_000,
        };
        let events = churn(&layout(), params, 2);
        // almost every member departs within the long window
        assert!(expected_members(&events) < 5);
        let failures =
            events.iter().filter(|(_, _, e)| matches!(e, MhEvent::FailureDetected { .. })).count();
        let leaves = events.iter().filter(|(_, _, e)| matches!(e, MhEvent::Leave { .. })).count();
        assert!(failures > 5 && leaves > 5, "both departure kinds present");
    }

    #[test]
    fn continuous_arrivals_follow_rate() {
        let params = ChurnParams {
            initial_members: 0,
            mean_join_interval: 10.0,
            mean_lifetime: 0.0,
            failure_fraction: 0.0,
            duration: 10_000,
        };
        let events = churn(&layout(), params, 3);
        // ≈ duration / mean_interval arrivals
        assert!((700..1300).contains(&events.len()), "got {}", events.len());
    }

    #[test]
    fn schedule_is_sorted_and_guid_unique_per_join() {
        let events = churn(&layout(), ChurnParams::default(), 4);
        for w in events.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        let mut guids: Vec<u64> = events
            .iter()
            .filter_map(|(_, _, e)| match e {
                MhEvent::Join { guid, .. } => Some(guid.0),
                _ => None,
            })
            .collect();
        let before = guids.len();
        guids.sort();
        guids.dedup();
        assert_eq!(guids.len(), before);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = churn(&layout(), ChurnParams::default(), 9);
        let b = churn(&layout(), ChurnParams::default(), 9);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }
}
