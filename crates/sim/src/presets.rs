//! Named production-shaped workload presets — the hand-grown half of the
//! scenario corpus.
//!
//! Where [`crate::explore`] *discovers* scenarios by novelty search, this
//! module *declares* the workload shapes production systems are actually
//! measured against, one constructor per shape, each a pure function of a
//! seed (same seed, same scenario — a corpus artifact is a complete bug
//! report):
//!
//! - [`flash_crowd_join_storm`] — a cold start: a ~10⁵-node three-level
//!   hierarchy hit by a burst of member joins in the first ticks, the
//!   paper's scalability claim exercised as one event storm;
//! - [`diurnal_load_curve`] — a small deployment over one simulated day:
//!   a morning join ramp, midday roaming and queries, an evening drain,
//!   night-time failures;
//! - [`rolling_upgrade_churn`] — an operator walking every ring and
//!   restarting one node per ring in staggered waves, over light
//!   background churn (the "upgrade Tuesday" shape);
//! - [`multi_day_soak`] — a 3·10⁵-tick endurance run with slow continuous
//!   churn, periodic global queries and a bounded delivery log, the
//!   scenario [`MemoryStats`](crate::sim::MemoryStats) bounds are asserted
//!   against.
//!
//! The committed `tests/corpus/*.scn` artifacts are these presets at seed
//! 1 (pinned by `corpus_phase1`); `tests/corpus/README.md` documents the
//! staging. Every preset validates and runs on `Backend::{Sim, Par}` with
//! byte-identical digest streams.

use crate::rng::SplitMix64;
use crate::scenario::Scenario;
use crate::workload::ChurnParams;
use rgb_core::prelude::*;

/// The preset names, in corpus order.
pub const NAMES: [&str; 4] =
    ["flash_crowd_join_storm", "diurnal_load_curve", "rolling_upgrade_churn", "multi_day_soak"];

/// Look up a preset constructor by name.
pub fn by_name(name: &str, seed: u64) -> Option<Scenario> {
    match name {
        "flash_crowd_join_storm" => Some(flash_crowd_join_storm(seed)),
        "diurnal_load_curve" => Some(diurnal_load_curve(seed)),
        "rolling_upgrade_churn" => Some(rolling_upgrade_churn(seed)),
        "multi_day_soak" => Some(multi_day_soak(seed)),
        _ => None,
    }
}

/// Every preset at `seed`, in [`NAMES`] order.
pub fn all(seed: u64) -> Vec<Scenario> {
    NAMES.iter().map(|n| by_name(n, seed).expect("registered preset")).collect()
}

/// A ~10⁵-node cold start: three levels of ring size 46
/// (46·(1+46+46²) = 99 498 NEs) absorb a storm of 1 000 member joins in
/// the first 200 ticks, followed by one global query. Short duration —
/// the point is the join cascade, not steady state. Release-tier: run it
/// through `Backend::Par`.
pub fn flash_crowd_join_storm(seed: u64) -> Scenario {
    let sc = Scenario::new("flash_crowd_join_storm", 3, 46).with_seed(seed).with_duration(600);
    let layout = sc.layout();
    let aps = layout.aps();
    let root = layout.root_ring().nodes[0];
    let mut rng = SplitMix64::new(seed ^ 0x0066_6C61_7368);
    let mut sc = sc;
    for j in 0..1_000u64 {
        let at = rng.range(0, 200);
        let ap = *rng.pick(&aps);
        sc = sc.join(at, ap, Guid(1 + j), Luid(1));
    }
    sc.query(450, root, QueryScope::Global)
}

/// One simulated day on a 30-NE deployment (two levels, ring size 5):
/// a morning ramp of 40 joins, midday cell-to-cell roaming plus hourly
/// global queries, an evening drain of half the members, and a handful of
/// night-time failure detections.
pub fn diurnal_load_curve(seed: u64) -> Scenario {
    const DAY: u64 = 20_000;
    let sc = Scenario::new("diurnal_load_curve", 2, 5).with_seed(seed).with_duration(DAY);
    let layout = sc.layout();
    let aps = layout.aps();
    let root = layout.root_ring().nodes[0];
    let mut rng = SplitMix64::new(seed ^ 0x0064_6975_726E);
    let mut sc = sc;

    // Morning ramp: 40 members join across [0, 5000).
    let members = 40u64;
    let mut home = Vec::new();
    for m in 0..members {
        let at = m * 125;
        let ap = *rng.pick(&aps);
        home.push(ap);
        sc = sc.join(at, ap, Guid(100 + m), Luid(1));
    }

    // Midday: a third of the members roam to a different cell; a global
    // query fires every simulated "hour".
    for m in (0..members).step_by(3) {
        let at = 5_000 + rng.range(0, 7_000);
        let from = home[m as usize];
        let to = aps[(aps.iter().position(|&a| a == from).unwrap() + 1) % aps.len()];
        sc = sc.mh(
            at,
            to,
            MhEvent::HandoffIn { guid: Guid(100 + m), luid: Luid(2), from: Some(from) },
        );
    }
    for hour in 1..=6u64 {
        sc = sc.query(5_000 + hour * 1_200, root, QueryScope::Global);
    }

    // Evening drain: the other members leave across [13000, 16000).
    for m in (1..members).step_by(3).chain((2..members).step_by(3)) {
        let at = 13_000 + rng.range(0, 3_000);
        let ap = home[m as usize];
        sc = sc.mh(at, ap, MhEvent::Leave { guid: Guid(100 + m) });
    }

    // Night: a few of the roamers drop off the network unannounced.
    for m in (0..members).step_by(9) {
        let at = 16_500 + rng.range(0, 2_500);
        let from = home[m as usize];
        let ap = aps[(aps.iter().position(|&a| a == from).unwrap() + 1) % aps.len()];
        sc = sc.mh(at, ap, MhEvent::FailureDetected { guid: Guid(100 + m) });
    }
    sc.query(DAY - 500, root, QueryScope::Global)
}

/// An operator restarting the fleet: a 258-NE three-level hierarchy
/// (ring size 6) where one node per ring crashes in staggered waves —
/// bottom tier first, sponsors last, mimicking a rolling upgrade order —
/// over light background member churn, with a global query after the
/// last wave.
pub fn rolling_upgrade_churn(seed: u64) -> Scenario {
    const DUR: u64 = 8_000;
    let sc = Scenario::new("rolling_upgrade_churn", 3, 6).with_seed(seed).with_duration(DUR);
    let layout = sc.layout();
    let root = layout.root_ring().nodes[0];
    let mut rng = SplitMix64::new(seed ^ 0x7570_6772_6164);
    let mut sc = sc.with_churn(ChurnParams {
        initial_members: 24,
        mean_join_interval: 400.0,
        mean_lifetime: 3_000.0,
        failure_fraction: 0.2,
        duration: DUR,
    });

    // Bottom-up over the rings: deepest level first (leaf restarts are
    // routine; sponsor restarts — which orphan a subtree until repair —
    // come last, exactly as an operator would order them).
    let mut rings: Vec<_> = layout.rings.iter().collect();
    rings.sort_by_key(|r| std::cmp::Reverse(r.level));
    let step = 5_000 / rings.len() as u64;
    for (i, ring) in rings.iter().enumerate() {
        let victim = ring.nodes[rng.range(0, ring.nodes.len() as u64) as usize];
        let at = 500 + i as u64 * step + rng.range(0, step.max(2) / 2);
        sc = sc.crash(at, victim);
    }
    sc.query(6_500, root, QueryScope::Global).query(7_600, root, QueryScope::Global)
}

/// A 3·10⁵-tick endurance run on a 20-NE deployment: slow continuous
/// churn (members live ~20 000 ticks), a global query every 50 000 ticks,
/// and a delivery log capped at 256 events per node — the preset the
/// [`MemoryStats`](crate::sim::MemoryStats) bound tests run against, so
/// long-lived simulations prove their footprint stays proportional to
/// live state, not elapsed time.
pub fn multi_day_soak(seed: u64) -> Scenario {
    const DUR: u64 = 300_000;
    let sc = Scenario::new("multi_day_soak", 2, 4)
        .with_seed(seed)
        .with_duration(DUR)
        .with_delivered_cap(256)
        .with_churn(ChurnParams {
            initial_members: 8,
            mean_join_interval: 2_000.0,
            mean_lifetime: 20_000.0,
            failure_fraction: 0.15,
            duration: DUR,
        });
    let root = sc.layout().root_ring().nodes[0];
    let mut sc = sc;
    for q in 1..=5u64 {
        sc = sc.query(q * 50_000, root, QueryScope::Global);
    }
    sc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_deterministic_and_validate() {
        for name in NAMES {
            let a = by_name(name, 1).unwrap();
            let b = by_name(name, 1).unwrap();
            assert_eq!(a, b, "{name} must be a pure function of its seed");
            assert_eq!(a.name, name);
            a.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_ne!(by_name(name, 2).unwrap(), a, "{name} must vary with the seed");
        }
        assert_eq!(all(1).len(), NAMES.len());
        assert!(by_name("unknown", 1).is_none());
    }

    #[test]
    fn preset_shapes_match_their_claims() {
        let flash = flash_crowd_join_storm(1);
        assert_eq!(flash.layout().node_count(), 99_498, "≈10⁵-node cold start");
        assert_eq!(flash.mh_schedule.len(), 1_000);

        let day = diurnal_load_curve(1);
        assert_eq!(day.layout().node_count(), 30);
        assert!(day.mh_schedule.iter().any(|(_, _, e)| matches!(e, MhEvent::HandoffIn { .. })));
        assert!(day.mh_schedule.iter().any(|(_, _, e)| matches!(e, MhEvent::Leave { .. })));
        assert!(day
            .mh_schedule
            .iter()
            .any(|(_, _, e)| matches!(e, MhEvent::FailureDetected { .. })));
        assert!(day.queries.len() >= 7);

        let upgrade = rolling_upgrade_churn(1);
        let rings = upgrade.layout().ring_count();
        assert_eq!(upgrade.crashes.len(), rings, "one restart per ring");
        // Bottom-up: the first wave hits the deepest level, the last hits
        // the root ring.
        let layout = upgrade.layout();
        let mut crashes = upgrade.crashes.clone();
        crashes.sort_by_key(|c| c.at);
        let first_level = layout.placement(crashes.first().unwrap().node).unwrap().level;
        let last_level = layout.placement(crashes.last().unwrap().node).unwrap().level;
        assert!(first_level > last_level, "upgrade order must be bottom-up");

        let soak = multi_day_soak(1);
        assert_eq!(soak.duration, 300_000);
        assert_eq!(soak.delivered_cap, Some(256));
        assert!(!soak.mh_schedule.is_empty(), "soak carries continuous churn");
    }
}
