//! The simulator's event queue: a bucketed **timer wheel** for near-future
//! occurrences in front of a `BinaryHeap` fallback for events beyond the
//! wheel horizon.
//!
//! Every queued occurrence carries a **deterministic content-derived
//! [`EventKey`]** — `(class, creator, creator-sequence)` — and the queue
//! pops in strict `(at, key)` order **regardless of which container holds
//! the entry**. The key is assigned from the event's *provenance* (which
//! node created it, as that node's how-many-th emission), not from global
//! push order, so two executions that interleave nodes differently — the
//! sequential engine and the sharded-parallel engine of [`crate::par`] —
//! assign identical keys to identical events and therefore drain them in
//! an identical global order. The wheel is purely an optimisation:
//! scheduling a near-future event costs an O(log bucket) sorted insert
//! instead of an O(log n) sift of a large `Event` struct, and superseded
//! timer entries drain as the wheel turns instead of accumulating in the
//! heap. The [`QueueKind::BinaryHeap`] mode keeps the plain-heap ordering
//! semantics alive as a *reference implementation*; the engine-determinism
//! tests run both modes on identical scenarios and assert byte-identical
//! traces.
//!
//! ## Far-horizon arithmetic
//!
//! Timestamps are plain `u64` ticks and scenarios may legitimately
//! schedule sentinels near `u64::MAX` (e.g. "practically never" timers).
//! Admission (`at - now < WHEEL_SLOTS`), the wheel scan bound and the
//! cursor arithmetic therefore avoid `now + WHEEL_SLOTS` style sums that
//! could wrap: far events fall back to the heap, and the scan bound
//! saturates. A regression test drains events parked at `u64::MAX`.

use bytes::Bytes;
use rgb_core::prelude::*;
use rgb_core::topology::NodeIdx;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the wheel size: the wheel covers `[now, now + 1024)` ticks,
/// comfortably beyond every default latency band and protocol timeout.
const WHEEL_BITS: u32 = 10;
/// Number of wheel buckets.
const WHEEL_SLOTS: u64 = 1 << WHEEL_BITS;

/// Which event-queue implementation a `Simulation` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Timer wheel + far-event heap (the default, fast path).
    #[default]
    TimerWheel,
    /// Pure binary heap — the reference ordering semantics, kept for
    /// differential determinism tests.
    BinaryHeap,
}

/// One generation-stamped live timer of a node. The queue may hold many
/// entries for the same `(node, kind)`; only the one whose generation
/// matches the slot fires. Shared by the sequential engine and every
/// shard of the parallel engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimerSlot {
    pub kind: TimerKind,
    pub gen: u64,
}

/// Deterministic same-tick tiebreaker of one queued occurrence.
///
/// Keys order lexicographically as `(cls, src, seq)`:
///
/// - `cls` 0 marks **scheduled** events (the scenario's crashes, queries,
///   partition transitions and pre-resolved wireless deliveries), with
///   `seq` the schedule counter — so same-tick scheduled events resolve in
///   schedule order, before any same-tick protocol traffic;
/// - `cls` 1 marks **runtime-created** events (frames, timers), with `src`
///   the creating node's dense index and `seq` that node's emission
///   counter.
///
/// Because every component derives from the event's provenance — not from
/// when some engine happened to push it — the key is identical across the
/// sequential and the sharded-parallel engine, which is the foundation of
/// their trace equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    /// 0 = scheduled, 1 = runtime-created.
    pub cls: u8,
    /// Creating node's dense index (scheduled events: 0; runtime events
    /// from outside the layout: `u32::MAX`).
    pub src: u32,
    /// Schedule counter (`cls` 0) or per-creator emission counter.
    pub seq: u64,
}

impl EventKey {
    /// Key of the `seq`-th scheduled event.
    pub fn scheduled(seq: u64) -> Self {
        EventKey { cls: 0, src: 0, seq }
    }

    /// Key of the `seq`-th emission of node `src`.
    pub fn emitted(src: u32, seq: u64) -> Self {
        EventKey { cls: 1, src, seq }
    }
}

/// One scheduled occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Event {
    pub at: u64,
    pub key: EventKey,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// An encoded [`Envelope`] frame in flight between two NEs. `to` is
    /// `None` when the destination is outside the layout (the frame is
    /// still decoded and counted on arrival, like the live runtime's
    /// receive path for unroutable destinations). In the sharded engine
    /// `to` is the destination's index *local to the owning shard*.
    Deliver {
        from: NodeId,
        to: Option<NodeIdx>,
        frame: Bytes,
    },
    /// A timer expiry; `gen` is the generation stamp assigned at arm time —
    /// a mismatch against the node's live slot marks a superseded entry.
    Timer {
        node: NodeIdx,
        kind: TimerKind,
        gen: u64,
    },
    /// An encoded [`Msg::FromMh`] frame crossing the wireless hop. The
    /// hop's loss, latency and per-MH FIFO floor are resolved at schedule
    /// time (they depend only on the schedule and the per-MH random
    /// stream), so the queue only ever sees the resolved delivery.
    MhDeliver {
        ap: NodeId,
        frame: Bytes,
    },
    Crash {
        node: NodeId,
    },
    QueryStart {
        node: NodeId,
        scope: QueryScope,
    },
    /// A scheduled link partition between one NE pair becomes active.
    PartitionStart {
        a: NodeId,
        b: NodeId,
    },
    /// A scheduled link partition heals.
    PartitionHeal {
        a: NodeId,
        b: NodeId,
    },
}

impl EventKind {
    /// Whether this occurrence is a *scheduled disruption* — an injected
    /// scenario event (mobile-host traffic, crash, query, partition
    /// transition) rather than ordinary protocol traffic or a timer. The
    /// queue counts pending disruptions so observers can gate
    /// quiescence-sensitive invariant checks in O(1).
    pub(crate) fn is_disruption(&self) -> bool {
        matches!(
            self,
            EventKind::MhDeliver { .. }
                | EventKind::Crash { .. }
                | EventKind::QueryStart { .. }
                | EventKind::PartitionStart { .. }
                | EventKind::PartitionHeal { .. }
        )
    }
}

/// One wheel bucket: the pending entries of a single tick.
///
/// Entries arrive in push order and are sorted by [`EventKey`] **lazily**,
/// the first time the scan reaches the bucket's tick — almost every push
/// happens before its tick becomes current, so the common push is an O(1)
/// append and the per-tick sort runs once. Entries created *while* their
/// own tick is being drained (zero-latency cascades) hit the already-
/// sorted bucket and insert at their key's position.
#[derive(Debug, Default)]
struct Bucket {
    entries: VecDeque<Event>,
    /// The tick this bucket is currently sorted for (`None` = unsorted).
    sorted_for: Option<u64>,
}

/// The bucketed near-future event store.
#[derive(Debug)]
struct Wheel {
    /// `buckets[at & (WHEEL_SLOTS-1)]` holds every pending entry for tick
    /// `at`. All live entries of one bucket share the same `at`: ticks a
    /// full rotation apart cannot coexist because an entry is admitted
    /// only within `now + WHEEL_SLOTS` and drained before `now` passes it.
    buckets: Vec<Bucket>,
    len: usize,
    /// Monotone lower bound on the earliest entry's `at` (scan cursor).
    hint: u64,
}

impl Wheel {
    fn new() -> Self {
        Wheel { buckets: (0..WHEEL_SLOTS).map(|_| Bucket::default()).collect(), len: 0, hint: 0 }
    }

    #[inline]
    fn bucket_of(at: u64) -> usize {
        (at & (WHEEL_SLOTS - 1)) as usize
    }

    #[inline]
    fn push(&mut self, event: Event) {
        if event.at < self.hint {
            self.hint = event.at;
        }
        let bucket = &mut self.buckets[Self::bucket_of(event.at)];
        if bucket.entries.is_empty() {
            bucket.sorted_for = None;
            bucket.entries.push_back(event);
        } else if bucket.sorted_for == Some(event.at) {
            // The bucket's tick is being drained right now: keep it in key
            // order so same-tick cascades still pop deterministically.
            let pos = bucket.entries.partition_point(|e| e.key < event.key);
            bucket.entries.insert(pos, event);
        } else {
            bucket.entries.push_back(event);
        }
        self.len += 1;
    }

    /// Earliest `(at, key)` across the wheel, or `None` when empty.
    ///
    /// All entries satisfy `now <= at < now + WHEEL_SLOTS` (earlier ones
    /// were popped before `now` could advance past them; later ones are
    /// rejected at push time), so the scan from `max(hint, now)` visits at
    /// most `WHEEL_SLOTS` buckets, and the amortised cost is O(1) per
    /// event because the cursor only ever moves forward between pushes.
    fn min_entry(&mut self, now: u64) -> Option<(u64, EventKey)> {
        if self.len == 0 {
            return None;
        }
        let mut t = self.hint.max(now);
        loop {
            let bucket = &mut self.buckets[Self::bucket_of(t)];
            if let Some(front) = bucket.entries.front() {
                if front.at == t {
                    if bucket.sorted_for != Some(t) {
                        bucket.entries.make_contiguous().sort_unstable_by_key(|e| e.key);
                        bucket.sorted_for = Some(t);
                    }
                    self.hint = t;
                    return Some((t, bucket.entries.front().expect("non-empty").key));
                }
                debug_assert!(front.at > t, "wheel bucket holds an entry in the past");
            }
            debug_assert!(t < u64::MAX, "wheel scan ran past u64::MAX with entries pending");
            t += 1;
            debug_assert!(
                t <= now.saturating_add(WHEEL_SLOTS),
                "wheel scan overran the horizon with {} entries pending",
                self.len
            );
        }
    }

    /// Pop the front entry of the bucket for tick `at` (which
    /// [`Wheel::min_entry`] just identified and sorted).
    fn pop_at(&mut self, at: u64) -> Event {
        let bucket = &mut self.buckets[Self::bucket_of(at)];
        let event = bucket.entries.pop_front().expect("min_entry found this bucket");
        debug_assert_eq!(event.at, at);
        if bucket.entries.is_empty() {
            bucket.sorted_for = None;
        }
        self.len -= 1;
        event
    }
}

/// The merged event queue (see module docs).
#[derive(Debug)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    wheel: Option<Wheel>,
    peak_len: usize,
    /// Queued entries whose kind [`EventKind::is_disruption`].
    disruptions: usize,
}

impl EventQueue {
    pub fn new(kind: QueueKind) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            wheel: (kind == QueueKind::TimerWheel).then(Wheel::new),
            peak_len: 0,
            disruptions: 0,
        }
    }

    /// Queued entries (superseded timer entries included, exactly what the
    /// engine still has to drain).
    pub fn len(&self) -> usize {
        self.heap.len() + self.wheel.as_ref().map_or(0, |w| w.len)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of [`EventQueue::len`] since construction.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Pending scheduled disruptions (see [`EventKind::is_disruption`]).
    pub fn disruptions(&self) -> usize {
        self.disruptions
    }

    /// Queue an occurrence: near-future ones go to the wheel, far ones (or
    /// every one in [`QueueKind::BinaryHeap`] mode) to the heap. The
    /// `at - now < WHEEL_SLOTS` admission keeps the difference well-formed
    /// for timestamps up to and including `u64::MAX`.
    #[inline]
    pub fn push(&mut self, now: u64, at: u64, key: EventKey, kind: EventKind) {
        debug_assert!(at >= now);
        if kind.is_disruption() {
            self.disruptions += 1;
        }
        let event = Event { at, key, kind };
        match &mut self.wheel {
            Some(wheel) if at - now < WHEEL_SLOTS => wheel.push(event),
            _ => self.heap.push(Reverse(event)),
        }
        let len = self.len();
        if len > self.peak_len {
            self.peak_len = len;
        }
    }

    /// Timestamp of the next entry in `(at, key)` order.
    pub fn peek_at(&mut self, now: u64) -> Option<u64> {
        self.peek_entry(now).map(|(at, _)| at)
    }

    /// `(at, key)` of the next entry — what the parallel engine's merged
    /// driver compares across shard queues to pop the global minimum.
    pub fn peek_entry(&mut self, now: u64) -> Option<(u64, EventKey)> {
        let heap_key = self.heap.peek().map(|Reverse(ev)| (ev.at, ev.key));
        let wheel_key = self.wheel.as_mut().and_then(|w| w.min_entry(now));
        match (heap_key, wheel_key) {
            (Some(h), Some(w)) => Some(h.min(w)),
            (h, w) => h.or(w),
        }
    }

    /// Pop the next entry in strict global `(at, key)` order.
    pub fn pop(&mut self, now: u64) -> Option<Event> {
        let heap_key = self.heap.peek().map(|Reverse(ev)| (ev.at, ev.key));
        let wheel_key = self.wheel.as_mut().and_then(|w| w.min_entry(now));
        let take_wheel = match (heap_key, wheel_key) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(h), Some(w)) => w < h,
        };
        let event = if take_wheel {
            let (at, _) = wheel_key.expect("wheel key present");
            self.wheel.as_mut().expect("wheel mode").pop_at(at)
        } else {
            self.heap.pop().map(|Reverse(ev)| ev)?
        };
        if event.kind.is_disruption() {
            self.disruptions -= 1;
        }
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(node: u64) -> EventKind {
        EventKind::Crash { node: NodeId(node) }
    }

    fn timer(node: u32, gen: u64) -> EventKind {
        EventKind::Timer { node: NodeIdx(node), kind: TimerKind::Heartbeat, gen }
    }

    /// Drain a queue to `(at, key)` pairs, advancing `now` like the engine.
    fn drain(q: &mut EventQueue) -> Vec<(u64, EventKey)> {
        let mut now = 0;
        let mut out = Vec::new();
        while let Some(ev) = q.pop(now) {
            now = now.max(ev.at);
            out.push((ev.at, ev.key));
        }
        out
    }

    #[test]
    fn wheel_and_heap_agree_on_global_order() {
        // Interleave timers and non-timers with colliding timestamps and
        // out-of-order keys; both modes must pop the identical (at, key)
        // stream.
        let mut orders = Vec::new();
        for kind in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            for i in 0..200u64 {
                let at = (i * 7) % 50;
                if i % 3 == 0 {
                    q.push(0, at, EventKey::scheduled(i), crash(i));
                } else {
                    // Descending src within a tick: key order != push order.
                    q.push(0, at, EventKey::emitted(200 - i as u32, i % 5), timer(i as u32, i));
                }
            }
            orders.push(drain(&mut q));
        }
        assert_eq!(orders[0], orders[1]);
        // (at, key) must be sorted, scheduled before runtime at each tick.
        let mut sorted = orders[0].clone();
        sorted.sort_unstable();
        assert_eq!(orders[0], sorted);
    }

    #[test]
    fn same_tick_entries_pop_in_key_order_not_push_order() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        q.push(0, 5, EventKey::emitted(9, 0), timer(9, 1));
        q.push(0, 5, EventKey::emitted(2, 3), timer(2, 1));
        q.push(0, 5, EventKey::scheduled(0), crash(1));
        q.push(0, 5, EventKey::emitted(2, 1), timer(2, 2));
        let order = drain(&mut q);
        assert_eq!(
            order,
            vec![
                (5, EventKey::scheduled(0)),
                (5, EventKey::emitted(2, 1)),
                (5, EventKey::emitted(2, 3)),
                (5, EventKey::emitted(9, 0)),
            ]
        );
    }

    #[test]
    fn far_events_fall_back_to_the_heap_and_still_order() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        // Far beyond the wheel horizon.
        q.push(0, WHEEL_SLOTS * 3, EventKey::emitted(0, 1), timer(0, 1));
        // Near event.
        q.push(0, 5, EventKey::emitted(1, 2), timer(1, 2));
        q.push(0, WHEEL_SLOTS * 3, EventKey::scheduled(9), crash(9));
        let order = drain(&mut q);
        assert_eq!(
            order,
            vec![
                (5, EventKey::emitted(1, 2)),
                (WHEEL_SLOTS * 3, EventKey::scheduled(9)),
                (WHEEL_SLOTS * 3, EventKey::emitted(0, 1)),
            ]
        );
    }

    #[test]
    fn extreme_timestamps_near_u64_max_do_not_overflow() {
        // Regression for the far-event fallback audit: sentinels at and
        // around u64::MAX must be admitted (to the heap), ordered and
        // drained without any wrapping `now + WHEEL_SLOTS` arithmetic —
        // including once `now` itself has advanced into the last wheel
        // rotation before u64::MAX.
        for kind in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            q.push(0, u64::MAX, EventKey::scheduled(0), crash(1));
            q.push(0, u64::MAX - 1, EventKey::emitted(3, 0), timer(3, 1));
            q.push(0, 7, EventKey::emitted(1, 0), timer(1, 1));
            q.push(0, u64::MAX, EventKey::emitted(2, 5), timer(2, 2));
            let mut now = 0;
            let mut seen = Vec::new();
            while let Some(ev) = q.pop(now) {
                now = now.max(ev.at);
                // Once `now` sits one tick below u64::MAX, push an entry at
                // u64::MAX itself: in wheel mode this is admitted *into the
                // wheel* (at - now = 1), so the bucket scan and its horizon
                // bound run at the very top of the tick range.
                if ev.at == u64::MAX - 1 {
                    q.push(now, u64::MAX, EventKey::emitted(7, 0), timer(7, 1));
                }
                seen.push((ev.at, ev.key));
            }
            assert_eq!(
                seen,
                vec![
                    (7, EventKey::emitted(1, 0)),
                    (u64::MAX - 1, EventKey::emitted(3, 0)),
                    (u64::MAX, EventKey::scheduled(0)),
                    (u64::MAX, EventKey::emitted(2, 5)),
                    (u64::MAX, EventKey::emitted(7, 0)),
                ],
                "mode {kind:?}"
            );
            assert!(q.is_empty());
        }
    }

    #[test]
    fn wheel_reuses_buckets_across_windows() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        let mut now = 0;
        let mut popped = Vec::new();
        // March time across several full wheel rotations, always keeping
        // the push inside the horizon.
        for round in 0..5u64 {
            let at = now + (round * 37) % WHEEL_SLOTS;
            q.push(now, at, EventKey::emitted(0, round), timer(0, round));
            let ev = q.pop(now).expect("entry queued");
            now = now.max(ev.at);
            popped.push(ev.at);
        }
        assert_eq!(popped.len(), 5);
        assert!(popped.windows(2).all(|w| w[0] <= w[1]));
        assert!(q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        for i in 0..10u64 {
            q.push(0, i, EventKey::emitted(0, i), timer(0, i));
        }
        assert_eq!(q.peak_len(), 10);
        let _ = drain(&mut q);
        assert_eq!(q.peak_len(), 10, "peak survives draining");
    }

    #[test]
    fn disruption_counter_tracks_scheduled_events() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        assert_eq!(q.disruptions(), 0);
        q.push(0, 5, EventKey::emitted(0, 0), timer(0, 1)); // not a disruption
        q.push(0, 3, EventKey::scheduled(0), crash(1));
        q.push(0, WHEEL_SLOTS * 2, EventKey::scheduled(1), crash(2)); // heap-side disruption
        q.push(
            0,
            4,
            EventKey::scheduled(2),
            EventKind::PartitionStart { a: NodeId(1), b: NodeId(2) },
        );
        assert_eq!(q.disruptions(), 3);
        let mut now = 0;
        while let Some(ev) = q.pop(now) {
            now = now.max(ev.at);
        }
        assert_eq!(q.disruptions(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        for kind in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            for i in 0..64u64 {
                q.push(0, (i * 13) % 40, EventKey::emitted((i % 7) as u32, i), timer(0, i));
                q.push(0, (i * 5) % 40, EventKey::scheduled(i), crash(i));
            }
            let mut now = 0;
            while let Some(at) = q.peek_at(now) {
                let ev = q.pop(now).expect("peeked entry pops");
                assert_eq!(ev.at, at);
                now = now.max(ev.at);
            }
            assert!(q.is_empty());
        }
    }
}
