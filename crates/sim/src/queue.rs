//! The simulator's event queue: a bucketed **timer wheel** for near-future
//! occurrences in front of a `BinaryHeap` fallback for events beyond the
//! wheel horizon.
//!
//! Every queued occurrence carries a global sequence number and the queue
//! pops in strict `(at, seq)` order **regardless of which container holds
//! the entry**, so the wheel is purely an optimisation: scheduling a
//! near-future event (a frame delivery a few ticks out, a re-armed
//! heartbeat) costs an O(1) bucket append instead of an O(log n) sift of a
//! large `Event` struct, and superseded timer entries drain as the wheel
//! turns instead of accumulating in the heap. The
//! [`QueueKind::BinaryHeap`] mode keeps the plain-heap ordering semantics
//! alive as a *reference implementation*; the engine-determinism tests run
//! both modes on identical scenarios and assert byte-identical traces.

use bytes::Bytes;
use rgb_core::prelude::*;
use rgb_core::topology::NodeIdx;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the wheel size: the wheel covers `[now, now + 1024)` ticks,
/// comfortably beyond every default latency band and protocol timeout.
const WHEEL_BITS: u32 = 10;
/// Number of wheel buckets.
const WHEEL_SLOTS: u64 = 1 << WHEEL_BITS;

/// Which event-queue implementation a `Simulation` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Timer wheel + far-event heap (the default, fast path).
    #[default]
    TimerWheel,
    /// Pure binary heap — the reference ordering semantics, kept for
    /// differential determinism tests.
    BinaryHeap,
}

/// One scheduled occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Event {
    pub at: u64,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// An encoded [`Envelope`] frame in flight between two NEs. `to` is
    /// `None` when the destination is outside the layout (the frame is
    /// still decoded and counted on arrival, like the live runtime's
    /// receive path for unroutable destinations).
    Deliver {
        from: NodeId,
        to: Option<NodeIdx>,
        frame: Bytes,
    },
    /// A timer expiry; `gen` is the generation stamp assigned at arm time —
    /// a mismatch against the node's live slot marks a superseded entry.
    Timer {
        node: NodeIdx,
        kind: TimerKind,
        gen: u64,
    },
    MhSend {
        ap: NodeId,
        event: MhEvent,
    },
    /// An encoded [`Msg::FromMh`] frame crossing the wireless hop.
    MhDeliver {
        ap: NodeId,
        frame: Bytes,
    },
    Crash {
        node: NodeId,
    },
    QueryStart {
        node: NodeId,
        scope: QueryScope,
    },
    /// A scheduled link partition between one NE pair becomes active.
    PartitionStart {
        a: NodeId,
        b: NodeId,
    },
    /// A scheduled link partition heals.
    PartitionHeal {
        a: NodeId,
        b: NodeId,
    },
}

impl EventKind {
    /// Whether this occurrence is a *scheduled disruption* — an injected
    /// scenario event (mobile-host traffic, crash, query, partition
    /// transition) rather than ordinary protocol traffic or a timer. The
    /// queue counts pending disruptions so observers can gate
    /// quiescence-sensitive invariant checks in O(1).
    pub(crate) fn is_disruption(&self) -> bool {
        matches!(
            self,
            EventKind::MhSend { .. }
                | EventKind::MhDeliver { .. }
                | EventKind::Crash { .. }
                | EventKind::QueryStart { .. }
                | EventKind::PartitionStart { .. }
                | EventKind::PartitionHeal { .. }
        )
    }
}

/// The bucketed near-future event store.
#[derive(Debug)]
struct Wheel {
    /// `buckets[at & (WHEEL_SLOTS-1)]` holds every pending entry for tick
    /// `at`; within a bucket entries are in push order, i.e. ascending
    /// `seq`, so the bucket front is always the next candidate. All live
    /// entries of one bucket share the same `at`: ticks a full rotation
    /// apart cannot coexist because an entry is admitted only within
    /// `now + WHEEL_SLOTS` and drained before `now` passes it.
    buckets: Vec<VecDeque<Event>>,
    len: usize,
    /// Monotone lower bound on the earliest entry's `at` (scan cursor).
    hint: u64,
}

impl Wheel {
    fn new() -> Self {
        Wheel { buckets: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(), len: 0, hint: 0 }
    }

    #[inline]
    fn bucket_of(at: u64) -> usize {
        (at & (WHEEL_SLOTS - 1)) as usize
    }

    #[inline]
    fn push(&mut self, event: Event) {
        if event.at < self.hint {
            self.hint = event.at;
        }
        self.buckets[Self::bucket_of(event.at)].push_back(event);
        self.len += 1;
    }

    /// Earliest `(at, seq)` across the wheel, or `None` when empty.
    ///
    /// All entries satisfy `now <= at < now + WHEEL_SLOTS` (earlier ones
    /// were popped before `now` could advance past them; later ones are
    /// rejected at push time), so the scan from `max(hint, now)` visits at
    /// most `WHEEL_SLOTS` buckets, and the amortised cost is O(1) per
    /// event because the cursor only ever moves forward between pushes.
    fn min_entry(&mut self, now: u64) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        let mut t = self.hint.max(now);
        loop {
            if let Some(front) = self.buckets[Self::bucket_of(t)].front() {
                if front.at == t {
                    self.hint = t;
                    return Some((t, front.seq));
                }
                debug_assert!(front.at > t, "wheel bucket holds an entry in the past");
            }
            t += 1;
            debug_assert!(
                t <= now + WHEEL_SLOTS,
                "wheel scan overran the horizon with {} entries pending",
                self.len
            );
        }
    }

    /// Pop the front entry of the bucket for tick `at` (which
    /// [`Wheel::min_entry`] just identified).
    fn pop_at(&mut self, at: u64) -> Event {
        let event =
            self.buckets[Self::bucket_of(at)].pop_front().expect("min_entry found this bucket");
        debug_assert_eq!(event.at, at);
        self.len -= 1;
        event
    }
}

/// The merged event queue (see module docs).
#[derive(Debug)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    wheel: Option<Wheel>,
    next_seq: u64,
    peak_len: usize,
    /// Queued entries whose kind [`EventKind::is_disruption`].
    disruptions: usize,
}

impl EventQueue {
    pub fn new(kind: QueueKind) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            wheel: (kind == QueueKind::TimerWheel).then(Wheel::new),
            next_seq: 0,
            peak_len: 0,
            disruptions: 0,
        }
    }

    /// Queued entries (superseded timer entries included, exactly what the
    /// engine still has to drain).
    pub fn len(&self) -> usize {
        self.heap.len() + self.wheel.as_ref().map_or(0, |w| w.len)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of [`EventQueue::len`] since construction.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Pending scheduled disruptions (see [`EventKind::is_disruption`]).
    pub fn disruptions(&self) -> usize {
        self.disruptions
    }

    /// Queue an occurrence: near-future ones go to the wheel, far ones (or
    /// every one in [`QueueKind::BinaryHeap`] mode) to the heap.
    #[inline]
    pub fn push(&mut self, now: u64, at: u64, kind: EventKind) {
        debug_assert!(at >= now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if kind.is_disruption() {
            self.disruptions += 1;
        }
        let event = Event { at, seq, kind };
        match &mut self.wheel {
            Some(wheel) if at - now < WHEEL_SLOTS => wheel.push(event),
            _ => self.heap.push(Reverse(event)),
        }
        let len = self.len();
        if len > self.peak_len {
            self.peak_len = len;
        }
    }

    /// Timestamp of the next entry in `(at, seq)` order.
    pub fn peek_at(&mut self, now: u64) -> Option<u64> {
        let heap_at = self.heap.peek().map(|Reverse(ev)| ev.at);
        let wheel_at = self.wheel.as_mut().and_then(|w| w.min_entry(now)).map(|(at, _)| at);
        match (heap_at, wheel_at) {
            (Some(h), Some(w)) => Some(h.min(w)),
            (h, w) => h.or(w),
        }
    }

    /// Pop the next entry in strict global `(at, seq)` order.
    pub fn pop(&mut self, now: u64) -> Option<Event> {
        let heap_key = self.heap.peek().map(|Reverse(ev)| (ev.at, ev.seq));
        let wheel_key = self.wheel.as_mut().and_then(|w| w.min_entry(now));
        let take_wheel = match (heap_key, wheel_key) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(h), Some(w)) => w < h,
        };
        let event = if take_wheel {
            let (at, _) = wheel_key.expect("wheel key present");
            self.wheel.as_mut().expect("wheel mode").pop_at(at)
        } else {
            self.heap.pop().map(|Reverse(ev)| ev)?
        };
        if event.kind.is_disruption() {
            self.disruptions -= 1;
        }
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(node: u64) -> EventKind {
        EventKind::Crash { node: NodeId(node) }
    }

    fn timer(node: u32, gen: u64) -> EventKind {
        EventKind::Timer { node: NodeIdx(node), kind: TimerKind::Heartbeat, gen }
    }

    /// Drain a queue to `(at, seq)` pairs, advancing `now` like the engine.
    fn drain(q: &mut EventQueue) -> Vec<(u64, u64)> {
        let mut now = 0;
        let mut out = Vec::new();
        while let Some(ev) = q.pop(now) {
            now = now.max(ev.at);
            out.push((ev.at, ev.seq));
        }
        out
    }

    #[test]
    fn wheel_and_heap_agree_on_global_order() {
        // Interleave timers and non-timers with colliding timestamps; both
        // modes must pop the identical (at, seq) stream.
        let mut orders = Vec::new();
        for kind in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            for i in 0..200u64 {
                let at = (i * 7) % 50;
                if i % 3 == 0 {
                    q.push(0, at, crash(i));
                } else {
                    q.push(0, at, timer(i as u32, i));
                }
            }
            orders.push(drain(&mut q));
        }
        assert_eq!(orders[0], orders[1]);
        // (at, seq) must be sorted.
        let mut sorted = orders[0].clone();
        sorted.sort_unstable();
        assert_eq!(orders[0], sorted);
    }

    #[test]
    fn far_events_fall_back_to_the_heap_and_still_order() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        // Far beyond the wheel horizon.
        q.push(0, WHEEL_SLOTS * 3, timer(0, 1));
        // Near event.
        q.push(0, 5, timer(1, 2));
        q.push(0, WHEEL_SLOTS * 3, crash(9));
        let order = drain(&mut q);
        assert_eq!(order, vec![(5, 1), (WHEEL_SLOTS * 3, 0), (WHEEL_SLOTS * 3, 2)]);
    }

    #[test]
    fn wheel_reuses_buckets_across_windows() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        let mut now = 0;
        let mut popped = Vec::new();
        // March time across several full wheel rotations, always keeping
        // the push inside the horizon.
        for round in 0..5u64 {
            let at = now + (round * 37) % WHEEL_SLOTS;
            q.push(now, at, timer(0, round));
            let ev = q.pop(now).expect("entry queued");
            now = now.max(ev.at);
            popped.push(ev.at);
        }
        assert_eq!(popped.len(), 5);
        assert!(popped.windows(2).all(|w| w[0] <= w[1]));
        assert!(q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        for i in 0..10u64 {
            q.push(0, i, timer(0, i));
        }
        assert_eq!(q.peak_len(), 10);
        let _ = drain(&mut q);
        assert_eq!(q.peak_len(), 10, "peak survives draining");
    }

    #[test]
    fn disruption_counter_tracks_scheduled_events() {
        let mut q = EventQueue::new(QueueKind::TimerWheel);
        assert_eq!(q.disruptions(), 0);
        q.push(0, 5, timer(0, 1)); // not a disruption
        q.push(0, 3, crash(1));
        q.push(0, WHEEL_SLOTS * 2, crash(2)); // heap-side disruption
        q.push(0, 4, EventKind::PartitionStart { a: NodeId(1), b: NodeId(2) });
        assert_eq!(q.disruptions(), 3);
        let mut now = 0;
        while let Some(ev) = q.pop(now) {
            now = now.max(ev.at);
        }
        assert_eq!(q.disruptions(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        for kind in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
            let mut q = EventQueue::new(kind);
            for i in 0..64u64 {
                q.push(0, (i * 13) % 40, timer(0, i));
                q.push(0, (i * 5) % 40, crash(i));
            }
            let mut now = 0;
            while let Some(at) = q.peek_at(now) {
                let ev = q.pop(now).expect("peeked entry pops");
                assert_eq!(ev.at, at);
                now = now.max(ev.at);
            }
            assert!(q.is_empty());
        }
    }
}
