//! Deterministic pseudo-random numbers for the simulator.
//!
//! A SplitMix64 generator: tiny, fast, and fully reproducible across
//! platforms — every simulation run is a pure function of its seed, which
//! the test suite and the benches rely on.

/// SplitMix64 PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// An independent stream derived from `(seed, stream)`.
    ///
    /// Streams are how the engine stays deterministic *independently of
    /// execution order*: every node (and every mobile host) draws from its
    /// own stream keyed by its identity, so two executions that interleave
    /// nodes differently (sequential vs. sharded-parallel) still hand each
    /// node the exact same random sequence. The Weyl-style multiply
    /// decorrelates neighbouring stream ids; one warm-up step separates the
    /// stream from a plain `new(seed ^ …)` generator.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` (`hi > lo`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.uniform().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() as u64) as usize]
    }

    /// Fork an independent stream (for sub-components).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_about_half() {
        let mut r = SplitMix64::new(7);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.uniform()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.2)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.2).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SplitMix64::new(13);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.exponential(50.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn streams_are_deterministic_and_decorrelated() {
        let mut a = SplitMix64::stream(42, 7);
        let mut b = SplitMix64::stream(42, 7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::stream(42, 8);
        let mut d = SplitMix64::stream(43, 7);
        let v = a.next_u64();
        assert_ne!(v, c.next_u64());
        assert_ne!(v, d.next_u64());
    }

    #[test]
    fn forked_streams_differ() {
        let mut a = SplitMix64::new(5);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = SplitMix64::new(17);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
