//! The unified run surface: one [`Backend`] choice instead of three
//! incompatible entry points.
//!
//! Historically a scenario ran through `Scenario::run_sim` (sequential
//! simulator), `Scenario::run_with(Parallelism)` (sharded simulator) or
//! `rgb_net::run_scenario` (live runtime) — three APIs with three shapes.
//! [`Scenario::run_on`](crate::scenario::Scenario::run_on) collapses them:
//!
//! | backend | engine | world |
//! |---|---|---|
//! | [`Backend::Sim`] | [`crate::sim::Simulation`] | deterministic discrete-event |
//! | [`Backend::Par`] | [`crate::par::ParSimulation`] | same, sharded across threads |
//! | [`Backend::Live`] | a [`LiveRuntime`] (the `rgb-net` reactor) | wall-clock concurrency |
//!
//! The live world plugs in through the [`LiveRuntime`] trait rather than a
//! concrete type because `rgb-net` depends on this crate (scenarios are
//! defined here); the trait inverts that edge. `rgb_net::LiveConfig`
//! implements it, so `sc.run_on(Backend::Live(&live_config))` is the whole
//! story for callers that link both crates.

use crate::scenario::{Scenario, ScenarioError, ScenarioOutcome};
use rgb_core::prelude::SystemDigest;
use std::fmt;

/// A runtime that can replay a [`Scenario`] against real concurrency —
/// implemented by `rgb_net::LiveConfig` for the reactor worker pool.
///
/// The digest's `settled` flag must carry the runtime's convergence
/// verdict (`true` only when the run actually quiesced within its settle
/// budget), so quiescence-gated oracles never judge a cluster that was
/// still moving.
pub trait LiveRuntime {
    /// Deploy `scenario`, replay its timeline in wall-clock time, and
    /// collect the final views and system digest.
    fn run_live(
        &self,
        scenario: &Scenario,
    ) -> Result<(ScenarioOutcome, SystemDigest), ScenarioError>;
}

/// Where [`Scenario::run_on`](crate::scenario::Scenario::run_on) executes.
#[derive(Clone, Copy)]
pub enum Backend<'a> {
    /// The sequential deterministic simulator.
    Sim,
    /// The sharded-parallel simulator with this many shards
    /// (trace-equivalent to [`Backend::Sim`], see [`crate::par`]).
    Par(usize),
    /// A live wall-clock runtime (the `rgb-net` reactor pool).
    Live(&'a dyn LiveRuntime),
}

impl fmt::Debug for Backend<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Sim => write!(f, "Sim"),
            Backend::Par(shards) => write!(f, "Par({shards})"),
            Backend::Live(_) => write!(f, "Live(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_debug_is_compact() {
        struct Never;
        impl LiveRuntime for Never {
            fn run_live(
                &self,
                _scenario: &Scenario,
            ) -> Result<(ScenarioOutcome, SystemDigest), ScenarioError> {
                unreachable!("never run")
            }
        }
        assert_eq!(format!("{:?}", Backend::Sim), "Sim");
        assert_eq!(format!("{:?}", Backend::Par(4)), "Par(4)");
        assert_eq!(format!("{:?}", Backend::Live(&Never)), "Live(..)");
    }
}
