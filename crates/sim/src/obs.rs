//! Engine-side observability: the per-engine tracking state that feeds
//! [`rgb_core::obs`], the [`Timeline`] of periodic counter deltas, and the
//! exporters (Prometheus text exposition and the `rgb-obs v1` JSON
//! timeline).
//!
//! Both simulator engines — sequential ([`crate::sim::Simulation`]) and
//! sharded-parallel ([`crate::par::ParSimulation`]) — embed one
//! `EngineObs` per execution domain (the whole simulation, or one
//! shard). Its hooks fire at the same per-node protocol points in both
//! engines: timer firings, decoded message arrivals, application-event
//! deliveries, fault-plan arms. Because rings are sharded wholesale and
//! every anchor is ring- or node-local, the latency surfaces and trace
//! records a parallel run produces merge to exactly the sequential run's
//! — and none of the tracking touches node inputs, RNG streams or event
//! keys, so `SystemDigest` streams stay byte-identical with obs enabled.
//!
//! Everything is gated on one `enabled` flag (default off, `NullSink`),
//! so runs that do not opt in keep current throughput.

use crate::metrics::{Metrics, MetricsSnapshot};
use rgb_core::obs::{NullSink, ObsKind, ObsRecord, TraceSink};
use rgb_core::prelude::{AppEvent, ChangeId, HierarchyLayout, Msg, NodeId, RingId, TimerKind};
use std::collections::BTreeMap;

/// "No repair in flight" sentinel for [`EngineObs::repair_started`].
const NO_REPAIR: u64 = u64::MAX;

/// In-flight change sightings tracked per engine domain before overflow
/// trimming starts. Sightings complete at ring agreement, so steady state
/// stays far below this; the cap only bounds pathological storms.
const FIRST_SEEN_CAP: usize = 1 << 16;

/// Per-engine observability state: the trace sink, precomputed node/ring
/// coordinates, and the open latency intervals (change sightings, repair
/// starts) whose closures land in [`Metrics::levels`].
#[derive(Debug)]
pub(crate) struct EngineObs {
    /// Master switch: when false every hook returns immediately and the
    /// engine behaves exactly as before this layer existed.
    pub(crate) enabled: bool,
    sink: Box<dyn TraceSink>,
    /// Node id by local index (trace-record coordinate).
    node_id: Vec<NodeId>,
    /// Ring by local index.
    node_ring: Vec<RingId>,
    /// Hierarchy level by local index.
    node_level: Vec<u8>,
    /// Level of every ring in the layout (Agreed events name rings).
    ring_level: BTreeMap<RingId, u8>,
    /// (ring, change) → tick of first wire sighting in that ring.
    first_seen: BTreeMap<(RingId, ChangeId), u64>,
    /// Sightings dropped because `first_seen` was at capacity.
    first_seen_overflow: u64,
    /// Tick the node's open ring-repair suspicion began (`NO_REPAIR`
    /// none): the first `TokenLost` or `TokenRetransmit` fire, cleared
    /// without a sample when the ring makes progress at this node again
    /// (token or ack received), recorded at `RingRepaired`.
    ring_repair_started: Vec<u64>,
    /// Tick the node's open re-attachment began (`ParentTimeout` fire),
    /// recorded at `Reattached`.
    reattach_started: Vec<u64>,
}

impl EngineObs {
    /// Tracking state for the local nodes `ids` (indexed by engine-local
    /// index) of `layout`. Coordinates are precomputed here so enabling
    /// obs later costs nothing at runtime.
    pub(crate) fn new(ids: &[NodeId], layout: &HierarchyLayout) -> Self {
        let ring_level: BTreeMap<RingId, u8> =
            layout.rings.iter().map(|r| (r.id, r.level as u8)).collect();
        let mut node_ring = Vec::with_capacity(ids.len());
        let mut node_level = Vec::with_capacity(ids.len());
        for &id in ids {
            match layout.placement(id) {
                Ok(p) => {
                    node_ring.push(p.ring);
                    node_level.push(p.level as u8);
                }
                Err(_) => {
                    node_ring.push(RingId(u32::MAX));
                    node_level.push(0);
                }
            }
        }
        EngineObs {
            enabled: false,
            sink: Box::new(NullSink),
            node_id: ids.to_vec(),
            node_ring,
            node_level,
            ring_level,
            first_seen: BTreeMap::new(),
            first_seen_overflow: 0,
            ring_repair_started: vec![NO_REPAIR; ids.len()],
            reattach_started: vec![NO_REPAIR; ids.len()],
        }
    }

    /// Turn tracking on and route trace records to `sink`.
    pub(crate) fn enable(&mut self, sink: Box<dyn TraceSink>) {
        self.enabled = true;
        self.sink = sink;
    }

    /// Turn on latency tracking without retaining trace records
    /// (the explorer's mode: histograms feed coverage, traces cost zero).
    pub(crate) fn enable_tracking(&mut self) {
        self.enabled = true;
    }

    /// The sink's retained records, oldest first.
    pub(crate) fn trace_snapshot(&self) -> Vec<ObsRecord> {
        self.sink.snapshot()
    }

    /// Records the sink evicted for capacity.
    pub(crate) fn trace_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Sightings dropped at the `first_seen` cap (accounting trim only —
    /// protocol behavior is never affected).
    pub(crate) fn first_seen_overflow(&self) -> u64 {
        self.first_seen_overflow
    }

    #[inline]
    fn emit(&mut self, now: u64, local: usize, kind: ObsKind) {
        if self.sink.enabled() {
            self.sink.record(ObsRecord {
                at: now,
                node: self.node_id[local],
                ring: self.node_ring[local],
                level: self.node_level[local],
                kind,
            });
        }
    }

    /// A change record was seen on the wire at `local`'s ring.
    fn sight(&mut self, now: u64, local: usize, id: ChangeId) {
        let key = (self.node_ring[local], id);
        if self.first_seen.contains_key(&key) {
            return;
        }
        if self.first_seen.len() >= FIRST_SEEN_CAP {
            self.first_seen_overflow += 1;
            return;
        }
        self.first_seen.insert(key, now);
        self.emit(now, local, ObsKind::JoinStart { origin: id.origin, seq: id.seq });
    }

    /// A timer fired at `local`. Opens repair intervals for the
    /// repair-triggering kinds. A `TokenRetransmit` fire is a suspicion,
    /// not yet a fault (most retransmissions succeed), so it opens the
    /// ring-repair anchor silently; the anchor is cleared without a
    /// sample if the ring makes progress at this node before a repair —
    /// what survives into the histogram is detection → exclusion for
    /// both the §5.2 paths (timeout suspicion and retransmit
    /// exhaustion).
    pub(crate) fn on_timer_fire(&mut self, now: u64, local: usize, kind: TimerKind) {
        if !self.enabled {
            return;
        }
        match kind {
            TimerKind::TokenRetransmit { .. } if self.ring_repair_started[local] == NO_REPAIR => {
                self.ring_repair_started[local] = now;
            }
            TimerKind::TokenLost => {
                if self.ring_repair_started[local] == NO_REPAIR {
                    self.ring_repair_started[local] = now;
                }
                self.emit(now, local, ObsKind::TokenLoss);
            }
            TimerKind::ParentTimeout => {
                if self.reattach_started[local] == NO_REPAIR {
                    self.reattach_started[local] = now;
                }
                self.emit(now, local, ObsKind::HandoffStart);
            }
            _ => {}
        }
    }

    /// A decoded message arrived at `local` (the engine's receive path,
    /// after the wire codec and group check).
    pub(crate) fn on_msg(&mut self, now: u64, local: usize, msg: &Msg) {
        if !self.enabled {
            return;
        }
        match msg {
            Msg::Token(t) => {
                // The ring reached this node: any open retransmit/loss
                // suspicion resolved without a repair.
                self.ring_repair_started[local] = NO_REPAIR;
                self.emit(now, local, ObsKind::TokenGrant { seq: t.seq });
                for rec in &t.ops {
                    self.sight(now, local, rec.id);
                }
            }
            Msg::TokenAck { .. } => {
                // The suspected successor answered: suspicion resolved.
                self.ring_repair_started[local] = NO_REPAIR;
            }
            Msg::MqInsert { records, .. } => {
                for rec in records {
                    self.sight(now, local, rec.id);
                }
            }
            _ => {}
        }
    }

    /// An application event was delivered at `local`. Closes join and
    /// repair intervals into the per-level surfaces.
    pub(crate) fn on_app(
        &mut self,
        now: u64,
        local: usize,
        event: &AppEvent,
        metrics: &mut Metrics,
    ) {
        if !self.enabled {
            return;
        }
        match event {
            AppEvent::Agreed { ring, ids } => {
                let level = self.ring_level.get(ring).copied().unwrap_or(self.node_level[local]);
                for id in ids {
                    if let Some(t0) = self.first_seen.remove(&(*ring, *id)) {
                        metrics.levels.level_mut(level).join.record(now.saturating_sub(t0));
                    }
                }
                self.emit(now, local, ObsKind::JoinCommit { changes: ids.len() as u32 });
            }
            AppEvent::RingRepaired { .. } => {
                let t0 = std::mem::replace(&mut self.ring_repair_started[local], NO_REPAIR);
                self.record_repair(now, local, t0, metrics);
                self.emit(now, local, ObsKind::TokenRecovery { excluded: 1 });
            }
            AppEvent::Reattached { .. } => {
                let t0 = std::mem::replace(&mut self.reattach_started[local], NO_REPAIR);
                self.record_repair(now, local, t0, metrics);
                self.emit(now, local, ObsKind::HandoffEnd);
            }
            AppEvent::FastHandoff { .. } => self.emit(now, local, ObsKind::FastHandoff),
            AppEvent::QueryResult { responses, .. } => {
                self.emit(now, local, ObsKind::QueryAnswer { responses: *responses });
            }
            _ => {}
        }
    }

    fn record_repair(&mut self, now: u64, local: usize, t0: u64, metrics: &mut Metrics) {
        if t0 != NO_REPAIR {
            metrics.levels.level_mut(self.node_level[local]).repair.record(now.saturating_sub(t0));
        }
    }

    /// A membership query was issued at `local`.
    pub(crate) fn on_query_issue(&mut self, now: u64, local: usize) {
        if !self.enabled {
            return;
        }
        self.emit(now, local, ObsKind::QueryIssue);
    }

    /// A query completed at `local` after `dt` ticks (the engine already
    /// computes the RTT for its flat histogram).
    pub(crate) fn on_query_done(&mut self, local: usize, dt: u64, metrics: &mut Metrics) {
        if !self.enabled {
            return;
        }
        metrics.levels.level_mut(self.node_level[local]).query.record(dt);
    }

    /// A scheduled partition arm took effect at endpoint `local`
    /// (engines emit this for endpoint `a` only, so sequential and
    /// parallel traces agree — the parallel engine replicates partition
    /// arms to both endpoint owners).
    pub(crate) fn on_partition(&mut self, now: u64, local: usize, start: bool) {
        if !self.enabled {
            return;
        }
        let kind = if start { ObsKind::PartitionStart } else { ObsKind::PartitionHeal };
        self.emit(now, local, kind);
    }

    /// The fault plan crashed `local`.
    pub(crate) fn on_crash(&mut self, now: u64, local: usize) {
        if !self.enabled {
            return;
        }
        self.emit(now, local, ObsKind::Crash);
    }
}

/// One periodic sample of counter deltas.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Engine tick at sample time.
    pub tick: u64,
    /// Driver wall clock at sample time, nanoseconds since run start.
    pub wall_nanos: u128,
    /// Frames sent since the previous sample.
    pub sent_delta: u64,
    /// Proposal hops since the previous sample.
    pub proposal_delta: u64,
    /// App events delivered since the previous sample.
    pub app_events_delta: u64,
    /// Per-label send deltas since the previous sample (non-zero only).
    pub by_label_delta: BTreeMap<&'static str, u64>,
}

/// A run's sequence of periodic [`MetricsSnapshot`] deltas. The driver
/// (bench bin, explorer, test) calls [`Timeline::sample`] between run
/// slices; the engine itself never samples, so timelines cannot perturb
/// determinism.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
    last: Option<(MetricsSnapshot, u64)>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Record one sample: deltas of `metrics` against the previous call.
    pub fn sample(&mut self, tick: u64, wall_nanos: u128, metrics: &Metrics) {
        let snap = metrics.snapshot();
        let (prev, prev_apps) = match &self.last {
            Some((s, a)) => (s.clone(), *a),
            None => (MetricsSnapshot::default(), 0),
        };
        self.entries.push(TimelineEntry {
            tick,
            wall_nanos,
            sent_delta: snap.sent_total.saturating_sub(prev.sent_total),
            proposal_delta: snap.proposal_hops.saturating_sub(prev.proposal_hops),
            app_events_delta: metrics.app_events.saturating_sub(prev_apps),
            by_label_delta: prev.delta(metrics),
        });
        self.last = Some((snap, metrics.app_events));
    }

    /// The samples recorded so far.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }
}

/// Everything the exporters need about one observed run.
#[derive(Debug)]
pub struct ObsReport<'a> {
    /// Scenario or workload name.
    pub scenario: &'a str,
    /// Engine that produced the run (`"sim"`, `"par"`, `"live"`).
    pub backend: &'a str,
    /// Final engine tick.
    pub ticks: u64,
    /// Wall-clock duration of the run, nanoseconds.
    pub wall_nanos: u128,
    /// The run's merged metrics.
    pub metrics: &'a Metrics,
    /// Periodic samples (may be empty).
    pub timeline: &'a Timeline,
    /// Flight-recorder snapshot (may be empty).
    pub trace: &'a [ObsRecord],
    /// Records the flight recorder evicted.
    pub trace_dropped: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hist_json(h: &rgb_core::obs::Histogram) -> String {
    if h.is_empty() {
        return r#"{"count":0}"#.to_string();
    }
    format!(
        r#"{{"count":{},"mean":{:.3},"p50":{},"p90":{},"p99":{},"max":{}}}"#,
        h.len(),
        h.mean().unwrap_or(0.0),
        h.quantile(0.5).unwrap_or(0),
        h.quantile(0.9).unwrap_or(0),
        h.quantile(0.99).unwrap_or(0),
        h.max().unwrap_or(0),
    )
}

fn kind_json(kind: &ObsKind) -> String {
    match kind {
        ObsKind::JoinStart { origin, seq } => {
            format!(r#""kind":"join_start","origin":{},"seq":{}"#, origin.0, seq)
        }
        ObsKind::JoinCommit { changes } => {
            format!(r#""kind":"join_commit","changes":{changes}"#)
        }
        ObsKind::HandoffStart => r#""kind":"handoff_start""#.to_string(),
        ObsKind::HandoffEnd => r#""kind":"handoff_end""#.to_string(),
        ObsKind::FastHandoff => r#""kind":"fast_handoff""#.to_string(),
        ObsKind::TokenGrant { seq } => format!(r#""kind":"token_grant","seq":{seq}"#),
        ObsKind::TokenLoss => r#""kind":"token_loss""#.to_string(),
        ObsKind::TokenRecovery { excluded } => {
            format!(r#""kind":"token_recovery","excluded":{excluded}"#)
        }
        ObsKind::PartitionStart => r#""kind":"partition_start""#.to_string(),
        ObsKind::PartitionHeal => r#""kind":"partition_heal""#.to_string(),
        ObsKind::QueryIssue => r#""kind":"query_issue""#.to_string(),
        ObsKind::QueryAnswer { responses } => {
            format!(r#""kind":"query_answer","responses":{responses}"#)
        }
        ObsKind::Crash => r#""kind":"crash""#.to_string(),
    }
}

/// Render an [`ObsReport`] as the `rgb-obs v1` JSON document — the
/// machine-readable artifact behind `--obs-out` on the bench bins and the
/// CI `obs-smoke` schema check.
pub fn obs_json(r: &ObsReport) -> String {
    let m = r.metrics;
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rgb-obs v1\",\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", json_escape(r.scenario)));
    out.push_str(&format!("  \"backend\": \"{}\",\n", json_escape(r.backend)));
    out.push_str(&format!("  \"ticks\": {},\n", r.ticks));
    out.push_str(&format!("  \"wall_nanos\": {},\n", r.wall_nanos));
    out.push_str(&format!(
        "  \"counters\": {{\"sent_total\":{},\"proposal_hops\":{},\"lost\":{},\"partition_dropped\":{},\"duplicated\":{},\"reordered\":{},\"codec_rejected\":{},\"app_events\":{},\"app_events_dropped\":{},\"stale_timer_skips\":{}}},\n",
        m.sent_total,
        m.proposal_hops(),
        m.lost,
        m.partition_dropped,
        m.duplicated,
        m.reordered,
        m.codec_rejected,
        m.app_events,
        m.app_events_dropped,
        m.stale_timer_skips,
    ));
    out.push_str(&format!(
        "  \"par\": {{\"windows\":{},\"idle_skips\":{},\"frames_batched\":{},\"batches\":{},\"max_batch\":{},\"phase_nanos\":{{\"execute\":{},\"flush\":{},\"barrier\":{},\"drain\":{}}}}},\n",
        m.par.windows,
        m.par.idle_skips,
        m.par.frames_batched,
        m.par.batches,
        m.par.max_batch,
        m.par.execute_nanos,
        m.par.flush_nanos,
        m.par.barrier_nanos,
        m.par.drain_nanos,
    ));
    out.push_str("  \"levels\": [");
    let mut first = true;
    for (level, lvl) in m.levels.iter() {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "{{\"level\":{},\"join\":{},\"repair\":{},\"query\":{}}}",
            level,
            hist_json(&lvl.join),
            hist_json(&lvl.repair),
            hist_json(&lvl.query),
        ));
    }
    out.push_str("],\n");
    out.push_str("  \"timeline\": [");
    for (i, e) in r.timeline.entries().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"tick\":{},\"wall_nanos\":{},\"sent_delta\":{},\"proposal_delta\":{},\"app_events_delta\":{}}}",
            e.tick, e.wall_nanos, e.sent_delta, e.proposal_delta, e.app_events_delta,
        ));
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"trace\": {{\"retained\":{},\"dropped\":{},\"records\":[",
        r.trace.len(),
        r.trace_dropped,
    ));
    for (i, rec) in r.trace.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"at\":{},\"node\":{},\"ring\":{},\"level\":{},{}}}",
            rec.at,
            rec.node.0,
            rec.ring.0,
            rec.level,
            kind_json(&rec.kind),
        ));
    }
    out.push_str("]}\n");
    out.push_str("}\n");
    out
}

/// Render `metrics` in the Prometheus text exposition format
/// (counter/gauge lines with `level`/`quantile`/`phase` labels), for
/// scraping or ad-hoc diffing.
pub fn prometheus_text(metrics: &Metrics) -> String {
    let mut out = String::with_capacity(2048);
    let m = metrics;
    out.push_str("# TYPE rgb_sent_total counter\n");
    out.push_str(&format!("rgb_sent_total {}\n", m.sent_total));
    for (label, count) in m.by_label() {
        out.push_str(&format!("rgb_sent{{label=\"{label}\"}} {count}\n"));
    }
    out.push_str("# TYPE rgb_lost_total counter\n");
    out.push_str(&format!("rgb_lost_total {}\n", m.lost));
    out.push_str(&format!("rgb_partition_dropped_total {}\n", m.partition_dropped));
    out.push_str(&format!("rgb_duplicated_total {}\n", m.duplicated));
    out.push_str(&format!("rgb_reordered_total {}\n", m.reordered));
    out.push_str(&format!("rgb_codec_rejected_total {}\n", m.codec_rejected));
    out.push_str(&format!("rgb_app_events_total {}\n", m.app_events));
    out.push_str(&format!("rgb_app_events_dropped_total {}\n", m.app_events_dropped));
    out.push_str(&format!("rgb_stale_timer_skips_total {}\n", m.stale_timer_skips));
    for (phase, nanos) in [
        ("execute", m.par.execute_nanos),
        ("flush", m.par.flush_nanos),
        ("barrier", m.par.barrier_nanos),
        ("drain", m.par.drain_nanos),
    ] {
        out.push_str(&format!("rgb_par_phase_nanos{{phase=\"{phase}\"}} {nanos}\n"));
    }
    out.push_str("# TYPE rgb_latency_ticks summary\n");
    for (level, lvl) in m.levels.iter() {
        for (surface, h) in [("join", &lvl.join), ("repair", &lvl.repair), ("query", &lvl.query)] {
            if h.is_empty() {
                continue;
            }
            for q in [0.5, 0.9, 0.99] {
                if let Some(v) = h.quantile(q) {
                    out.push_str(&format!(
                        "rgb_latency_ticks{{surface=\"{surface}\",level=\"{level}\",quantile=\"{q}\"}} {v}\n",
                    ));
                }
            }
            out.push_str(&format!(
                "rgb_latency_ticks_count{{surface=\"{surface}\",level=\"{level}\"}} {}\n",
                h.len(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgb_core::prelude::{GroupId, HierarchySpec};

    fn obs_fixture() -> EngineObs {
        let layout = HierarchySpec::new(2, 3).build(GroupId(1)).unwrap();
        let ids: Vec<NodeId> = layout.nodes.keys().copied().collect();
        EngineObs::new(&ids, &layout)
    }

    #[test]
    fn disabled_hooks_track_nothing() {
        let mut obs = obs_fixture();
        let mut m = Metrics::default();
        obs.on_timer_fire(5, 0, TimerKind::TokenLost);
        obs.on_app(9, 0, &AppEvent::RingRepaired { ring: RingId(0), excluded: NodeId(2) }, &mut m);
        obs.on_query_done(0, 17, &mut m);
        assert!(m.levels.is_empty());
        assert!(obs.trace_snapshot().is_empty());
    }

    #[test]
    fn repair_interval_closes_into_the_node_level_surface() {
        let mut obs = obs_fixture();
        obs.enable(Box::new(rgb_core::obs::FlightRecorder::new(64)));
        let mut m = Metrics::default();
        obs.on_timer_fire(100, 1, TimerKind::TokenLost);
        obs.on_app(
            140,
            1,
            &AppEvent::RingRepaired { ring: RingId(0), excluded: NodeId(9) },
            &mut m,
        );
        let level = obs.node_level[1];
        let h = &m.levels.get(level).unwrap().repair;
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(40));
        // A second completion with no open interval records nothing.
        obs.on_app(
            150,
            1,
            &AppEvent::RingRepaired { ring: RingId(0), excluded: NodeId(9) },
            &mut m,
        );
        assert_eq!(m.levels.get(level).unwrap().repair.count(), 1);
        let kinds: Vec<ObsKind> = obs.trace_snapshot().iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&ObsKind::TokenLoss));
        assert!(kinds.contains(&ObsKind::TokenRecovery { excluded: 1 }));
    }

    #[test]
    fn join_interval_anchors_on_first_sighting_per_ring() {
        let mut obs = obs_fixture();
        obs.enable_tracking();
        let mut m = Metrics::default();
        let id = ChangeId { origin: NodeId(7), seq: 3 };
        let ring = obs.node_ring[4];
        let msg = Msg::MqInsert {
            kind: rgb_core::prelude::NotifyKind::Local,
            records: vec![make_record(id, ring)],
        };
        obs.on_msg(50, 4, &msg);
        obs.on_msg(60, 4, &msg); // re-sighting does not reset the anchor
        obs.on_app(90, 4, &AppEvent::Agreed { ring, ids: vec![id] }, &mut m);
        let level = obs.node_level[4];
        assert_eq!(m.levels.get(level).unwrap().join.max(), Some(40));
        // The interval is consumed: a second Agreed records nothing new.
        obs.on_app(95, 4, &AppEvent::Agreed { ring, ids: vec![id] }, &mut m);
        assert_eq!(m.levels.get(level).unwrap().join.count(), 1);
    }

    fn make_record(id: ChangeId, ring: RingId) -> rgb_core::prelude::ChangeRecord {
        use rgb_core::prelude::*;
        ChangeRecord::new(id, id.origin, ring, ChangeOp::MemberLeave { guid: Guid(1) })
    }

    #[test]
    fn timeline_samples_are_deltas() {
        let mut t = Timeline::new();
        let mut m = Metrics::default();
        use crate::network::LinkClass;
        use rgb_core::prelude::MsgLabel;
        m.record_send(MsgLabel::Token, LinkClass::IntraRing);
        m.record_send(MsgLabel::Token, LinkClass::IntraRing);
        t.sample(10, 1_000, &m);
        m.record_send(MsgLabel::Token, LinkClass::IntraRing);
        t.sample(20, 2_000, &m);
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.entries()[0].sent_delta, 2);
        assert_eq!(t.entries()[1].sent_delta, 1);
        assert_eq!(t.entries()[1].by_label_delta.get("token"), Some(&1));
    }

    #[test]
    fn obs_json_has_the_v1_envelope() {
        let m = Metrics::default();
        let t = Timeline::new();
        let doc = obs_json(&ObsReport {
            scenario: "unit",
            backend: "sim",
            ticks: 123,
            wall_nanos: 456,
            metrics: &m,
            timeline: &t,
            trace: &[],
            trace_dropped: 0,
        });
        assert!(doc.contains("\"schema\": \"rgb-obs v1\""));
        assert!(doc.contains("\"counters\""));
        assert!(doc.contains("\"phase_nanos\""));
        assert!(doc.contains("\"levels\""));
        assert!(doc.contains("\"trace\""));
    }

    #[test]
    fn prometheus_text_exposes_levels_and_phases() {
        let mut m = Metrics::default();
        m.levels.level_mut(1).repair.record(40);
        m.par.barrier_nanos = 9;
        let text = prometheus_text(&m);
        assert!(text.contains("rgb_sent_total 0"));
        assert!(text.contains("rgb_par_phase_nanos{phase=\"barrier\"} 9"));
        assert!(
            text.contains("rgb_latency_ticks{surface=\"repair\",level=\"1\",quantile=\"0.5\"} 40")
        );
    }
}
