//! Global invariant checks over a simulation — the things the protocol
//! promises (§4.3 consistency; §5.2 Function-Well semantics) asserted from
//! the outside.

use crate::sim::Simulation;
use rgb_core::hierarchy::{assess, FunctionWellReport};
use std::fmt::Write as _;

/// Check ring-level agreement: at quiescence, every pair of alive nodes of
/// the same ring with the same epoch must hold identical ring membership,
/// and all alive nodes of a ring must be at the same epoch.
///
/// Returns a human-readable violation description, or `Ok(())`.
pub fn check_ring_consistency(sim: &Simulation) -> Result<(), String> {
    for ring in &sim.layout.rings {
        let alive = sim.alive_ring_nodes(ring.id);
        let Some(&first) = alive.first() else { continue };
        let reference = sim.node(first);
        for &n in &alive[1..] {
            let node = sim.node(n);
            if node.epoch != reference.epoch {
                let mut msg = String::new();
                let _ = write!(
                    msg,
                    "ring {}: epoch mismatch {}@{} vs {}@{}",
                    ring.id, reference.epoch, first, node.epoch, n
                );
                return Err(msg);
            }
            if node.ring_members != reference.ring_members {
                return Err(format!(
                    "ring {}: membership mismatch between {first} and {n}",
                    ring.id
                ));
            }
        }
    }
    Ok(())
}

/// Check that no alive node still lists a crashed node on its roster
/// (complete local repair).
pub fn check_repair_complete(sim: &Simulation) -> Result<(), String> {
    for (id, node) in sim.nodes_iter() {
        if sim.is_crashed(id) {
            continue;
        }
        for dead in sim.crashed_set() {
            if node.roster.contains(*dead)
                && sim.layout.placement(*dead).map(|p| p.ring) == Ok(node.ring_id())
            {
                return Err(format!("node {id} still lists crashed {dead}"));
            }
        }
    }
    Ok(())
}

/// The paper-model Function-Well assessment of the current crash set.
pub fn function_well_report(sim: &Simulation) -> FunctionWellReport {
    assess(&sim.layout, sim.crashed_set())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;
    use rgb_core::prelude::*;

    #[test]
    fn consistency_holds_after_churn() {
        let mut sim = Simulation::full(3, 3, &ProtocolConfig::default(), NetConfig::default(), 2);
        sim.boot_all();
        for (i, &ap) in sim.layout.aps().iter().enumerate() {
            sim.schedule_mh(i as u64, ap, MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) });
            if i % 2 == 0 {
                sim.schedule_mh(100 + i as u64, ap, MhEvent::Leave { guid: Guid(i as u64) });
            }
        }
        assert!(sim.run_until_quiet(50_000_000));
        check_ring_consistency(&sim).unwrap();
    }

    #[test]
    fn repair_check_flags_unrepaired_rosters() {
        let mut sim = Simulation::full(1, 3, &ProtocolConfig::default(), NetConfig::instant(), 2);
        sim.boot_all();
        let victim = sim.layout.aps()[1];
        sim.crash_at(0, victim);
        sim.step();
        // OnDemand policy performs no detection, so the roster still lists
        // the crashed node: the check must fail.
        assert!(check_repair_complete(&sim).is_err());
    }

    #[test]
    fn function_well_report_tracks_crashes() {
        let mut sim = Simulation::full(3, 3, &ProtocolConfig::default(), NetConfig::instant(), 2);
        sim.boot_all();
        let ring = sim.layout.rings_at(2).next().unwrap().clone();
        sim.crash_at(0, ring.nodes[0]);
        sim.crash_at(0, ring.nodes[1]);
        while sim.step() {}
        let report = function_well_report(&sim);
        assert_eq!(report.bad_count(), 1);
        assert!(!report.function_well(1));
        assert!(report.function_well(2));
    }
}
