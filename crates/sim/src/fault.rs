//! Fault-injection plans implementing the §5.2 model: every network entity
//! is independently faulty with probability `f` (node faults only; the
//! paper folds link faults into node faults).

use crate::rng::SplitMix64;
use rgb_core::prelude::NodeId;
use rgb_core::topology::HierarchyLayout;

/// A planned crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedCrash {
    /// When the node dies.
    pub at: u64,
    /// Which node.
    pub node: NodeId,
}

/// Bernoulli fault plan: each NE crashes with probability `f`, at a time
/// uniform in `[window.0, window.1)`.
pub fn bernoulli_crashes(
    layout: &HierarchyLayout,
    f: f64,
    window: (u64, u64),
    seed: u64,
) -> Vec<PlannedCrash> {
    let mut rng = SplitMix64::new(seed);
    let mut crashes = Vec::new();
    for &node in layout.nodes.keys() {
        if rng.chance(f) {
            let at = if window.1 > window.0 { rng.range(window.0, window.1) } else { window.0 };
            crashes.push(PlannedCrash { at, node });
        }
    }
    crashes.sort_by_key(|c| (c.at, c.node));
    crashes
}

/// Crash exactly `count` distinct nodes of one ring (model experiments).
pub fn crash_in_ring(
    layout: &HierarchyLayout,
    ring: rgb_core::prelude::RingId,
    count: usize,
    at: u64,
) -> Vec<PlannedCrash> {
    layout
        .ring(ring)
        .map(|spec| spec.nodes.iter().take(count).map(|&node| PlannedCrash { at, node }).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgb_core::prelude::*;

    fn layout() -> HierarchyLayout {
        HierarchySpec::new(3, 5).build(GroupId(1)).unwrap()
    }

    #[test]
    fn bernoulli_rate_tracks_f() {
        let l = layout();
        let mut total = 0usize;
        let runs = 200;
        for seed in 0..runs {
            total += bernoulli_crashes(&l, 0.05, (0, 100), seed).len();
        }
        let mean = total as f64 / runs as f64;
        let expect = l.node_count() as f64 * 0.05;
        assert!((mean - expect).abs() < expect * 0.2, "mean {mean} vs expected {expect}");
    }

    #[test]
    fn crash_times_within_window() {
        let l = layout();
        for c in bernoulli_crashes(&l, 0.2, (50, 150), 1) {
            assert!((50..150).contains(&c.at));
        }
    }

    #[test]
    fn zero_f_never_crashes() {
        assert!(bernoulli_crashes(&layout(), 0.0, (0, 10), 1).is_empty());
    }

    #[test]
    fn crash_in_ring_picks_distinct_ring_nodes() {
        let l = layout();
        let ring = l.rings_at(2).next().unwrap().id;
        let crashes = crash_in_ring(&l, ring, 2, 7);
        assert_eq!(crashes.len(), 2);
        assert_ne!(crashes[0].node, crashes[1].node);
        for c in &crashes {
            assert_eq!(l.placement(c.node).unwrap().ring, ring);
            assert_eq!(c.at, 7);
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let l = layout();
        assert_eq!(bernoulli_crashes(&l, 0.1, (0, 50), 3), bernoulli_crashes(&l, 0.1, (0, 50), 3));
    }
}
