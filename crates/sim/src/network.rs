//! The network model: per-link-class latency distributions and message
//! loss, standing in for the paper's mobile Internet (wireless access hop,
//! intra-AS links between ring peers, inter-AS links between tiers).

use crate::rng::SplitMix64;
use rgb_core::prelude::{NodeId, Tier};
use rgb_core::topology::{HierarchyLayout, NodeIdx, NodeIndexer};
use serde::{Deserialize, Serialize};

/// Classification of one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Mobile host to access proxy (wireless last hop).
    Wireless,
    /// Between two nodes of the same ring (intra-AS / local area).
    IntraRing,
    /// Between a ring node and its sponsor / child (inter-tier).
    InterTier,
    /// Any other NE-to-NE path (query shortcuts, re-attachment probes).
    WideArea,
}

impl LinkClass {
    /// Number of link classes (array dimension for per-class counters).
    pub const COUNT: usize = 4;

    /// Every class, in slot order.
    pub const ALL: [LinkClass; Self::COUNT] =
        [LinkClass::Wireless, LinkClass::IntraRing, LinkClass::InterTier, LinkClass::WideArea];

    /// Dense counter slot of this class.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            LinkClass::Wireless => 0,
            LinkClass::IntraRing => 1,
            LinkClass::InterTier => 2,
            LinkClass::WideArea => 3,
        }
    }
}

/// Latency band for one link class, in simulator ticks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBand {
    /// Minimum latency.
    pub min: u64,
    /// Maximum latency (inclusive; uniform within the band).
    pub max: u64,
}

impl LatencyBand {
    /// A fixed latency.
    pub fn fixed(v: u64) -> Self {
        LatencyBand { min: v, max: v }
    }

    /// Whether the band is well-formed (`min <= max`). Inverted bands are a
    /// configuration error caught by [`NetConfig::validate`], never silently
    /// repaired at sampling time.
    pub fn is_valid(&self) -> bool {
        self.min <= self.max
    }

    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        debug_assert!(self.is_valid(), "inverted band must be rejected at validation");
        if self.max == self.min {
            self.min
        } else {
            rng.range(self.min, self.max + 1)
        }
    }
}

/// Network configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Wireless last-hop latency.
    pub wireless: LatencyBand,
    /// Intra-ring latency.
    pub intra_ring: LatencyBand,
    /// Parent/child (inter-tier) latency.
    pub inter_tier: LatencyBand,
    /// Everything else.
    pub wide_area: LatencyBand,
    /// Probability an NE-to-NE message is silently lost.
    pub loss: f64,
    /// Probability the wireless hop loses a message.
    pub wireless_loss: f64,
    /// Probability an NE-to-NE frame is **duplicated** in transit (the copy
    /// samples its own independent latency). The wireless hop is exempt:
    /// its per-MH FIFO ordering models link-layer retransmission, which
    /// already deduplicates.
    pub dup: f64,
    /// Probability an NE-to-NE frame is **delayed out of band** (reordered
    /// past later traffic): the frame's latency is inflated by a uniform
    /// extra in `[1, reorder_extra]`.
    pub reorder: f64,
    /// Upper bound of the reorder delay (ticks); must be ≥ 1 whenever
    /// `reorder > 0`.
    pub reorder_extra: u64,
}

impl Default for NetConfig {
    /// A mobile-Internet-flavoured default: fast LAN-ish rings, slower
    /// inter-tier links, slowest wireless hop. One tick ≈ 0.1 ms.
    fn default() -> Self {
        NetConfig {
            wireless: LatencyBand { min: 20, max: 60 },
            intra_ring: LatencyBand { min: 5, max: 15 },
            inter_tier: LatencyBand { min: 10, max: 40 },
            wide_area: LatencyBand { min: 10, max: 40 },
            loss: 0.0,
            wireless_loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            reorder_extra: 0,
        }
    }
}

impl NetConfig {
    /// Zero-latency, lossless network (pure hop counting).
    pub fn instant() -> Self {
        NetConfig {
            wireless: LatencyBand::fixed(0),
            intra_ring: LatencyBand::fixed(0),
            inter_tier: LatencyBand::fixed(0),
            wide_area: LatencyBand::fixed(0),
            loss: 0.0,
            wireless_loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            reorder_extra: 0,
        }
    }

    /// Fixed unit latency (deterministic ordering tests).
    pub fn unit() -> Self {
        NetConfig {
            wireless: LatencyBand::fixed(1),
            intra_ring: LatencyBand::fixed(1),
            inter_tier: LatencyBand::fixed(1),
            wide_area: LatencyBand::fixed(1),
            loss: 0.0,
            wireless_loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            reorder_extra: 0,
        }
    }

    fn band(&self, class: LinkClass) -> LatencyBand {
        match class {
            LinkClass::Wireless => self.wireless,
            LinkClass::IntraRing => self.intra_ring,
            LinkClass::InterTier => self.inter_tier,
            LinkClass::WideArea => self.wide_area,
        }
    }

    /// Validate the configuration: every latency band must satisfy
    /// `min <= max` and both loss probabilities must lie in `[0, 1]`.
    /// An inverted band (`max < min`) is a configuration error, reported
    /// here instead of being silently clamped at sampling time.
    pub fn validate(&self) -> Result<(), String> {
        for (name, band) in [
            ("wireless", self.wireless),
            ("intra_ring", self.intra_ring),
            ("inter_tier", self.inter_tier),
            ("wide_area", self.wide_area),
        ] {
            if !band.is_valid() {
                return Err(format!(
                    "net config: {name} latency band is inverted (min {} > max {})",
                    band.min, band.max
                ));
            }
        }
        for (name, p) in [
            ("loss", self.loss),
            ("wireless_loss", self.wireless_loss),
            ("dup", self.dup),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("net config: {name} probability {p} outside [0, 1]"));
            }
        }
        if self.reorder > 0.0 && self.reorder_extra == 0 {
            return Err("net config: reorder > 0 requires reorder_extra >= 1".to_string());
        }
        Ok(())
    }
}

/// Stateful network model: classifies links against the layout and samples
/// latency / loss.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    cfg: NetConfig,
}

impl NetworkModel {
    /// New model over a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`]; use
    /// [`NetworkModel::try_new`] to handle the error instead.
    pub fn new(cfg: NetConfig) -> Self {
        Self::try_new(cfg).expect("invalid NetConfig")
    }

    /// Fallible constructor: validates the configuration first.
    pub fn try_new(cfg: NetConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(NetworkModel { cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Classify an NE-to-NE transmission.
    pub fn classify(&self, layout: &HierarchyLayout, from: NodeId, to: NodeId) -> LinkClass {
        let (Ok(a), Ok(b)) = (layout.placement(from), layout.placement(to)) else {
            return LinkClass::WideArea;
        };
        if a.ring == b.ring {
            return LinkClass::IntraRing;
        }
        let parent_child = a.parent_node == Some(to)
            || b.parent_node == Some(from)
            || a.child_ring.map(|r| r == b.ring).unwrap_or(false)
            || b.child_ring.map(|r| r == a.ring).unwrap_or(false);
        if parent_child {
            LinkClass::InterTier
        } else {
            LinkClass::WideArea
        }
    }

    /// Sample delivery latency for a class.
    pub fn latency(&self, class: LinkClass, rng: &mut SplitMix64) -> u64 {
        self.cfg.band(class).sample(rng)
    }

    /// Sample whether a transmission of this class is lost.
    pub fn lost(&self, class: LinkClass, rng: &mut SplitMix64) -> bool {
        let p = match class {
            LinkClass::Wireless => self.cfg.wireless_loss,
            _ => self.cfg.loss,
        };
        p > 0.0 && rng.chance(p)
    }

    /// Sample whether an NE-to-NE frame is duplicated in transit. Draws
    /// from the RNG only when duplication is configured, so legacy
    /// scenarios keep their exact event streams.
    pub fn duplicated(&self, rng: &mut SplitMix64) -> bool {
        self.cfg.dup > 0.0 && rng.chance(self.cfg.dup)
    }

    /// Sample the out-of-band reorder delay for an NE-to-NE frame: `0` for
    /// frames delivered in band, otherwise a uniform extra latency in
    /// `[1, reorder_extra]`. Draws from the RNG only when reordering is
    /// configured.
    pub fn reorder_delay(&self, rng: &mut SplitMix64) -> u64 {
        if self.cfg.reorder > 0.0 && rng.chance(self.cfg.reorder) {
            rng.range(1, self.cfg.reorder_extra + 1)
        } else {
            0
        }
    }

    /// Tier of a node (diagnostics).
    pub fn tier(&self, layout: &HierarchyLayout, node: NodeId) -> Option<Tier> {
        layout.placement(node).ok().map(|p| p.tier)
    }

    /// Decide the fate of one NE-to-NE frame of `class`: `None` when the
    /// network loses it, otherwise the sampled delivery plan.
    ///
    /// This is the **single** sampling routine both engines use — the
    /// sequential [`crate::sim::Simulation`] and every shard of
    /// [`crate::par::ParSimulation`] — so the draw order (loss, latency,
    /// reorder, duplication, duplicate latency) can never diverge between
    /// them. Dimensions that are switched off draw nothing.
    pub(crate) fn plan_frame(&self, class: LinkClass, rng: &mut SplitMix64) -> Option<FramePlan> {
        if self.lost(class, rng) {
            return None;
        }
        let mut latency = self.latency(class, rng);
        let extra = self.reorder_delay(rng);
        let reordered = extra > 0;
        latency += extra;
        let dup_latency = self.duplicated(rng).then(|| self.latency(class, rng));
        Some(FramePlan { latency, reordered, dup_latency })
    }
}

/// The sampled fate of one frame that the network delivers (see
/// [`NetworkModel::plan_frame`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FramePlan {
    /// Delivery latency of the primary copy (reorder extra included).
    pub latency: u64,
    /// Whether the reordering fault dimension delayed this frame out of
    /// band.
    pub reordered: bool,
    /// Latency of the duplicated copy, when the duplication dimension
    /// fired.
    pub dup_latency: Option<u64>,
}

impl NetConfig {
    /// Floor of the latency band for `class` — the conservative-parallel
    /// engine's lookahead building block: a frame of this class can never
    /// arrive sooner than this many ticks after it was sent.
    pub fn min_latency(&self, class: LinkClass) -> u64 {
        self.band(class).min
    }
}

/// Compact hierarchy coordinates of one node, for O(1) link
/// classification: two loads and a handful of integer compares replace the
/// two `placement()` B-tree walks of [`NetworkModel::classify`].
#[derive(Debug, Clone, Copy)]
struct NodeCoords {
    /// Ring id.
    ring: u32,
    /// Sponsor's dense index + 1 (0 = root ring, no sponsor).
    parent: u32,
    /// Sponsored child ring id + 1 (0 = leaf node, no child ring).
    child_ring: u32,
}

/// Precomputed link classification for every ordered node pair of one
/// layout.
///
/// Built once at `Simulation::new`: for small hierarchies the full N×N
/// byte matrix makes `send_frame` classification a single indexed load;
/// beyond [`LinkClassMatrix::DENSE_LIMIT`] nodes the matrix would no
/// longer fit hot caches, so classification falls back to the compressed
/// per-pair form — two compact per-node coordinate loads and integer
/// compares, still
/// O(1) and allocation-free. Both forms agree with
/// [`NetworkModel::classify`] on every pair (property-tested).
#[derive(Debug, Clone)]
pub struct LinkClassMatrix {
    n: usize,
    /// Row-major `n × n` classes; empty when `n > DENSE_LIMIT`.
    dense: Vec<LinkClass>,
    /// Per-node compressed coordinates (always built; the fallback and the
    /// matrix builder share it).
    coords: Vec<NodeCoords>,
}

impl LinkClassMatrix {
    /// Largest node count that still gets the full N×N byte matrix (1 MiB
    /// at the limit).
    pub const DENSE_LIMIT: usize = 1024;

    /// Precompute the matrix for `layout`.
    pub fn new(layout: &HierarchyLayout, indexer: &NodeIndexer) -> Self {
        let n = indexer.len();
        let coords: Vec<NodeCoords> = (0..n)
            .map(|i| {
                let id = indexer.id_of(NodeIdx(i as u32));
                let p = layout.placement(id).expect("indexer node is in layout");
                NodeCoords {
                    ring: p.ring.0,
                    parent: p
                        .parent_node
                        .and_then(|pn| indexer.index_of(pn))
                        .map(|pi| pi.0 + 1)
                        .unwrap_or(0),
                    child_ring: p.child_ring.map(|r| r.0 + 1).unwrap_or(0),
                }
            })
            .collect();
        let mut matrix = LinkClassMatrix { n, dense: Vec::new(), coords };
        if n <= Self::DENSE_LIMIT {
            let mut dense = vec![LinkClass::WideArea; n * n];
            for a in 0..n {
                for b in 0..n {
                    dense[a * n + b] =
                        matrix.classify_compact(NodeIdx(a as u32), NodeIdx(b as u32));
                }
            }
            matrix.dense = dense;
        }
        matrix
    }

    /// Classify via the compressed per-pair form.
    #[inline]
    fn classify_compact(&self, from: NodeIdx, to: NodeIdx) -> LinkClass {
        let a = self.coords[from.as_usize()];
        let b = self.coords[to.as_usize()];
        if a.ring == b.ring {
            return LinkClass::IntraRing;
        }
        let parent_child = a.parent == to.0 + 1
            || b.parent == from.0 + 1
            || a.child_ring == b.ring + 1
            || b.child_ring == a.ring + 1;
        if parent_child {
            LinkClass::InterTier
        } else {
            LinkClass::WideArea
        }
    }

    /// Classify an ordered pair of dense node indices. `None` (a node
    /// outside the layout) classifies as wide-area, mirroring
    /// [`NetworkModel::classify`].
    #[inline]
    pub fn classify(&self, from: Option<NodeIdx>, to: Option<NodeIdx>) -> LinkClass {
        let (Some(a), Some(b)) = (from, to) else {
            return LinkClass::WideArea;
        };
        if self.dense.is_empty() {
            self.classify_compact(a, b)
        } else {
            self.dense[a.as_usize() * self.n + b.as_usize()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgb_core::prelude::*;

    fn layout() -> HierarchyLayout {
        HierarchySpec::new(3, 3).build(GroupId(1)).unwrap()
    }

    #[test]
    fn classifies_intra_ring() {
        let l = layout();
        let m = NetworkModel::new(NetConfig::default());
        let ring = l.rings_at(2).next().unwrap();
        assert_eq!(m.classify(&l, ring.nodes[0], ring.nodes[1]), LinkClass::IntraRing);
    }

    #[test]
    fn classifies_inter_tier_both_directions() {
        let l = layout();
        let m = NetworkModel::new(NetConfig::default());
        let ring = l.rings_at(2).next().unwrap();
        let sponsor = ring.parent_node.unwrap();
        assert_eq!(m.classify(&l, ring.nodes[0], sponsor), LinkClass::InterTier);
        assert_eq!(m.classify(&l, sponsor, ring.nodes[0]), LinkClass::InterTier);
    }

    #[test]
    fn classifies_wide_area() {
        let l = layout();
        let m = NetworkModel::new(NetConfig::default());
        // two APs in different subtrees
        let aps = l.aps();
        let a = aps[0];
        let b = aps[aps.len() - 1];
        assert_eq!(m.classify(&l, a, b), LinkClass::WideArea);
    }

    #[test]
    fn latency_respects_band() {
        let m = NetworkModel::new(NetConfig::default());
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = m.latency(LinkClass::IntraRing, &mut rng);
            assert!((5..=15).contains(&v));
        }
    }

    #[test]
    fn instant_config_is_zero_latency_lossless() {
        let m = NetworkModel::new(NetConfig::instant());
        let mut rng = SplitMix64::new(1);
        assert_eq!(m.latency(LinkClass::Wireless, &mut rng), 0);
        assert!(!m.lost(LinkClass::IntraRing, &mut rng));
    }

    #[test]
    fn inverted_band_is_a_validation_error() {
        let cfg = NetConfig { intra_ring: LatencyBand { min: 20, max: 5 }, ..NetConfig::default() };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("intra_ring"), "error names the band: {err}");
        assert!(NetworkModel::try_new(cfg).is_err());
        assert!(NetConfig::default().validate().is_ok());
    }

    #[test]
    fn out_of_range_loss_is_a_validation_error() {
        let cfg = NetConfig { loss: 1.5, ..NetConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = NetConfig { wireless_loss: -0.1, ..NetConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = NetConfig { dup: 2.0, ..NetConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = NetConfig { reorder: 0.5, reorder_extra: 0, ..NetConfig::default() };
        assert!(cfg.validate().unwrap_err().contains("reorder_extra"));
    }

    #[test]
    fn dup_and_reorder_sampling_track_probabilities() {
        let m = NetworkModel::new(NetConfig {
            dup: 0.3,
            reorder: 0.5,
            reorder_extra: 10,
            ..NetConfig::default()
        });
        let mut rng = SplitMix64::new(9);
        let n = 50_000;
        let dups = (0..n).filter(|_| m.duplicated(&mut rng)).count();
        assert!((dups as f64 / n as f64 - 0.3).abs() < 0.02);
        let delays: Vec<u64> = (0..n).map(|_| m.reorder_delay(&mut rng)).collect();
        let hit = delays.iter().filter(|&&d| d > 0).count();
        assert!((hit as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!(delays.iter().all(|&d| d <= 10));
        assert!(delays.contains(&10) && delays.contains(&1));
        // With the dimensions off, no RNG draws happen at all.
        let off = NetworkModel::new(NetConfig::default());
        let mut a = SplitMix64::new(1);
        let before = a.clone().next_u64();
        assert!(!off.duplicated(&mut a));
        assert_eq!(off.reorder_delay(&mut a), 0);
        assert_eq!(a.next_u64(), before, "rng untouched when dup/reorder are zero");
    }

    #[test]
    #[should_panic(expected = "invalid NetConfig")]
    fn network_model_new_panics_on_inverted_band() {
        let cfg = NetConfig { wireless: LatencyBand { min: 9, max: 1 }, ..NetConfig::default() };
        let _ = NetworkModel::new(cfg);
    }

    #[test]
    fn loss_frequency_tracks_probability() {
        let cfg = NetConfig { loss: 0.25, ..NetConfig::default() };
        let m = NetworkModel::new(cfg);
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let lost = (0..n).filter(|_| m.lost(LinkClass::IntraRing, &mut rng)).count();
        let freq = lost as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }
}
