//! The discrete-event simulation engine: an event queue over the sans-IO
//! node state machines, with the network model supplying latency and loss,
//! deterministic timer management, fault injection and metrics.
//!
//! The simulator is one of the two [`Substrate`] implementations shipped
//! with this workspace (the other is `rgb-net`'s threaded runtime). Every
//! protocol output is interpreted by the shared
//! [`rgb_core::substrate::apply_outputs`] driver, which wire-encodes each
//! send — so **every delivery in the simulated world crosses
//! [`rgb_core::wire`]**, byte-for-byte the same codec the live runtime puts
//! on its channels, and is decoded again on arrival. The wireless MH→AP hop
//! travels as an encoded [`Msg::FromMh`] frame for the same reason.

use crate::metrics::Metrics;
use crate::network::{LinkClass, NetConfig, NetworkModel};
use crate::rng::SplitMix64;
use bytes::Bytes;
use rgb_core::node::NodeState;
use rgb_core::prelude::*;
use rgb_core::topology::HierarchyLayout;
use rgb_core::wire;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// One scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    /// An encoded [`Envelope`] frame in flight between two NEs.
    Deliver {
        from: NodeId,
        to: NodeId,
        frame: Bytes,
    },
    Timer {
        node: NodeId,
        kind: TimerKind,
    },
    MhSend {
        ap: NodeId,
        event: MhEvent,
    },
    /// An encoded [`Msg::FromMh`] frame crossing the wireless hop.
    MhDeliver {
        ap: NodeId,
        frame: Bytes,
    },
    Crash {
        node: NodeId,
    },
    QueryStart {
        node: NodeId,
        scope: QueryScope,
    },
}

/// The discrete-event simulator.
#[derive(Debug)]
pub struct Simulation {
    /// The hierarchy under simulation.
    pub layout: HierarchyLayout,
    /// Protocol state of every NE.
    pub nodes: BTreeMap<NodeId, NodeState>,
    /// Crashed NEs.
    pub crashed: BTreeSet<NodeId>,
    /// Current simulated time (ticks).
    pub now: u64,
    /// Collected metrics.
    pub metrics: Metrics,
    /// Application deliveries per node, with timestamps.
    pub delivered: BTreeMap<NodeId, Vec<(u64, AppEvent)>>,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    timers: BTreeMap<(NodeId, TimerKind), u64>,
    net: NetworkModel,
    rng: SplitMix64,
    query_started: BTreeMap<NodeId, u64>,
    /// Last wireless delivery time per mobile host: the wireless hop is
    /// FIFO per MH (link-layer ordering), so a host's Leave can never
    /// overtake its own Join despite latency jitter.
    mh_last_delivery: BTreeMap<Guid, u64>,
    /// Reusable output buffer for the hot loop (no per-input allocation).
    out_buf: OutputSink,
}

impl Substrate for Simulation {
    fn now(&self) -> u64 {
        self.now
    }

    fn send_frame(&mut self, from: NodeId, to: NodeId, label: &'static str, frame: Bytes) {
        let class = self.net.classify(&self.layout, from, to);
        *self.metrics.sent_by_label.entry(label).or_insert(0) += 1;
        *self.metrics.sent_by_class.entry(class).or_insert(0) += 1;
        self.metrics.sent_total += 1;
        if self.net.lost(class, &mut self.rng) {
            self.metrics.lost += 1;
            return;
        }
        let latency = self.net.latency(class, &mut self.rng);
        self.push(self.now + latency, EventKind::Deliver { from, to, frame });
    }

    fn arm_timer(&mut self, node: NodeId, kind: TimerKind, after: u64) {
        let at = self.now + after;
        self.timers.insert((node, kind), at);
        self.push(at, EventKind::Timer { node, kind });
    }

    fn cancel_timer(&mut self, node: NodeId, kind: TimerKind) {
        self.timers.remove(&(node, kind));
    }

    fn deliver_app(&mut self, node: NodeId, event: AppEvent) {
        self.metrics.app_events += 1;
        if let AppEvent::QueryResult { .. } = &event {
            if let Some(t0) = self.query_started.remove(&node) {
                self.metrics.query_latency.record(self.now - t0);
            }
        }
        self.delivered.entry(node).or_default().push((self.now, event));
    }
}

impl Simulation {
    /// Build a simulation over `layout` with every node running `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `net` fails [`NetConfig::validate`] (e.g. an inverted
    /// latency band).
    pub fn new(layout: HierarchyLayout, cfg: &ProtocolConfig, net: NetConfig, seed: u64) -> Self {
        let mut nodes = BTreeMap::new();
        for &id in layout.nodes.keys() {
            nodes.insert(
                id,
                NodeState::from_layout(&layout, id, cfg.clone()).expect("valid layout"),
            );
        }
        Simulation {
            layout,
            nodes,
            crashed: BTreeSet::new(),
            now: 0,
            metrics: Metrics::default(),
            delivered: BTreeMap::new(),
            events: BinaryHeap::new(),
            next_seq: 0,
            timers: BTreeMap::new(),
            net: NetworkModel::new(net),
            rng: SplitMix64::new(seed),
            query_started: BTreeMap::new(),
            mh_last_delivery: BTreeMap::new(),
            out_buf: OutputSink::new(),
        }
    }

    /// Convenience constructor: full hierarchy of (h, r).
    pub fn full(h: usize, r: usize, cfg: &ProtocolConfig, net: NetConfig, seed: u64) -> Self {
        let layout = HierarchySpec::new(h, r).build(GroupId(1)).expect("valid spec");
        Self::new(layout, cfg, net, seed)
    }

    fn push(&mut self, at: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event { at, seq, kind }));
    }

    /// Boot every node at time zero.
    pub fn boot_all(&mut self) {
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in ids {
            self.inject(id, Input::Boot);
        }
    }

    /// Deliver an input to a node right now and process the outputs through
    /// the shared [`apply_outputs`] driver (sends are wire-encoded).
    pub fn inject(&mut self, node: NodeId, input: Input) {
        if self.crashed.contains(&node) {
            return;
        }
        let mut outs = std::mem::take(&mut self.out_buf);
        match self.nodes.get_mut(&node) {
            Some(state) => state.handle_into(input, &mut outs),
            None => {
                self.out_buf = outs;
                return;
            }
        }
        let gid = self.layout.gid;
        apply_outputs(self, gid, node, &mut outs);
        self.out_buf = outs;
    }

    /// Schedule a mobile-host event to reach `ap` after `delay` ticks plus
    /// the wireless hop.
    pub fn schedule_mh(&mut self, delay: u64, ap: NodeId, event: MhEvent) {
        self.push(self.now + delay, EventKind::MhSend { ap, event });
    }

    /// Schedule a node crash.
    pub fn crash_at(&mut self, delay: u64, node: NodeId) {
        self.push(self.now + delay, EventKind::Crash { node });
    }

    /// Schedule a membership query issued at `node`.
    pub fn schedule_query(&mut self, delay: u64, node: NodeId, scope: QueryScope) {
        self.push(self.now + delay, EventKind::QueryStart { node, scope });
    }

    /// Decode an arrived frame and feed it to `to`. Frames that fail to
    /// decode or carry a foreign group id are dropped and counted, exactly
    /// like the live runtime's receive path.
    fn deliver_frame(&mut self, from: NodeId, to: NodeId, frame: &Bytes) {
        match wire::decode(frame) {
            Ok(env) if env.gid == self.layout.gid => {
                self.inject(to, Input::Msg { from, msg: env.msg });
            }
            _ => self.metrics.codec_rejected += 1,
        }
    }

    /// Process the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.events.pop() else { return false };
        self.now = self.now.max(ev.at);
        match ev.kind {
            EventKind::Deliver { from, to, frame } => {
                if !self.crashed.contains(&to) {
                    self.deliver_frame(from, to, &frame);
                }
            }
            EventKind::Timer { node, kind } => {
                // Only fire if this is still the live scheduling of the timer.
                if self.timers.get(&(node, kind)) == Some(&ev.at) && !self.crashed.contains(&node) {
                    self.timers.remove(&(node, kind));
                    self.inject(node, Input::Timer(kind));
                }
            }
            EventKind::MhSend { ap, event } => {
                *self.metrics.sent_by_label.entry("from_mh").or_insert(0) += 1;
                *self.metrics.sent_by_class.entry(LinkClass::Wireless).or_insert(0) += 1;
                self.metrics.sent_total += 1;
                if self.net.lost(LinkClass::Wireless, &mut self.rng) {
                    self.metrics.lost += 1;
                } else {
                    let latency = self.net.latency(LinkClass::Wireless, &mut self.rng);
                    let guid = match &event {
                        MhEvent::Join { guid, .. }
                        | MhEvent::Leave { guid }
                        | MhEvent::HandoffIn { guid, .. }
                        | MhEvent::FailureDetected { guid }
                        | MhEvent::Disconnect { guid }
                        | MhEvent::Resume { guid, .. } => *guid,
                    };
                    let earliest = self.mh_last_delivery.get(&guid).map(|&t| t + 1).unwrap_or(0);
                    let at = (self.now + latency).max(earliest);
                    self.mh_last_delivery.insert(guid, at);
                    let frame = wire::encode(&Envelope {
                        gid: self.layout.gid,
                        msg: Msg::FromMh { event },
                    });
                    self.push(at, EventKind::MhDeliver { ap, frame });
                }
            }
            EventKind::MhDeliver { ap, frame } => {
                if !self.crashed.contains(&ap) {
                    match wire::decode(&frame) {
                        Ok(env) if env.gid == self.layout.gid => {
                            if let Msg::FromMh { event } = env.msg {
                                self.inject(ap, Input::Mh(event));
                            } else {
                                self.metrics.codec_rejected += 1;
                            }
                        }
                        _ => self.metrics.codec_rejected += 1,
                    }
                }
            }
            EventKind::Crash { node } => {
                self.crashed.insert(node);
                self.timers.retain(|(n, _), _| *n != node);
            }
            EventKind::QueryStart { node, scope } => {
                self.query_started.insert(node, self.now);
                self.inject(node, Input::StartQuery { scope });
            }
        }
        true
    }

    /// Run until no events remain or `budget` events are processed.
    /// Returns true on full quiescence. (Only meaningful under the
    /// on-demand token policy; continuous rings never quiesce.)
    pub fn run_until_quiet(&mut self, budget: usize) -> bool {
        for _ in 0..budget {
            if !self.step() {
                return true;
            }
        }
        self.events.is_empty()
    }

    /// Run until simulated time reaches `deadline` (events beyond it stay
    /// queued).
    pub fn run_until(&mut self, deadline: u64) {
        loop {
            match self.events.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    self.step();
                }
                _ => {
                    self.now = self.now.max(deadline);
                    return;
                }
            }
        }
    }

    /// Run until `pred` holds (checked after every event) or `deadline`
    /// passes; returns the time the predicate first held.
    pub fn run_until_pred<F: FnMut(&Simulation) -> bool>(
        &mut self,
        deadline: u64,
        mut pred: F,
    ) -> Option<u64> {
        if pred(self) {
            return Some(self.now);
        }
        loop {
            match self.events.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    self.step();
                    if pred(self) {
                        return Some(self.now);
                    }
                }
                _ => return None,
            }
        }
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &NodeState {
        &self.nodes[&id]
    }

    /// Whether `guid` is operational in `node`'s ring membership.
    pub fn member_at(&self, node: NodeId, guid: Guid) -> bool {
        self.nodes[&node].ring_members.contains_operational(guid)
    }

    /// Events delivered at a node.
    pub fn events_at(&self, node: NodeId) -> &[(u64, AppEvent)] {
        self.delivered.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Alive nodes of a ring.
    pub fn alive_ring_nodes(&self, ring: RingId) -> Vec<NodeId> {
        self.layout
            .ring(ring)
            .map(|spec| spec.nodes.iter().copied().filter(|n| !self.crashed.contains(n)).collect())
            .unwrap_or_default()
    }

    /// Mutable access to the deterministic RNG (workload generators fork
    /// their streams from here).
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_propagates_with_latency() {
        let mut sim = Simulation::full(2, 3, &ProtocolConfig::default(), NetConfig::default(), 1);
        sim.boot_all();
        let ap = sim.layout.aps()[4];
        sim.schedule_mh(0, ap, MhEvent::Join { guid: Guid(9), luid: Luid(1) });
        assert!(sim.run_until_quiet(1_000_000));
        assert!(sim.now > 0, "latency must advance the clock");
        for &n in sim.layout.root_ring().nodes.iter() {
            assert!(sim.member_at(n, Guid(9)));
        }
        assert_eq!(sim.metrics.sent("from_mh"), 1);
        assert_eq!(sim.metrics.codec_rejected, 0, "all frames decode");
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let mut sim =
                Simulation::full(2, 3, &ProtocolConfig::default(), NetConfig::default(), seed);
            sim.boot_all();
            let aps = sim.layout.aps();
            for (i, &ap) in aps.iter().enumerate() {
                sim.schedule_mh(
                    i as u64 * 3,
                    ap,
                    MhEvent::Join { guid: Guid(i as u64), luid: Luid(1) },
                );
            }
            sim.run_until_quiet(10_000_000);
            (sim.now, sim.metrics.sent_total, sim.metrics.proposal_hops())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn crash_event_silences_node() {
        let cfg = ProtocolConfig::default();
        let mut sim = Simulation::full(1, 3, &cfg, NetConfig::instant(), 3);
        sim.boot_all();
        let victim = sim.layout.aps()[1];
        sim.crash_at(0, victim);
        sim.step();
        assert!(sim.crashed.contains(&victim));
        // messages to it vanish silently
        let ap = sim.layout.aps()[0];
        sim.schedule_mh(1, ap, MhEvent::Join { guid: Guid(1), luid: Luid(1) });
        // OnDemand has no failure detection: the token stalls at the crash,
        // so quiescence is reached without agreement at the victim.
        sim.run_until_quiet(100_000);
        assert!(!sim.member_at(victim, Guid(1)));
    }

    #[test]
    fn query_latency_is_recorded() {
        let mut sim = Simulation::full(2, 3, &ProtocolConfig::default(), NetConfig::default(), 5);
        sim.boot_all();
        let ap = sim.layout.aps()[0];
        sim.schedule_mh(0, ap, MhEvent::Join { guid: Guid(1), luid: Luid(1) });
        sim.run_until_quiet(1_000_000);
        sim.schedule_query(0, ap, QueryScope::Global);
        sim.run_until_quiet(1_000_000);
        assert_eq!(sim.metrics.query_latency.count(), 1);
        assert!(sim.metrics.query_latency.max().unwrap() > 0);
    }

    #[test]
    fn run_until_pred_reports_first_time() {
        let mut sim = Simulation::full(2, 3, &ProtocolConfig::default(), NetConfig::unit(), 5);
        sim.boot_all();
        let ap = sim.layout.aps()[0];
        let root = sim.layout.root_ring().nodes[0];
        sim.schedule_mh(10, ap, MhEvent::Join { guid: Guid(4), luid: Luid(1) });
        let t = sim
            .run_until_pred(1_000_000, |s| s.member_at(root, Guid(4)))
            .expect("member reaches root");
        assert!(t >= 10);
        // The predicate time is stable under re-simulation.
        let mut sim2 = Simulation::full(2, 3, &ProtocolConfig::default(), NetConfig::unit(), 5);
        sim2.boot_all();
        sim2.schedule_mh(10, ap, MhEvent::Join { guid: Guid(4), luid: Luid(1) });
        let t2 = sim2.run_until_pred(1_000_000, |s| s.member_at(root, Guid(4)));
        assert_eq!(Some(t), t2);
    }

    #[test]
    fn lossy_network_still_converges_with_continuous_tokens() {
        let mut cfg = ProtocolConfig::live();
        cfg.token_interval = 10;
        cfg.token_retransmit_timeout = 30;
        cfg.heartbeat_interval = 200;
        cfg.token_lost_timeout = 500;
        let mut net = NetConfig::unit();
        net.loss = 0.05;
        let mut sim = Simulation::full(1, 4, &cfg, net, 11);
        sim.boot_all();
        let ap = sim.layout.aps()[2];
        sim.schedule_mh(0, ap, MhEvent::Join { guid: Guid(6), luid: Luid(1) });
        sim.run_until(20_000);
        for &n in sim.layout.root_ring().nodes.iter() {
            assert!(sim.member_at(n, Guid(6)), "loss prevented agreement at {n}");
        }
        assert!(sim.metrics.lost > 0, "loss model never fired");
    }

    #[test]
    fn corrupt_frames_are_dropped_and_counted() {
        let mut sim = Simulation::full(1, 3, &ProtocolConfig::default(), NetConfig::instant(), 1);
        sim.boot_all();
        let nodes = sim.layout.root_ring().nodes.clone();
        let before = sim.metrics.sent_total;
        sim.send_frame(nodes[0], nodes[1], "token", Bytes::from(vec![1, 2, 3]));
        while sim.step() {}
        assert_eq!(sim.metrics.codec_rejected, 1, "garbage frame must be rejected");
        assert_eq!(sim.metrics.sent_total, before + 1, "send was still counted");
    }

    #[test]
    fn foreign_group_frames_are_rejected() {
        let mut sim = Simulation::full(1, 3, &ProtocolConfig::default(), NetConfig::instant(), 1);
        sim.boot_all();
        let nodes = sim.layout.root_ring().nodes.clone();
        let frame = wire::encode(&Envelope {
            gid: GroupId(99),
            msg: Msg::TokenAck { ring: RingId(0), seq: 1 },
        });
        sim.send_frame(nodes[0], nodes[1], "token_ack", frame);
        while sim.step() {}
        assert_eq!(sim.metrics.codec_rejected, 1, "foreign gid must be rejected");
    }
}
